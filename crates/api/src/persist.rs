//! Durability layer for the [`crate::SystemStore`]: an append-only
//! journal of checksummed, length-prefixed `store_put` records plus
//! periodic atomic snapshots, behind an injectable [`StoreIo`] so a
//! fault harness can crash the store at every write boundary.
//!
//! # On-disk format
//!
//! Both files use the same frame: a 4-byte little-endian payload
//! length, an 8-byte little-endian FNV-1a 64 checksum of the payload,
//! then the payload itself.
//!
//! * `store.journal` — a sequence of put frames. Each payload carries a
//!   global sequence number (strictly increasing across the whole
//!   store), the resulting entry version, a body-kind tag, the entry
//!   name, and the body rendered back to DSL text.
//! * `store.snapshot` — an 8-byte magic (`TWCASNP1`) followed by one
//!   frame whose payload holds the sequence number the snapshot covers
//!   (`last_seq`) and every entry's `(name, version, kind, text)`.
//!
//! Snapshots are written atomically by the [`StoreIo::replace`]
//! contract (write temp → fsync → rename), after which the journal is
//! reset; a crash between the two leaves journal records the snapshot
//! already covers, which replay skips by sequence number.
//!
//! # Recovery invariants
//!
//! Recovery (`recover`, driven by [`crate::SystemStore::durable`])
//! distinguishes two failure shapes and never conflates
//! them:
//!
//! * an **incomplete frame at the journal tail** is a torn write from a
//!   crash mid-append — the tail is *truncated* (the put was never
//!   acknowledged) and counted in [`RecoveryReport::truncated_bytes`];
//! * a **complete frame whose checksum mismatches** (anywhere, and any
//!   damage to the snapshot) is *corruption* — recovery refuses with a
//!   typed [`PersistError`] rather than silently serving wrong
//!   history.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use twca_dist::parse_distributed;
use twca_model::parse_system;

use crate::store::StoredBody;

/// The journal file name under a store directory.
pub const JOURNAL_FILE: &str = "store.journal";
/// The snapshot file name under a store directory.
pub const SNAPSHOT_FILE: &str = "store.snapshot";

/// Magic prefix of a snapshot file (`TWCASNP1`).
const SNAPSHOT_MAGIC: &[u8; 8] = b"TWCASNP1";

/// Frame header size: 4-byte length + 8-byte checksum.
const FRAME_HEADER: usize = 12;

/// Body-kind tag of a uniprocessor chain system.
pub(crate) const KIND_UNI: u8 = 0;
/// Body-kind tag of a distributed system.
pub(crate) const KIND_DIST: u8 = 1;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// What went wrong in the persistence layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PersistErrorKind {
    /// The backing [`StoreIo`] failed (or simulated a crash).
    Io,
    /// A complete journal record failed its checksum or decoded to
    /// nonsense — corruption, refused rather than replayed.
    CorruptJournal,
    /// The snapshot failed its checksum or decoded to nonsense.
    CorruptSnapshot,
    /// A body cannot be rendered to the persistent DSL format.
    Unrepresentable,
}

impl PersistErrorKind {
    /// Stable lower-case tag for messages and wire errors.
    pub fn as_str(&self) -> &'static str {
        match self {
            PersistErrorKind::Io => "io",
            PersistErrorKind::CorruptJournal => "corrupt-journal",
            PersistErrorKind::CorruptSnapshot => "corrupt-snapshot",
            PersistErrorKind::Unrepresentable => "unrepresentable",
        }
    }
}

/// A typed persistence failure; see [`PersistErrorKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError {
    /// The failure class.
    pub kind: PersistErrorKind,
    /// Human-readable detail (offset, file, cause).
    pub message: String,
}

impl PersistError {
    pub(crate) fn new(kind: PersistErrorKind, message: impl Into<String>) -> PersistError {
        PersistError {
            kind,
            message: message.into(),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

impl std::error::Error for PersistError {}

// ---------------------------------------------------------------------------
// StoreIo: the injectable I/O boundary
// ---------------------------------------------------------------------------

/// The I/O boundary of the durability layer. Every byte the store
/// persists flows through one of these four operations, so a fault
/// harness can crash the store at each boundary and hand the resulting
/// half-written state back to recovery
/// ([`crate::SystemStore::durable`]).
pub trait StoreIo: fmt::Debug + Send + Sync {
    /// The full contents of `file`, or `None` if it does not exist.
    fn read(&self, file: &str) -> Result<Option<Vec<u8>>, PersistError>;
    /// Appends `bytes` to `file`, creating it if absent. A crash may
    /// leave any *prefix* of `bytes` appended (a torn write), never a
    /// suffix or interleaving.
    fn append(&self, file: &str, bytes: &[u8]) -> Result<(), PersistError>;
    /// Durably flushes previous appends to `file`.
    fn sync(&self, file: &str) -> Result<(), PersistError>;
    /// Atomically replaces `file` with `bytes`: the observable state
    /// after a crash is either the old contents or the new, never a
    /// mix (write temp → fsync → rename).
    fn replace(&self, file: &str, bytes: &[u8]) -> Result<(), PersistError>;
}

fn io_err(op: &str, file: &str, err: std::io::Error) -> PersistError {
    PersistError::new(PersistErrorKind::Io, format!("{op} {file}: {err}"))
}

/// Real-filesystem [`StoreIo`] rooted at a directory. Keeps the
/// journal's append handle open across puts so the warm `store_put`
/// path pays one `write(2)`, not an open/close pair.
#[derive(Debug)]
pub struct DirIo {
    root: PathBuf,
    handles: Mutex<HashMap<String, fs::File>>,
}

impl DirIo {
    /// Opens (creating if needed) the store directory at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<DirIo, PersistError> {
        let root = root.into();
        fs::create_dir_all(&root)
            .map_err(|e| io_err("create dir", &root.display().to_string(), e))?;
        Ok(DirIo {
            root,
            handles: Mutex::new(HashMap::new()),
        })
    }

    fn path(&self, file: &str) -> PathBuf {
        self.root.join(file)
    }
}

impl StoreIo for DirIo {
    fn read(&self, file: &str) -> Result<Option<Vec<u8>>, PersistError> {
        match fs::read(self.path(file)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read", file, e)),
        }
    }

    fn append(&self, file: &str, bytes: &[u8]) -> Result<(), PersistError> {
        let mut handles = self.handles.lock().expect("DirIo poisoned");
        if !handles.contains_key(file) {
            let handle = fs::OpenOptions::new()
                .append(true)
                .create(true)
                .open(self.path(file))
                .map_err(|e| io_err("open", file, e))?;
            handles.insert(file.to_owned(), handle);
        }
        let handle = handles.get_mut(file).expect("just inserted");
        handle
            .write_all(bytes)
            .map_err(|e| io_err("append", file, e))
    }

    fn sync(&self, file: &str) -> Result<(), PersistError> {
        let mut handles = self.handles.lock().expect("DirIo poisoned");
        match handles.get_mut(file) {
            Some(handle) => handle.sync_data().map_err(|e| io_err("sync", file, e)),
            // Nothing appended since open: nothing to flush.
            None => Ok(()),
        }
    }

    fn replace(&self, file: &str, bytes: &[u8]) -> Result<(), PersistError> {
        let tmp = self.path(&format!("{file}.tmp"));
        let tmp_name = tmp.display().to_string();
        {
            let mut out = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp_name, e))?;
            out.write_all(bytes)
                .map_err(|e| io_err("write", &tmp_name, e))?;
            out.sync_all().map_err(|e| io_err("fsync", &tmp_name, e))?;
        }
        fs::rename(&tmp, self.path(file)).map_err(|e| io_err("rename", file, e))?;
        // The old inode is gone: a cached append handle would keep
        // writing to the unlinked file, so drop it.
        self.handles.lock().expect("DirIo poisoned").remove(file);
        // Make the rename itself durable.
        if let Ok(dir) = fs::File::open(&self.root) {
            let _ = dir.sync_all();
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// MemIo: recording + fault injection
// ---------------------------------------------------------------------------

/// One recorded mutation against a [`MemIo`], in execution order. The
/// log is the crash-point enumeration: [`crash_states`] rebuilds the
/// simulated disk as of every boundary between ops and every torn
/// prefix within an append.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoOp {
    /// Bytes appended to a file.
    Append {
        /// Target file name.
        file: String,
        /// The appended bytes.
        bytes: Vec<u8>,
    },
    /// A file atomically replaced.
    Replace {
        /// Target file name.
        file: String,
        /// The new full contents.
        bytes: Vec<u8>,
    },
    /// A durability barrier on a file.
    Sync {
        /// Target file name.
        file: String,
    },
}

/// In-memory [`StoreIo`] for tests and the fault-injection oracle:
/// records every mutation, can start from an arbitrary disk state
/// (e.g. one produced by [`crash_states`]), can flip bits to simulate
/// corruption, and can fail all mutations after a countdown to model a
/// crash mid-sequence.
#[derive(Debug, Default)]
pub struct MemIo {
    files: Mutex<HashMap<String, Vec<u8>>>,
    log: Mutex<Vec<IoOp>>,
    // None = never fail; Some(n) = the next n mutations succeed, then
    // every later mutation returns an Io error ("the process died").
    fail_after: Mutex<Option<u64>>,
}

impl MemIo {
    /// An empty in-memory disk.
    pub fn new() -> MemIo {
        MemIo::default()
    }

    /// An in-memory disk with the given initial file contents.
    pub fn from_state(files: HashMap<String, Vec<u8>>) -> MemIo {
        MemIo {
            files: Mutex::new(files),
            ..MemIo::default()
        }
    }

    /// A copy of the current file contents.
    pub fn state(&self) -> HashMap<String, Vec<u8>> {
        self.files.lock().expect("MemIo poisoned").clone()
    }

    /// A copy of the mutation log, in execution order.
    pub fn ops(&self) -> Vec<IoOp> {
        self.log.lock().expect("MemIo poisoned").clone()
    }

    /// After `n` more successful mutations, every mutation fails with
    /// an [`PersistErrorKind::Io`] error (reads keep working).
    pub fn fail_after(&self, n: u64) {
        *self.fail_after.lock().expect("MemIo poisoned") = Some(n);
    }

    /// Flips one bit of `file` (bit `bit` of the byte at `byte`) to
    /// simulate silent media corruption. Panics if out of range.
    pub fn flip_bit(&self, file: &str, byte: usize, bit: u8) {
        let mut files = self.files.lock().expect("MemIo poisoned");
        let contents = files.get_mut(file).expect("no such file");
        contents[byte] ^= 1 << (bit % 8);
    }

    /// Checks the crash countdown. Returns `Ok(())` if this mutation
    /// may proceed, decrementing the countdown.
    fn admit(&self) -> Result<(), PersistError> {
        let mut fail = self.fail_after.lock().expect("MemIo poisoned");
        match *fail {
            None => Ok(()),
            Some(0) => Err(PersistError::new(
                PersistErrorKind::Io,
                "injected crash: store I/O is dead",
            )),
            Some(ref mut n) => {
                *n -= 1;
                Ok(())
            }
        }
    }
}

impl StoreIo for MemIo {
    fn read(&self, file: &str) -> Result<Option<Vec<u8>>, PersistError> {
        Ok(self
            .files
            .lock()
            .expect("MemIo poisoned")
            .get(file)
            .cloned())
    }

    fn append(&self, file: &str, bytes: &[u8]) -> Result<(), PersistError> {
        self.admit()?;
        self.files
            .lock()
            .expect("MemIo poisoned")
            .entry(file.to_owned())
            .or_default()
            .extend_from_slice(bytes);
        self.log.lock().expect("MemIo poisoned").push(IoOp::Append {
            file: file.to_owned(),
            bytes: bytes.to_vec(),
        });
        Ok(())
    }

    fn sync(&self, file: &str) -> Result<(), PersistError> {
        self.admit()?;
        self.log.lock().expect("MemIo poisoned").push(IoOp::Sync {
            file: file.to_owned(),
        });
        Ok(())
    }

    fn replace(&self, file: &str, bytes: &[u8]) -> Result<(), PersistError> {
        self.admit()?;
        self.files
            .lock()
            .expect("MemIo poisoned")
            .insert(file.to_owned(), bytes.to_vec());
        self.log
            .lock()
            .expect("MemIo poisoned")
            .push(IoOp::Replace {
                file: file.to_owned(),
                bytes: bytes.to_vec(),
            });
        Ok(())
    }
}

/// Every simulated post-crash disk state reachable from a mutation
/// log: for each boundary `i` the state after fully applying
/// `ops[..i]`, and for each append additionally the torn states where
/// only a strict prefix of its bytes landed (first byte, half, all but
/// the last byte). [`StoreIo::replace`] is atomic by contract, so its
/// only crash states are old-contents and new-contents — both already
/// boundary states. Each state comes with a description for failure
/// reports and the number of ops fully applied.
pub fn crash_states(ops: &[IoOp]) -> Vec<(String, usize, HashMap<String, Vec<u8>>)> {
    let mut states = Vec::new();
    let mut disk: HashMap<String, Vec<u8>> = HashMap::new();
    states.push(("before any I/O".to_owned(), 0, disk.clone()));
    for (i, op) in ops.iter().enumerate() {
        if let IoOp::Append { file, bytes } = op {
            let mut cuts: Vec<usize> = vec![1, bytes.len() / 2, bytes.len().saturating_sub(1)];
            cuts.retain(|&c| c > 0 && c < bytes.len());
            cuts.dedup();
            for cut in cuts {
                let mut torn = disk.clone();
                torn.entry(file.clone())
                    .or_default()
                    .extend_from_slice(&bytes[..cut]);
                states.push((
                    format!(
                        "torn append of {cut}/{} bytes to {file} (op {i})",
                        bytes.len()
                    ),
                    i,
                    torn,
                ));
            }
        }
        match op {
            IoOp::Append { file, bytes } => disk
                .entry(file.clone())
                .or_default()
                .extend_from_slice(bytes),
            IoOp::Replace { file, bytes } => {
                disk.insert(file.clone(), bytes.clone());
            }
            IoOp::Sync { .. } => {}
        }
        states.push((
            format!("after op {i} ({})", op_name(op)),
            i + 1,
            disk.clone(),
        ));
    }
    states
}

fn op_name(op: &IoOp) -> String {
    match op {
        IoOp::Append { file, bytes } => format!("append {} bytes to {file}", bytes.len()),
        IoOp::Replace { file, bytes } => format!("replace {file} with {} bytes", bytes.len()),
        IoOp::Sync { file } => format!("sync {file}"),
    }
}

// ---------------------------------------------------------------------------
// Frames and record encoding
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit: small, dependency-free, and plenty to detect the bit
/// flips and frame desyncs the fault model injects (this is a
/// corruption *detector*, not a cryptographic integrity check).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Wraps a payload in the length + checksum frame.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, value: &str) {
    put_u32(out, value.len() as u32);
    out.extend_from_slice(value.as_bytes());
}

/// Cursor over a decoded payload; every read is bounds-checked so a
/// corrupt length field turns into a typed error, never a panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
    kind: PersistErrorKind,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8], kind: PersistErrorKind) -> Cursor<'a> {
        Cursor { bytes, at: 0, kind }
    }

    fn corrupt(&self, what: &str) -> PersistError {
        PersistError::new(self.kind, format!("truncated or corrupt {what} field"))
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], PersistError> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.at..end];
                self.at = end;
                Ok(slice)
            }
            None => Err(self.corrupt(what)),
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8, PersistError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn str(&mut self, what: &str) -> Result<&'a str, PersistError> {
        let len = self.u32(what)? as usize;
        let raw = self.take(len, what)?;
        std::str::from_utf8(raw).map_err(|_| self.corrupt(what))
    }

    fn done(&self) -> Result<(), PersistError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(self.corrupt("trailing bytes"))
        }
    }
}

/// One journaled `store_put`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PutRecord {
    /// Global, strictly increasing across the store's lifetime.
    pub(crate) seq: u64,
    /// The entry version this put produced.
    pub(crate) version: u64,
    /// [`KIND_UNI`] or [`KIND_DIST`].
    pub(crate) kind: u8,
    /// The entry name.
    pub(crate) name: String,
    /// The body rendered to DSL text.
    pub(crate) text: String,
}

pub(crate) fn encode_put(record: &PutRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(32 + record.name.len() + record.text.len());
    put_u64(&mut payload, record.seq);
    put_u64(&mut payload, record.version);
    payload.push(record.kind);
    put_str(&mut payload, &record.name);
    put_str(&mut payload, &record.text);
    frame(&payload)
}

fn decode_put(payload: &[u8]) -> Result<PutRecord, PersistError> {
    let mut cursor = Cursor::new(payload, PersistErrorKind::CorruptJournal);
    let record = PutRecord {
        seq: cursor.u64("seq")?,
        version: cursor.u64("version")?,
        kind: cursor.u8("kind")?,
        name: cursor.str("name")?.to_owned(),
        text: cursor.str("text")?.to_owned(),
    };
    cursor.done()?;
    Ok(record)
}

/// The decoded contents of a snapshot file.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SnapshotData {
    /// Journal records with `seq <= last_seq` are already reflected.
    last_seq: u64,
    /// `(name, version, kind, text)` per entry.
    entries: Vec<(String, u64, u8, String)>,
}

pub(crate) fn encode_snapshot(last_seq: u64, entries: &[(String, u64, u8, String)]) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u64(&mut payload, last_seq);
    put_u32(&mut payload, entries.len() as u32);
    for (name, version, kind, text) in entries {
        put_str(&mut payload, name);
        put_u64(&mut payload, *version);
        payload.push(*kind);
        put_str(&mut payload, text);
    }
    let mut out = SNAPSHOT_MAGIC.to_vec();
    out.extend_from_slice(&frame(&payload));
    out
}

fn decode_snapshot(bytes: &[u8]) -> Result<SnapshotData, PersistError> {
    let corrupt = |msg: &str| PersistError::new(PersistErrorKind::CorruptSnapshot, msg.to_owned());
    if bytes.len() < 8 || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad snapshot magic"));
    }
    let framed = &bytes[8..];
    if framed.len() < FRAME_HEADER {
        return Err(corrupt("snapshot header truncated"));
    }
    let plen = u32::from_le_bytes(framed[..4].try_into().unwrap()) as usize;
    let checksum = u64::from_le_bytes(framed[4..12].try_into().unwrap());
    if framed.len() != FRAME_HEADER + plen {
        return Err(corrupt("snapshot length mismatch"));
    }
    let payload = &framed[FRAME_HEADER..];
    if fnv1a(payload) != checksum {
        return Err(corrupt("snapshot checksum mismatch"));
    }
    let mut cursor = Cursor::new(payload, PersistErrorKind::CorruptSnapshot);
    let last_seq = cursor.u64("last_seq")?;
    let count = cursor.u32("entry count")?;
    let mut entries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let name = cursor.str("entry name")?.to_owned();
        let version = cursor.u64("entry version")?;
        let kind = cursor.u8("entry kind")?;
        let text = cursor.str("entry text")?.to_owned();
        entries.push((name, version, kind, text));
    }
    cursor.done()?;
    Ok(SnapshotData { last_seq, entries })
}

fn parse_body(
    kind: u8,
    text: &str,
    err_kind: PersistErrorKind,
) -> Result<StoredBody, PersistError> {
    match kind {
        KIND_UNI => parse_system(text).map(StoredBody::Uni).map_err(|e| {
            PersistError::new(err_kind, format!("stored uni body no longer parses: {e}"))
        }),
        KIND_DIST => parse_distributed(text).map(StoredBody::Dist).map_err(|e| {
            PersistError::new(err_kind, format!("stored dist body no longer parses: {e}"))
        }),
        other => Err(PersistError::new(
            err_kind,
            format!("unknown body kind tag {other}"),
        )),
    }
}

// ---------------------------------------------------------------------------
// Journal scanning and recovery
// ---------------------------------------------------------------------------

/// The outcome of walking a journal byte buffer.
#[derive(Debug)]
struct JournalScan {
    /// Decoded payloads of every complete, checksum-valid frame.
    payloads: Vec<Vec<u8>>,
    /// Byte length of the valid prefix (frames end exactly here).
    valid_len: usize,
}

/// Walks journal frames. An incomplete frame at the very end is a torn
/// tail (reported through `valid_len`, not an error); a complete frame
/// with a checksum mismatch is corruption.
fn scan_journal(bytes: &[u8]) -> Result<JournalScan, PersistError> {
    let mut payloads = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        let remaining = bytes.len() - at;
        if remaining < FRAME_HEADER {
            break; // torn: not even a full header
        }
        let plen = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        if plen > remaining - FRAME_HEADER {
            break; // torn: payload runs past end-of-file
        }
        let checksum = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap());
        let payload = &bytes[at + FRAME_HEADER..at + FRAME_HEADER + plen];
        if fnv1a(payload) != checksum {
            return Err(PersistError::new(
                PersistErrorKind::CorruptJournal,
                format!("checksum mismatch in record at byte {at}"),
            ));
        }
        payloads.push(payload.to_vec());
        at += FRAME_HEADER + plen;
    }
    Ok(JournalScan {
        payloads,
        valid_len: at,
    })
}

/// What recovery found and did; surfaced in the serve banner, the
/// `stats` query, and the drain summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a valid snapshot was loaded.
    pub snapshot_loaded: bool,
    /// Entries present after recovery.
    pub entries: u64,
    /// Journal records replayed on top of the snapshot.
    pub replayed: u64,
    /// Journal records skipped because the snapshot already covered
    /// them (duplicate replay is idempotent by sequence and version).
    pub skipped: u64,
    /// Torn-tail bytes truncated from the journal (a crash mid-append;
    /// the put they belonged to was never acknowledged).
    pub truncated_bytes: u64,
}

/// The in-memory result of recovering a store directory.
#[derive(Debug)]
pub(crate) struct Recovered {
    /// `name -> (version, body, rendered text)`.
    pub(crate) entries: HashMap<String, (u64, StoredBody, String)>,
    /// Highest sequence number observed; the next put uses `+ 1`.
    pub(crate) last_seq: u64,
    /// What happened, for reporting.
    pub(crate) report: RecoveryReport,
    /// When the journal had a torn tail, the valid prefix to write
    /// back so future appends don't land after garbage.
    pub(crate) repaired_journal: Option<Vec<u8>>,
}

/// Loads the newest valid snapshot and replays the journal on top.
/// Torn tails truncate; corruption refuses with a typed error.
pub(crate) fn recover(io: &dyn StoreIo) -> Result<Recovered, PersistError> {
    let mut entries: HashMap<String, (u64, StoredBody, String)> = HashMap::new();
    let mut report = RecoveryReport::default();
    let mut last_seq = 0u64;

    if let Some(bytes) = io.read(SNAPSHOT_FILE)? {
        let snapshot = decode_snapshot(&bytes)?;
        last_seq = snapshot.last_seq;
        report.snapshot_loaded = true;
        for (name, version, kind, text) in snapshot.entries {
            let body = parse_body(kind, &text, PersistErrorKind::CorruptSnapshot)?;
            entries.insert(name, (version, body, text));
        }
    }

    let journal = io.read(JOURNAL_FILE)?.unwrap_or_default();
    let scan = scan_journal(&journal)?;
    let mut prev_seq: Option<u64> = None;
    for payload in &scan.payloads {
        let record = decode_put(payload)?;
        if prev_seq.is_some_and(|p| record.seq <= p) {
            return Err(PersistError::new(
                PersistErrorKind::CorruptJournal,
                format!("sequence numbers not increasing at seq {}", record.seq),
            ));
        }
        prev_seq = Some(record.seq);
        last_seq = last_seq.max(record.seq);
        let current = entries.get(&record.name).map(|(v, _, _)| *v).unwrap_or(0);
        if record.version <= current {
            // Already reflected (snapshot raced ahead of the journal
            // reset, or the snapshot covers this record).
            report.skipped += 1;
            continue;
        }
        if record.version != current + 1 {
            return Err(PersistError::new(
                PersistErrorKind::CorruptJournal,
                format!(
                    "version gap for `{}`: have {current}, journal jumps to {}",
                    record.name, record.version
                ),
            ));
        }
        let body = parse_body(record.kind, &record.text, PersistErrorKind::CorruptJournal)?;
        entries.insert(record.name, (record.version, body, record.text));
        report.replayed += 1;
    }

    report.truncated_bytes = (journal.len() - scan.valid_len) as u64;
    report.entries = entries.len() as u64;
    let repaired_journal = (report.truncated_bytes > 0).then(|| journal[..scan.valid_len].to_vec());
    Ok(Recovered {
        entries,
        last_seq,
        report,
        repaired_journal,
    })
}

// ---------------------------------------------------------------------------
// Live persistence state (used by SystemStore)
// ---------------------------------------------------------------------------

/// When the store journals and snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistPolicy {
    /// Write a snapshot (and reset the journal) every this many put
    /// records; `0` disables automatic snapshots (explicit
    /// [`crate::SystemStore::flush`] still snapshots).
    pub snapshot_every: u64,
    /// `fsync` the journal every this many appends; `0` syncs only at
    /// snapshots and flushes. `1` makes every acknowledged put durable
    /// against power loss (process crashes never lose acknowledged
    /// puts either way: appends live in the OS page cache).
    pub sync_every: u64,
}

impl Default for PersistPolicy {
    fn default() -> PersistPolicy {
        PersistPolicy {
            snapshot_every: 256,
            sync_every: 1,
        }
    }
}

/// Monotonic persistence counters, readable without any store lock.
#[derive(Debug, Default)]
pub(crate) struct PersistCounters {
    pub(crate) journal_appends: AtomicU64,
    pub(crate) journal_bytes: AtomicU64,
    pub(crate) journal_syncs: AtomicU64,
    pub(crate) snapshots_written: AtomicU64,
}

/// A point-in-time copy of the persistence counters plus the recovery
/// report, as surfaced by the `stats` query. All zeros for an
/// in-memory store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Put records appended to the journal since start.
    pub journal_appends: u64,
    /// Journal bytes written since start.
    pub journal_bytes: u64,
    /// Journal fsyncs issued since start.
    pub journal_syncs: u64,
    /// Snapshots written since start (including flushes).
    pub snapshots_written: u64,
    /// Journal records replayed during recovery at startup.
    pub recovered_records: u64,
    /// Torn-tail bytes truncated during recovery at startup.
    pub truncated_bytes: u64,
}

/// The live persistence half of a durable [`crate::SystemStore`]:
/// the I/O backend, the policy, the sequence counter, and the
/// counters. The `seq` mutex is the commit lock — durable puts
/// serialize on it so journal order, sequence numbers, and entry
/// versions always agree.
#[derive(Debug)]
pub(crate) struct Persistence {
    pub(crate) io: Arc<dyn StoreIo>,
    pub(crate) policy: PersistPolicy,
    pub(crate) seq: Mutex<PersistSeq>,
    pub(crate) counters: PersistCounters,
    pub(crate) recovery: RecoveryReport,
}

#[derive(Debug)]
pub(crate) struct PersistSeq {
    /// The next record's sequence number.
    pub(crate) next_seq: u64,
    /// Appends since the last fsync (for `sync_every`).
    pub(crate) since_sync: u64,
    /// Records since the last snapshot (for `snapshot_every`).
    pub(crate) since_snapshot: u64,
}

impl Persistence {
    pub(crate) fn stats(&self) -> PersistStats {
        PersistStats {
            journal_appends: self.counters.journal_appends.load(Ordering::Relaxed),
            journal_bytes: self.counters.journal_bytes.load(Ordering::Relaxed),
            journal_syncs: self.counters.journal_syncs.load(Ordering::Relaxed),
            snapshots_written: self.counters.snapshots_written.load(Ordering::Relaxed),
            recovered_records: self.recovery.replayed,
            truncated_bytes: self.recovery.truncated_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SYS: &str = "chain c periodic=100 deadline=100 { task t prio=1 wcet=10 }";

    fn put_frame(seq: u64, version: u64, name: &str) -> Vec<u8> {
        encode_put(&PutRecord {
            seq,
            version,
            kind: KIND_UNI,
            name: name.to_owned(),
            text: SYS.to_owned(),
        })
    }

    #[test]
    fn frames_round_trip_and_checksums_are_stable() {
        let record = PutRecord {
            seq: 7,
            version: 3,
            kind: KIND_UNI,
            name: "plant".to_owned(),
            text: SYS.to_owned(),
        };
        let bytes = encode_put(&record);
        let scan = scan_journal(&bytes).unwrap();
        assert_eq!(scan.valid_len, bytes.len());
        assert_eq!(decode_put(&scan.payloads[0]).unwrap(), record);
        // FNV-1a 64 known vector: hash of the empty input is the
        // offset basis; of "a" the standard published value.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn torn_tail_truncates_and_interior_corruption_refuses() {
        let mut journal = put_frame(1, 1, "a");
        let second = put_frame(2, 2, "a");
        journal.extend_from_slice(&second[..second.len() / 2]);
        let scan = scan_journal(&journal).unwrap();
        assert_eq!(scan.payloads.len(), 1);
        assert_eq!(scan.valid_len, put_frame(1, 1, "a").len());

        // Flip a payload bit of a *complete* interior record: refusal.
        let mut corrupt = put_frame(1, 1, "a");
        let len = corrupt.len();
        corrupt[len - 1] ^= 0x40;
        corrupt.extend_from_slice(&put_frame(2, 2, "a"));
        let err = scan_journal(&corrupt).unwrap_err();
        assert_eq!(err.kind, PersistErrorKind::CorruptJournal);
    }

    #[test]
    fn snapshot_round_trips_and_detects_damage() {
        let entries = vec![
            ("a".to_owned(), 3, KIND_UNI, SYS.to_owned()),
            ("b".to_owned(), 1, KIND_UNI, SYS.to_owned()),
        ];
        let bytes = encode_snapshot(9, &entries);
        let decoded = decode_snapshot(&bytes).unwrap();
        assert_eq!(decoded.last_seq, 9);
        assert_eq!(decoded.entries, entries);

        for flip in [0usize, 8, 12, bytes.len() - 1] {
            let mut damaged = bytes.clone();
            damaged[flip] ^= 0x01;
            let err = decode_snapshot(&damaged).unwrap_err();
            assert_eq!(err.kind, PersistErrorKind::CorruptSnapshot);
        }
    }

    #[test]
    fn recover_handles_empty_and_zero_length_state() {
        let io = MemIo::new();
        let recovered = recover(&io).unwrap();
        assert!(recovered.entries.is_empty());
        assert_eq!(recovered.last_seq, 0);
        assert_eq!(recovered.report, RecoveryReport::default());

        // A zero-length journal file (created, nothing written yet).
        let io = MemIo::from_state(HashMap::from([(JOURNAL_FILE.to_owned(), Vec::new())]));
        let recovered = recover(&io).unwrap();
        assert!(recovered.entries.is_empty());
        assert!(recovered.repaired_journal.is_none());
    }

    #[test]
    fn recover_replays_in_order_and_skips_snapshot_covered_records() {
        // Snapshot says `a` is at version 2 as of seq 2; the journal
        // still holds seqs 1..=3 (reset raced), so 1 and 2 skip and 3
        // replays.
        let snapshot = encode_snapshot(2, &[("a".to_owned(), 2, KIND_UNI, SYS.to_owned())]);
        let mut journal = Vec::new();
        journal.extend_from_slice(&put_frame(1, 1, "a"));
        journal.extend_from_slice(&put_frame(2, 2, "a"));
        journal.extend_from_slice(&put_frame(3, 3, "a"));
        let io = MemIo::from_state(HashMap::from([
            (SNAPSHOT_FILE.to_owned(), snapshot),
            (JOURNAL_FILE.to_owned(), journal),
        ]));
        let recovered = recover(&io).unwrap();
        assert_eq!(recovered.entries["a"].0, 3);
        assert_eq!(recovered.last_seq, 3);
        assert_eq!(recovered.report.replayed, 1);
        assert_eq!(recovered.report.skipped, 2);
        assert!(recovered.report.snapshot_loaded);
    }

    #[test]
    fn recover_refuses_version_gaps() {
        let mut journal = Vec::new();
        journal.extend_from_slice(&put_frame(1, 1, "a"));
        journal.extend_from_slice(&put_frame(2, 3, "a")); // lost version 2
        let io = MemIo::from_state(HashMap::from([(JOURNAL_FILE.to_owned(), journal)]));
        let err = recover(&io).unwrap_err();
        assert_eq!(err.kind, PersistErrorKind::CorruptJournal);
        assert!(err.message.contains("version gap"), "{}", err.message);
    }

    #[test]
    fn crash_states_cover_boundaries_and_torn_prefixes() {
        let io = MemIo::new();
        io.append(JOURNAL_FILE, &put_frame(1, 1, "a")).unwrap();
        io.sync(JOURNAL_FILE).unwrap();
        io.replace(SNAPSHOT_FILE, &encode_snapshot(1, &[])).unwrap();
        let ops = io.ops();
        assert_eq!(ops.len(), 3);
        let states = crash_states(&ops);
        // 1 initial + 3 torn cuts + 3 boundaries (sync adds no torn).
        assert_eq!(states.len(), 7);
        // The final state equals the live disk.
        assert_eq!(states.last().unwrap().2, io.state());
        // Every torn journal state recovers by truncation, silently.
        for (desc, _, state) in &states {
            let recovered = recover(&MemIo::from_state(state.clone()))
                .unwrap_or_else(|e| panic!("state `{desc}` failed recovery: {e}"));
            assert!(recovered.report.replayed <= 1, "state `{desc}`");
        }
    }

    #[test]
    fn fail_after_kills_mutations_but_not_reads() {
        let io = MemIo::new();
        io.fail_after(1);
        io.append(JOURNAL_FILE, b"ok").unwrap();
        let err = io.append(JOURNAL_FILE, b"dead").unwrap_err();
        assert_eq!(err.kind, PersistErrorKind::Io);
        assert_eq!(io.read(JOURNAL_FILE).unwrap().unwrap(), b"ok");
    }

    #[test]
    fn dir_io_appends_syncs_and_replaces_atomically() {
        let dir = std::env::temp_dir().join(format!("twca-persist-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let io = DirIo::open(&dir).unwrap();
        io.append("j", b"one").unwrap();
        io.append("j", b"two").unwrap();
        io.sync("j").unwrap();
        assert_eq!(io.read("j").unwrap().unwrap(), b"onetwo");
        io.replace("j", b"fresh").unwrap();
        assert_eq!(io.read("j").unwrap().unwrap(), b"fresh");
        // The cached append handle was invalidated by the replace:
        // later appends extend the *new* inode.
        io.append("j", b"+tail").unwrap();
        assert_eq!(io.read("j").unwrap().unwrap(), b"fresh+tail");
        assert_eq!(io.read("missing").unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
