//! The versioned system store behind the `store_put` and
//! `store_analyze` wire queries.
//!
//! A [`SystemStore`] holds *named* systems in parsed form. Every
//! `store_put` on a name bumps that entry's version and diffs the new
//! body against the previous one at **resource, chain and task
//! granularity** ([`StoreDiff`]); every `store_analyze` re-analyzes the
//! current version **incrementally**: distributed entries keep a
//! per-entry [`HolisticMemo`] whose rows are keyed by the
//! fingerprint-and-guard [`twca_chains::SystemKey`] of each resource's
//! effective system, so an edit invalidates exactly the rows whose
//! inputs changed — unchanged resources are answered from the memo,
//! and only the dirty-resource worklist downstream of the edit is
//! recomputed.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use twca_dist::{render_distributed, DistributedSystem, HolisticMemo};
use twca_model::{render_system, System};

use crate::error::{ApiError, ApiErrorKind};
use crate::persist::{
    self, encode_put, recover, PersistPolicy, PersistSeq, PersistStats, Persistence, PutRecord,
    RecoveryReport, StoreIo, JOURNAL_FILE, KIND_DIST, KIND_UNI, SNAPSHOT_FILE,
};
use std::sync::atomic::Ordering;

/// One stored body: a uniprocessor chain system or a distributed
/// linked-resource system, kept parsed so repeated analyses skip the
/// DSL front end.
#[derive(Debug, Clone)]
pub enum StoredBody {
    /// One SPP resource.
    Uni(System),
    /// A distributed system of linked resources.
    Dist(DistributedSystem),
}

/// What changed between two consecutive versions of a stored system.
///
/// Counts are over the *new* body plus removals: an added, removed or
/// edited chain counts once in `chains_changed` and once per affected
/// task in `tasks_changed`; a resource counts in `resources_changed`
/// when any of its chains changed or its incident links moved.
/// Uniprocessor bodies are treated as a single resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreDiff {
    /// Resources with any changed chain or a moved incident link.
    pub resources_changed: u64,
    /// Chains added, removed, or edited (any field, including tasks).
    pub chains_changed: u64,
    /// Tasks added, removed, or edited (name, priority, or WCET).
    pub tasks_changed: u64,
}

impl StoreDiff {
    /// Whether nothing changed between the versions.
    pub fn is_empty(&self) -> bool {
        *self == StoreDiff::default()
    }
}

/// The receipt of one [`SystemStore::put`]: the version now current
/// under the name and the diff against the previous version (all-zero
/// for a first put).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PutReceipt {
    /// The entry name.
    pub name: String,
    /// The version just stored (1 for a first put).
    pub version: u64,
    /// Diff against the previous version; all-zero when `version == 1`.
    pub diff: StoreDiff,
}

/// One named entry: the current version, its parsed body, and the
/// warm per-resource analysis rows reused by delta re-analysis.
#[derive(Debug)]
pub(crate) struct StoreEntry {
    pub(crate) version: u64,
    pub(crate) body: StoredBody,
    /// The body rendered to DSL text — kept only on durable stores,
    /// where snapshots re-emit it without re-rendering.
    pub(crate) text: Option<String>,
    /// Per-resource holistic rows keyed by effective-system
    /// [`twca_chains::SystemKey`]; survives puts so unchanged
    /// resources of the next version hit warm rows.
    pub(crate) memo: HolisticMemo,
}

/// Named, versioned systems with per-entry delta-analysis memos.
///
/// The outer map lock is held only for lookups and insertions; each
/// entry has its own lock, held for the duration of a put or an
/// analysis of that entry, so concurrent requests on *different* names
/// never serialize against each other.
///
/// # Examples
///
/// ```
/// use twca_api::{StoredBody, SystemStore};
/// use twca_model::parse_system;
///
/// let store = SystemStore::new();
/// let sys = "chain c periodic=100 deadline=100 { task t prio=1 wcet=10 }";
/// let first = store.put("plant", StoredBody::Uni(parse_system(sys).unwrap())).unwrap();
/// assert_eq!(first.version, 1);
/// assert!(first.diff.is_empty());
///
/// let edited = "chain c periodic=100 deadline=100 { task t prio=1 wcet=12 }";
/// let second = store.put("plant", StoredBody::Uni(parse_system(edited).unwrap())).unwrap();
/// assert_eq!(second.version, 2);
/// assert_eq!(second.diff.tasks_changed, 1);
/// assert_eq!(second.diff.chains_changed, 1);
/// ```
///
/// # Durability
///
/// [`SystemStore::durable`] opens a store backed by a journal and
/// snapshots behind a [`StoreIo`] (see [`crate::persist`]): every put
/// is appended to the journal *before* it is visible in memory, and a
/// restart replays snapshot + journal so version history survives the
/// process. Durable puts serialize on the journal's commit lock —
/// the per-entry concurrency of in-memory stores applies to analyses,
/// not to durable puts.
#[derive(Debug, Default)]
pub struct SystemStore {
    entries: Mutex<HashMap<String, Arc<Mutex<StoreEntry>>>>,
    persist: Option<Persistence>,
    dedup: Mutex<DedupLedger>,
}

/// At-most-once receipts for puts that carried a client dedup id:
/// a bounded id → receipt map in insertion order, so a retried put
/// whose acknowledgement was lost in transit returns the original
/// receipt instead of being applied again.
///
/// The ledger is in-memory: its at-most-once guarantee covers the
/// lifetime of the serving process (a client retrying across a server
/// crash re-applies, which is the pre-dedup behavior).
#[derive(Debug, Default)]
struct DedupLedger {
    receipts: HashMap<String, PutReceipt>,
    order: std::collections::VecDeque<String>,
}

/// Dedup receipts remembered before the oldest ids are forgotten.
const DEDUP_CAPACITY: usize = 4096;

/// The longest accepted store name, in bytes.
const MAX_STORE_NAME: usize = 128;

/// Rejects names that are empty, over-long, or could escape a store
/// directory once used as snapshot/journal path components.
pub(crate) fn validate_store_name(name: &str) -> Result<(), ApiError> {
    let reason = if name.is_empty() {
        Some("empty".to_owned())
    } else if name.len() > MAX_STORE_NAME {
        Some(format!("longer than {MAX_STORE_NAME} bytes"))
    } else if name.contains('/') || name.contains('\\') {
        Some("contains a path separator".to_owned())
    } else if name.contains('\0') {
        Some("contains a NUL byte".to_owned())
    } else if name.contains("..") {
        Some("contains `..`".to_owned())
    } else {
        None
    };
    match reason {
        None => Ok(()),
        Some(reason) => Err(ApiError::new(
            ApiErrorKind::Request,
            format!("invalid store name: {reason}"),
        )),
    }
}

/// Renders a body to the DSL text the journal and snapshots carry.
/// Bodies that round-trip through the parser always render; hand-built
/// bodies with activation models the DSL cannot express are refused —
/// persisting them would corrupt recovery.
fn render_body(body: &StoredBody) -> Result<(u8, String), ApiError> {
    let (kind, text) = match body {
        StoredBody::Uni(system) => (KIND_UNI, render_system(system)),
        StoredBody::Dist(system) => (KIND_DIST, render_distributed(system)),
    };
    if text.contains("# unrepresentable") {
        return Err(ApiError::new(
            ApiErrorKind::Persist,
            "body uses an activation model the persistent DSL format cannot express",
        ));
    }
    Ok((kind, text))
}

impl SystemStore {
    /// An empty in-memory store; history dies with the process.
    pub fn new() -> SystemStore {
        SystemStore::default()
    }

    /// Opens a durable store over `io`: recovers the newest valid
    /// snapshot plus journal (repairing a torn tail), and journals
    /// every subsequent put per `policy`.
    ///
    /// # Errors
    ///
    /// [`ApiErrorKind::Persist`] when recovery refuses corruption or
    /// the backing I/O fails — never a silently empty store.
    pub fn durable(
        io: Arc<dyn StoreIo>,
        policy: PersistPolicy,
    ) -> Result<(SystemStore, RecoveryReport), ApiError> {
        let recovered = recover(io.as_ref())?;
        if let Some(valid_prefix) = &recovered.repaired_journal {
            io.replace(JOURNAL_FILE, valid_prefix)?;
        }
        let entries = recovered
            .entries
            .into_iter()
            .map(|(name, (version, body, text))| {
                (
                    name,
                    Arc::new(Mutex::new(StoreEntry {
                        version,
                        body,
                        text: Some(text),
                        memo: HolisticMemo::new(),
                    })),
                )
            })
            .collect();
        let store = SystemStore {
            entries: Mutex::new(entries),
            persist: Some(Persistence {
                io,
                policy,
                seq: Mutex::new(PersistSeq {
                    next_seq: recovered.last_seq + 1,
                    since_sync: 0,
                    since_snapshot: 0,
                }),
                counters: Default::default(),
                recovery: recovered.report,
            }),
            dedup: Mutex::new(DedupLedger::default()),
        };
        Ok((store, recovered.report))
    }

    /// Stores `body` under `name`, creating version 1 or bumping the
    /// existing entry's version, and returns the receipt with the diff
    /// against the previous version. On a durable store the put is
    /// journaled before it becomes visible.
    ///
    /// # Errors
    ///
    /// [`ApiErrorKind::Request`] for an invalid name;
    /// [`ApiErrorKind::Persist`] when journaling fails (the put is not
    /// applied) or a post-append fsync/snapshot fails (the put *is*
    /// applied and journaled; retrying is safe).
    pub fn put(&self, name: &str, body: StoredBody) -> Result<PutReceipt, ApiError> {
        validate_store_name(name)?;
        match &self.persist {
            None => Ok(self.put_in_memory(name, body)),
            Some(_) => self.put_durable(name, body),
        }
    }

    /// [`SystemStore::put`] with an optional client dedup id, honored
    /// at most once: a retry of an id this store already acknowledged
    /// returns the original receipt (flagged `true`) without applying
    /// or journaling anything again.
    ///
    /// # Errors
    ///
    /// As [`SystemStore::put`]; a failed put records nothing under the
    /// id, so retrying it is safe and will apply.
    pub fn put_dedup(
        &self,
        name: &str,
        body: StoredBody,
        dedup: Option<&str>,
    ) -> Result<(PutReceipt, bool), ApiError> {
        let Some(id) = dedup else {
            return Ok((self.put(name, body)?, false));
        };
        // The ledger lock is held across the apply so two concurrent
        // retries of one id cannot both miss and double-apply; puts
        // without an id never touch it.
        let mut ledger = self.dedup.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(receipt) = ledger.receipts.get(id) {
            return Ok((receipt.clone(), true));
        }
        let receipt = self.put(name, body)?;
        if ledger.receipts.len() >= DEDUP_CAPACITY {
            if let Some(oldest) = ledger.order.pop_front() {
                ledger.receipts.remove(&oldest);
            }
        }
        ledger.order.push_back(id.to_owned());
        ledger.receipts.insert(id.to_owned(), receipt.clone());
        Ok((receipt, false))
    }

    fn put_in_memory(&self, name: &str, body: StoredBody) -> PutReceipt {
        let slot = {
            let mut entries = self.entries.lock().expect("store poisoned");
            match entries.get(name) {
                Some(slot) => Arc::clone(slot),
                None => {
                    entries.insert(
                        name.to_owned(),
                        Arc::new(Mutex::new(StoreEntry {
                            version: 1,
                            body,
                            text: None,
                            memo: HolisticMemo::new(),
                        })),
                    );
                    return PutReceipt {
                        name: name.to_owned(),
                        version: 1,
                        diff: StoreDiff::default(),
                    };
                }
            }
        };
        let mut entry = slot.lock().expect("store entry poisoned");
        let diff = diff_bodies(&entry.body, &body);
        entry.version += 1;
        entry.body = body;
        // The memo is deliberately kept: rows are keyed by the
        // effective system's fingerprint, so rows of unchanged
        // resources stay valid and rows of edited ones simply miss.
        PutReceipt {
            name: name.to_owned(),
            version: entry.version,
            diff,
        }
    }

    fn put_durable(&self, name: &str, body: StoredBody) -> Result<PutReceipt, ApiError> {
        let persist = self.persist.as_ref().expect("checked durable");
        let (kind, text) = render_body(&body)?;
        // The commit lock: journal order, sequence numbers and entry
        // versions must agree, so durable puts fully serialize here.
        let mut seq = persist.seq.lock().expect("persist poisoned");

        // Compute the receipt against the current entry (lock released
        // before I/O; no other put can interleave while we hold `seq`).
        let slot = self.handle(name);
        let (version, diff) = match &slot {
            None => (1, StoreDiff::default()),
            Some(slot) => {
                let entry = slot.lock().expect("store entry poisoned");
                (entry.version + 1, diff_bodies(&entry.body, &body))
            }
        };

        // Journal first: a put is only acknowledged once its record is
        // on the journal, so recovery can never know *more* than the
        // client was told.
        let record = encode_put(&PutRecord {
            seq: seq.next_seq,
            version,
            kind,
            name: name.to_owned(),
            text: text.clone(),
        });
        persist.io.append(JOURNAL_FILE, &record)?;
        seq.next_seq += 1;
        seq.since_sync += 1;
        seq.since_snapshot += 1;
        persist
            .counters
            .journal_appends
            .fetch_add(1, Ordering::Relaxed);
        persist
            .counters
            .journal_bytes
            .fetch_add(record.len() as u64, Ordering::Relaxed);

        // The record is down: make the put visible before anything
        // else can fail, so memory and journal never diverge.
        match slot {
            Some(slot) => {
                let mut entry = slot.lock().expect("store entry poisoned");
                entry.version = version;
                entry.body = body;
                entry.text = Some(text);
            }
            None => {
                self.entries.lock().expect("store poisoned").insert(
                    name.to_owned(),
                    Arc::new(Mutex::new(StoreEntry {
                        version,
                        body,
                        text: Some(text),
                        memo: HolisticMemo::new(),
                    })),
                );
            }
        }
        let receipt = PutReceipt {
            name: name.to_owned(),
            version,
            diff,
        };

        // Policy work after the commit point. A failure here surfaces
        // as an error, but the put above is journaled and applied —
        // retrying simply appends the same body as the next version.
        if persist.policy.sync_every > 0 && seq.since_sync >= persist.policy.sync_every {
            persist.io.sync(JOURNAL_FILE)?;
            seq.since_sync = 0;
            persist
                .counters
                .journal_syncs
                .fetch_add(1, Ordering::Relaxed);
        }
        if persist.policy.snapshot_every > 0 && seq.since_snapshot >= persist.policy.snapshot_every
        {
            self.write_snapshot(persist, &mut seq)?;
        }
        Ok(receipt)
    }

    /// Writes a snapshot covering everything journaled so far, then
    /// resets the journal. Caller holds the commit lock.
    fn write_snapshot(
        &self,
        persist: &Persistence,
        seq: &mut MutexGuard<'_, PersistSeq>,
    ) -> Result<(), ApiError> {
        let last_seq = seq.next_seq - 1;
        let slots: Vec<(String, Arc<Mutex<StoreEntry>>)> = {
            let entries = self.entries.lock().expect("store poisoned");
            entries
                .iter()
                .map(|(name, slot)| (name.clone(), Arc::clone(slot)))
                .collect()
        };
        let mut dump: Vec<(String, u64, u8, String)> = Vec::with_capacity(slots.len());
        for (name, slot) in slots {
            let entry = slot.lock().expect("store entry poisoned");
            let (kind, text) = match &entry.text {
                Some(text) => {
                    let kind = match &entry.body {
                        StoredBody::Uni(_) => KIND_UNI,
                        StoredBody::Dist(_) => KIND_DIST,
                    };
                    (kind, text.clone())
                }
                None => render_body(&entry.body)?,
            };
            dump.push((name, entry.version, kind, text));
        }
        dump.sort_by(|a, b| a.0.cmp(&b.0));
        let bytes = persist::encode_snapshot(last_seq, &dump);
        persist.io.replace(SNAPSHOT_FILE, &bytes)?;
        // Crash window here: the snapshot already covers every journal
        // record, so replay skips them all — reset is cosmetic.
        persist.io.replace(JOURNAL_FILE, &[])?;
        seq.since_snapshot = 0;
        seq.since_sync = 0;
        persist
            .counters
            .snapshots_written
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Forces a snapshot (and journal reset) now. Called on service
    /// drain so a clean shutdown restarts from a snapshot, not a
    /// replay. No-op on in-memory stores.
    pub fn flush(&self) -> Result<(), ApiError> {
        match &self.persist {
            None => Ok(()),
            Some(persist) => {
                let mut seq = persist.seq.lock().expect("persist poisoned");
                if seq.next_seq == 1 && self.entries.lock().expect("store poisoned").is_empty() {
                    return Ok(()); // nothing ever stored
                }
                self.write_snapshot(persist, &mut seq)
            }
        }
    }

    /// Point-in-time persistence counters; all zeros for an in-memory
    /// store.
    pub fn persist_stats(&self) -> PersistStats {
        self.persist
            .as_ref()
            .map(Persistence::stats)
            .unwrap_or_default()
    }

    /// What recovery found when this store was opened, if durable.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.persist.as_ref().map(|p| p.recovery)
    }

    /// The names currently stored, in no particular order.
    pub fn names(&self) -> Vec<String> {
        self.entries
            .lock()
            .expect("store poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// A sorted dump of every entry: `(name, version, body)`. Used by
    /// the recovery oracle to compare a recovered store against the
    /// expected prefix state.
    pub fn export(&self) -> Vec<(String, u64, StoredBody)> {
        let slots: Vec<(String, Arc<Mutex<StoreEntry>>)> = {
            let entries = self.entries.lock().expect("store poisoned");
            entries
                .iter()
                .map(|(name, slot)| (name.clone(), Arc::clone(slot)))
                .collect()
        };
        let mut dump: Vec<(String, u64, StoredBody)> = slots
            .into_iter()
            .map(|(name, slot)| {
                let entry = slot.lock().expect("store entry poisoned");
                (name, entry.version, entry.body.clone())
            })
            .collect();
        dump.sort_by(|a, b| a.0.cmp(&b.0));
        dump
    }

    /// The handle of `name`'s entry, if present. The caller locks the
    /// entry for the duration of its analysis.
    pub(crate) fn handle(&self, name: &str) -> Option<Arc<Mutex<StoreEntry>>> {
        self.entries
            .lock()
            .expect("store poisoned")
            .get(name)
            .map(Arc::clone)
    }
}

/// Diffs two bodies. A kind flip (uni ↔ dist) counts the whole new
/// body as changed — nothing structural carries over.
fn diff_bodies(old: &StoredBody, new: &StoredBody) -> StoreDiff {
    match (old, new) {
        (StoredBody::Uni(o), StoredBody::Uni(n)) => {
            let (chains, tasks) = diff_systems(o, n);
            StoreDiff {
                resources_changed: (chains > 0) as u64,
                chains_changed: chains,
                tasks_changed: tasks,
            }
        }
        (StoredBody::Dist(o), StoredBody::Dist(n)) => diff_dist(o, n),
        (_, new) => full_diff(new),
    }
}

/// Counts every resource, chain and task of `body` as changed.
fn full_diff(body: &StoredBody) -> StoreDiff {
    match body {
        StoredBody::Uni(system) => StoreDiff {
            resources_changed: 1,
            chains_changed: system.chains().len() as u64,
            tasks_changed: system.chains().iter().map(|c| c.tasks().len() as u64).sum(),
        },
        StoredBody::Dist(system) => StoreDiff {
            resources_changed: system.resources().len() as u64,
            chains_changed: system
                .resources()
                .iter()
                .map(|r| r.system().chains().len() as u64)
                .sum(),
            tasks_changed: system
                .resources()
                .iter()
                .flat_map(|r| r.system().chains())
                .map(|c| c.tasks().len() as u64)
                .sum(),
        },
    }
}

/// `(chains_changed, tasks_changed)` between two chain systems,
/// matching chains by name and tasks by position within a chain.
fn diff_systems(old: &System, new: &System) -> (u64, u64) {
    let mut chains = 0u64;
    let mut tasks = 0u64;
    for new_chain in new.chains() {
        match old.chain_by_name(new_chain.name()) {
            None => {
                chains += 1;
                tasks += new_chain.tasks().len() as u64;
            }
            Some((_, old_chain)) => {
                if old_chain == new_chain {
                    continue;
                }
                chains += 1;
                let (ot, nt) = (old_chain.tasks(), new_chain.tasks());
                for i in 0..ot.len().max(nt.len()) {
                    if ot.get(i) != nt.get(i) {
                        tasks += 1;
                    }
                }
            }
        }
    }
    for old_chain in old.chains() {
        if new.chain_by_name(old_chain.name()).is_none() {
            chains += 1;
            tasks += old_chain.tasks().len() as u64;
        }
    }
    (chains, tasks)
}

/// Diffs two distributed systems: resources are matched by name, each
/// matched pair diffed as chain systems; added/removed resources count
/// fully. A link added or removed marks its consumer-side resource
/// changed (its effective activation inputs move) even when the
/// resource's own declaration is untouched.
fn diff_dist(old: &DistributedSystem, new: &DistributedSystem) -> StoreDiff {
    let mut diff = StoreDiff::default();
    let mut changed_resources: Vec<String> = Vec::new();
    let old_by_name: HashMap<&str, &System> = old
        .resources()
        .iter()
        .map(|r| (r.name(), r.system()))
        .collect();
    let new_names: HashMap<&str, ()> = new.resources().iter().map(|r| (r.name(), ())).collect();

    for resource in new.resources() {
        match old_by_name.get(resource.name()) {
            None => {
                changed_resources.push(resource.name().to_owned());
                diff.chains_changed += resource.system().chains().len() as u64;
                diff.tasks_changed += resource
                    .system()
                    .chains()
                    .iter()
                    .map(|c| c.tasks().len() as u64)
                    .sum::<u64>();
            }
            Some(old_system) => {
                let (chains, tasks) = diff_systems(old_system, resource.system());
                if chains > 0 {
                    changed_resources.push(resource.name().to_owned());
                }
                diff.chains_changed += chains;
                diff.tasks_changed += tasks;
            }
        }
    }
    for resource in old.resources() {
        if !new_names.contains_key(resource.name()) {
            changed_resources.push(resource.name().to_owned());
            diff.chains_changed += resource.system().chains().len() as u64;
            diff.tasks_changed += resource
                .system()
                .chains()
                .iter()
                .map(|c| c.tasks().len() as u64)
                .sum::<u64>();
        }
    }

    // Links are compared as name quadruples so resource reordering is
    // not a change; a moved link dirties the consumer resource.
    let old_links = link_names(old);
    let new_links = link_names(new);
    for link in old_links.iter().filter(|l| !new_links.contains(l)) {
        changed_resources.push(link.2.clone());
    }
    for link in new_links.iter().filter(|l| !old_links.contains(l)) {
        changed_resources.push(link.2.clone());
    }

    changed_resources.sort_unstable();
    changed_resources.dedup();
    diff.resources_changed = changed_resources.len() as u64;
    diff
}

/// `(from_resource, from_chain, to_resource, to_chain)` per link.
fn link_names(system: &DistributedSystem) -> Vec<(String, String, String, String)> {
    system
        .links()
        .iter()
        .map(|link| {
            let (fr, fc) = system.site_names(link.from());
            let (tr, tc) = system.site_names(link.to());
            (fr, fc, tr, tc)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use twca_dist::DistributedSystemBuilder;
    use twca_model::parse_system;

    fn uni(wcet: u64) -> StoredBody {
        StoredBody::Uni(
            parse_system(&format!(
                "chain c periodic=100 deadline=100 {{ task t prio=1 wcet={wcet} }}
                 chain d periodic=200 {{ task u prio=2 wcet=5 }}"
            ))
            .unwrap(),
        )
    }

    fn dist(edit: Option<usize>) -> StoredBody {
        let mut builder = DistributedSystemBuilder::new();
        for i in 0..4 {
            let wcet = 10 + u64::from(edit == Some(i));
            let system = parse_system(&format!(
                "chain c{i} periodic=100 deadline=400 {{ task t{i} prio=1 wcet={wcet} }}"
            ))
            .unwrap();
            builder = builder.resource(format!("r{i}"), system);
        }
        StoredBody::Dist(
            builder
                .link(("r0", "c0"), ("r1", "c1"))
                .link(("r1", "c1"), ("r2", "c2"))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn versions_count_up_and_diffs_localize_edits() {
        let store = SystemStore::new();
        assert_eq!(store.put("s", uni(10)).unwrap().version, 1);
        let receipt = store.put("s", uni(11)).unwrap();
        assert_eq!(receipt.version, 2);
        assert_eq!(
            receipt.diff,
            StoreDiff {
                resources_changed: 1,
                chains_changed: 1,
                tasks_changed: 1
            }
        );
        // Identical put: version bumps, nothing changed.
        let receipt = store.put("s", uni(11)).unwrap();
        assert_eq!(receipt.version, 3);
        assert!(receipt.diff.is_empty());
        // Names are independent entries.
        assert_eq!(store.put("other", uni(10)).unwrap().version, 1);
        let mut names = store.names();
        names.sort();
        assert_eq!(names, ["other", "s"]);
    }

    #[test]
    fn dist_diff_counts_only_the_edited_resource() {
        let store = SystemStore::new();
        store.put("d", dist(None)).unwrap();
        let receipt = store.put("d", dist(Some(2))).unwrap();
        assert_eq!(
            receipt.diff,
            StoreDiff {
                resources_changed: 1,
                chains_changed: 1,
                tasks_changed: 1
            }
        );
    }

    #[test]
    fn link_moves_dirty_the_consumer_resource() {
        let build = |second_target: &str| {
            let mut builder = DistributedSystemBuilder::new();
            for i in 0..4 {
                let system = parse_system(&format!(
                    "chain c{i} periodic=100 {{ task t{i} prio=1 wcet=10 }}"
                ))
                .unwrap();
                builder = builder.resource(format!("r{i}"), system);
            }
            StoredBody::Dist(
                builder
                    .link(("r0", "c0"), ("r1", "c1"))
                    .link(
                        ("r0", "c0"),
                        (second_target, format!("c{}", &second_target[1..])),
                    )
                    .build()
                    .unwrap(),
            )
        };
        let store = SystemStore::new();
        store.put("d", build("r2")).unwrap();
        let receipt = store.put("d", build("r3")).unwrap();
        // No chain declaration changed, but both link consumers moved.
        assert_eq!(receipt.diff.chains_changed, 0);
        assert_eq!(receipt.diff.resources_changed, 2);
    }

    #[test]
    fn bad_names_are_rejected_with_typed_errors() {
        let store = SystemStore::new();
        let long = "x".repeat(MAX_STORE_NAME + 1);
        for bad in ["", "a/b", "a\\b", "..", "a..b", "a\0b", long.as_str()] {
            let err = store.put(bad, uni(10)).unwrap_err();
            assert_eq!(err.kind, ApiErrorKind::Request, "name {bad:?}");
            assert!(
                err.message.contains("invalid store name"),
                "{}",
                err.message
            );
        }
        // Boundary: exactly the limit is fine, as are dots that are
        // not `..`.
        let edge = "x".repeat(MAX_STORE_NAME);
        assert!(store.put(&edge, uni(10)).is_ok());
        assert!(store.put("v1.2.plant", uni(10)).is_ok());
    }

    #[test]
    fn durable_puts_survive_reopen() {
        use crate::persist::MemIo;

        let io = Arc::new(MemIo::new());
        let (store, report) = SystemStore::durable(
            Arc::clone(&io) as Arc<dyn StoreIo>,
            PersistPolicy::default(),
        )
        .unwrap();
        assert_eq!(report, RecoveryReport::default());
        store.put("s", uni(10)).unwrap();
        store.put("s", uni(11)).unwrap();
        store.put("d", dist(None)).unwrap();
        let before = store.export();

        let (reopened, report) = SystemStore::durable(
            Arc::new(MemIo::from_state(io.state())) as Arc<dyn StoreIo>,
            PersistPolicy::default(),
        )
        .unwrap();
        assert_eq!(report.replayed, 3);
        assert_eq!(report.entries, 2);
        let after = reopened.export();
        assert_eq!(before.len(), after.len());
        for ((n0, v0, b0), (n1, v1, b1)) in before.iter().zip(after.iter()) {
            assert_eq!((n0, v0), (n1, v1));
            assert_eq!(render_body(b0).unwrap(), render_body(b1).unwrap());
        }
        // Version history continues where it left off.
        assert_eq!(reopened.put("s", uni(12)).unwrap().version, 3);
    }

    #[test]
    fn flush_snapshots_and_resets_the_journal() {
        use crate::persist::MemIo;

        let io = Arc::new(MemIo::new());
        let (store, _) = SystemStore::durable(
            Arc::clone(&io) as Arc<dyn StoreIo>,
            PersistPolicy::default(),
        )
        .unwrap();
        store.put("s", uni(10)).unwrap();
        store.flush().unwrap();
        let state = io.state();
        assert!(state[JOURNAL_FILE].is_empty());
        assert!(!state[SNAPSHOT_FILE].is_empty());
        let stats = store.persist_stats();
        assert_eq!(stats.journal_appends, 1);
        assert_eq!(stats.snapshots_written, 1);

        // Snapshot-only state (journal reset) recovers cleanly — the
        // snapshot-newer-than-journal edge.
        let (reopened, report) = SystemStore::durable(
            Arc::new(MemIo::from_state(state)) as Arc<dyn StoreIo>,
            PersistPolicy::default(),
        )
        .unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.replayed, 0);
        assert_eq!(reopened.put("s", uni(11)).unwrap().version, 2);
    }

    #[test]
    fn journal_failure_refuses_the_put_without_applying_it() {
        use crate::persist::MemIo;

        let io = Arc::new(MemIo::new());
        let (store, _) = SystemStore::durable(
            Arc::clone(&io) as Arc<dyn StoreIo>,
            PersistPolicy::default(),
        )
        .unwrap();
        store.put("s", uni(10)).unwrap();
        io.fail_after(0);
        let err = store.put("s", uni(11)).unwrap_err();
        assert_eq!(err.kind, ApiErrorKind::Persist);
        // The failed put is not visible: version unchanged.
        assert_eq!(store.export()[0].1, 1);
    }

    #[test]
    fn kind_flips_count_the_whole_new_body() {
        let store = SystemStore::new();
        store.put("s", uni(10)).unwrap();
        let receipt = store.put("s", dist(None)).unwrap();
        assert_eq!(receipt.diff.resources_changed, 4);
        assert_eq!(receipt.diff.chains_changed, 4);
        assert_eq!(receipt.diff.tasks_changed, 4);
    }
}
