//! The versioned system store behind the `store_put` and
//! `store_analyze` wire queries.
//!
//! A [`SystemStore`] holds *named* systems in parsed form. Every
//! `store_put` on a name bumps that entry's version and diffs the new
//! body against the previous one at **resource, chain and task
//! granularity** ([`StoreDiff`]); every `store_analyze` re-analyzes the
//! current version **incrementally**: distributed entries keep a
//! per-entry [`HolisticMemo`] whose rows are keyed by the
//! fingerprint-and-guard [`twca_chains::SystemKey`] of each resource's
//! effective system, so an edit invalidates exactly the rows whose
//! inputs changed — unchanged resources are answered from the memo,
//! and only the dirty-resource worklist downstream of the edit is
//! recomputed.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use twca_dist::{DistributedSystem, HolisticMemo};
use twca_model::System;

/// One stored body: a uniprocessor chain system or a distributed
/// linked-resource system, kept parsed so repeated analyses skip the
/// DSL front end.
#[derive(Debug, Clone)]
pub enum StoredBody {
    /// One SPP resource.
    Uni(System),
    /// A distributed system of linked resources.
    Dist(DistributedSystem),
}

/// What changed between two consecutive versions of a stored system.
///
/// Counts are over the *new* body plus removals: an added, removed or
/// edited chain counts once in `chains_changed` and once per affected
/// task in `tasks_changed`; a resource counts in `resources_changed`
/// when any of its chains changed or its incident links moved.
/// Uniprocessor bodies are treated as a single resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreDiff {
    /// Resources with any changed chain or a moved incident link.
    pub resources_changed: u64,
    /// Chains added, removed, or edited (any field, including tasks).
    pub chains_changed: u64,
    /// Tasks added, removed, or edited (name, priority, or WCET).
    pub tasks_changed: u64,
}

impl StoreDiff {
    /// Whether nothing changed between the versions.
    pub fn is_empty(&self) -> bool {
        *self == StoreDiff::default()
    }
}

/// The receipt of one [`SystemStore::put`]: the version now current
/// under the name and the diff against the previous version (all-zero
/// for a first put).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PutReceipt {
    /// The entry name.
    pub name: String,
    /// The version just stored (1 for a first put).
    pub version: u64,
    /// Diff against the previous version; all-zero when `version == 1`.
    pub diff: StoreDiff,
}

/// One named entry: the current version, its parsed body, and the
/// warm per-resource analysis rows reused by delta re-analysis.
#[derive(Debug)]
pub(crate) struct StoreEntry {
    pub(crate) version: u64,
    pub(crate) body: StoredBody,
    /// Per-resource holistic rows keyed by effective-system
    /// [`twca_chains::SystemKey`]; survives puts so unchanged
    /// resources of the next version hit warm rows.
    pub(crate) memo: HolisticMemo,
}

/// Named, versioned systems with per-entry delta-analysis memos.
///
/// The outer map lock is held only for lookups and insertions; each
/// entry has its own lock, held for the duration of a put or an
/// analysis of that entry, so concurrent requests on *different* names
/// never serialize against each other.
///
/// # Examples
///
/// ```
/// use twca_api::{StoredBody, SystemStore};
/// use twca_model::parse_system;
///
/// let store = SystemStore::new();
/// let sys = "chain c periodic=100 deadline=100 { task t prio=1 wcet=10 }";
/// let first = store.put("plant", StoredBody::Uni(parse_system(sys).unwrap()));
/// assert_eq!(first.version, 1);
/// assert!(first.diff.is_empty());
///
/// let edited = "chain c periodic=100 deadline=100 { task t prio=1 wcet=12 }";
/// let second = store.put("plant", StoredBody::Uni(parse_system(edited).unwrap()));
/// assert_eq!(second.version, 2);
/// assert_eq!(second.diff.tasks_changed, 1);
/// assert_eq!(second.diff.chains_changed, 1);
/// ```
#[derive(Debug, Default)]
pub struct SystemStore {
    entries: Mutex<HashMap<String, Arc<Mutex<StoreEntry>>>>,
}

impl SystemStore {
    /// An empty store.
    pub fn new() -> SystemStore {
        SystemStore::default()
    }

    /// Stores `body` under `name`, creating version 1 or bumping the
    /// existing entry's version, and returns the receipt with the diff
    /// against the previous version.
    pub fn put(&self, name: &str, body: StoredBody) -> PutReceipt {
        let slot = {
            let mut entries = self.entries.lock().expect("store poisoned");
            match entries.get(name) {
                Some(slot) => Arc::clone(slot),
                None => {
                    entries.insert(
                        name.to_owned(),
                        Arc::new(Mutex::new(StoreEntry {
                            version: 1,
                            body,
                            memo: HolisticMemo::new(),
                        })),
                    );
                    return PutReceipt {
                        name: name.to_owned(),
                        version: 1,
                        diff: StoreDiff::default(),
                    };
                }
            }
        };
        let mut entry = slot.lock().expect("store entry poisoned");
        let diff = diff_bodies(&entry.body, &body);
        entry.version += 1;
        entry.body = body;
        // The memo is deliberately kept: rows are keyed by the
        // effective system's fingerprint, so rows of unchanged
        // resources stay valid and rows of edited ones simply miss.
        PutReceipt {
            name: name.to_owned(),
            version: entry.version,
            diff,
        }
    }

    /// The names currently stored, in no particular order.
    pub fn names(&self) -> Vec<String> {
        self.entries
            .lock()
            .expect("store poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// The handle of `name`'s entry, if present. The caller locks the
    /// entry for the duration of its analysis.
    pub(crate) fn handle(&self, name: &str) -> Option<Arc<Mutex<StoreEntry>>> {
        self.entries
            .lock()
            .expect("store poisoned")
            .get(name)
            .map(Arc::clone)
    }
}

/// Diffs two bodies. A kind flip (uni ↔ dist) counts the whole new
/// body as changed — nothing structural carries over.
fn diff_bodies(old: &StoredBody, new: &StoredBody) -> StoreDiff {
    match (old, new) {
        (StoredBody::Uni(o), StoredBody::Uni(n)) => {
            let (chains, tasks) = diff_systems(o, n);
            StoreDiff {
                resources_changed: (chains > 0) as u64,
                chains_changed: chains,
                tasks_changed: tasks,
            }
        }
        (StoredBody::Dist(o), StoredBody::Dist(n)) => diff_dist(o, n),
        (_, new) => full_diff(new),
    }
}

/// Counts every resource, chain and task of `body` as changed.
fn full_diff(body: &StoredBody) -> StoreDiff {
    match body {
        StoredBody::Uni(system) => StoreDiff {
            resources_changed: 1,
            chains_changed: system.chains().len() as u64,
            tasks_changed: system.chains().iter().map(|c| c.tasks().len() as u64).sum(),
        },
        StoredBody::Dist(system) => StoreDiff {
            resources_changed: system.resources().len() as u64,
            chains_changed: system
                .resources()
                .iter()
                .map(|r| r.system().chains().len() as u64)
                .sum(),
            tasks_changed: system
                .resources()
                .iter()
                .flat_map(|r| r.system().chains())
                .map(|c| c.tasks().len() as u64)
                .sum(),
        },
    }
}

/// `(chains_changed, tasks_changed)` between two chain systems,
/// matching chains by name and tasks by position within a chain.
fn diff_systems(old: &System, new: &System) -> (u64, u64) {
    let mut chains = 0u64;
    let mut tasks = 0u64;
    for new_chain in new.chains() {
        match old.chain_by_name(new_chain.name()) {
            None => {
                chains += 1;
                tasks += new_chain.tasks().len() as u64;
            }
            Some((_, old_chain)) => {
                if old_chain == new_chain {
                    continue;
                }
                chains += 1;
                let (ot, nt) = (old_chain.tasks(), new_chain.tasks());
                for i in 0..ot.len().max(nt.len()) {
                    if ot.get(i) != nt.get(i) {
                        tasks += 1;
                    }
                }
            }
        }
    }
    for old_chain in old.chains() {
        if new.chain_by_name(old_chain.name()).is_none() {
            chains += 1;
            tasks += old_chain.tasks().len() as u64;
        }
    }
    (chains, tasks)
}

/// Diffs two distributed systems: resources are matched by name, each
/// matched pair diffed as chain systems; added/removed resources count
/// fully. A link added or removed marks its consumer-side resource
/// changed (its effective activation inputs move) even when the
/// resource's own declaration is untouched.
fn diff_dist(old: &DistributedSystem, new: &DistributedSystem) -> StoreDiff {
    let mut diff = StoreDiff::default();
    let mut changed_resources: Vec<String> = Vec::new();
    let old_by_name: HashMap<&str, &System> = old
        .resources()
        .iter()
        .map(|r| (r.name(), r.system()))
        .collect();
    let new_names: HashMap<&str, ()> = new.resources().iter().map(|r| (r.name(), ())).collect();

    for resource in new.resources() {
        match old_by_name.get(resource.name()) {
            None => {
                changed_resources.push(resource.name().to_owned());
                diff.chains_changed += resource.system().chains().len() as u64;
                diff.tasks_changed += resource
                    .system()
                    .chains()
                    .iter()
                    .map(|c| c.tasks().len() as u64)
                    .sum::<u64>();
            }
            Some(old_system) => {
                let (chains, tasks) = diff_systems(old_system, resource.system());
                if chains > 0 {
                    changed_resources.push(resource.name().to_owned());
                }
                diff.chains_changed += chains;
                diff.tasks_changed += tasks;
            }
        }
    }
    for resource in old.resources() {
        if !new_names.contains_key(resource.name()) {
            changed_resources.push(resource.name().to_owned());
            diff.chains_changed += resource.system().chains().len() as u64;
            diff.tasks_changed += resource
                .system()
                .chains()
                .iter()
                .map(|c| c.tasks().len() as u64)
                .sum::<u64>();
        }
    }

    // Links are compared as name quadruples so resource reordering is
    // not a change; a moved link dirties the consumer resource.
    let old_links = link_names(old);
    let new_links = link_names(new);
    for link in old_links.iter().filter(|l| !new_links.contains(l)) {
        changed_resources.push(link.2.clone());
    }
    for link in new_links.iter().filter(|l| !old_links.contains(l)) {
        changed_resources.push(link.2.clone());
    }

    changed_resources.sort_unstable();
    changed_resources.dedup();
    diff.resources_changed = changed_resources.len() as u64;
    diff
}

/// `(from_resource, from_chain, to_resource, to_chain)` per link.
fn link_names(system: &DistributedSystem) -> Vec<(String, String, String, String)> {
    system
        .links()
        .iter()
        .map(|link| {
            let (fr, fc) = system.site_names(link.from());
            let (tr, tc) = system.site_names(link.to());
            (fr, fc, tr, tc)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use twca_dist::DistributedSystemBuilder;
    use twca_model::parse_system;

    fn uni(wcet: u64) -> StoredBody {
        StoredBody::Uni(
            parse_system(&format!(
                "chain c periodic=100 deadline=100 {{ task t prio=1 wcet={wcet} }}
                 chain d periodic=200 {{ task u prio=2 wcet=5 }}"
            ))
            .unwrap(),
        )
    }

    fn dist(edit: Option<usize>) -> StoredBody {
        let mut builder = DistributedSystemBuilder::new();
        for i in 0..4 {
            let wcet = 10 + u64::from(edit == Some(i));
            let system = parse_system(&format!(
                "chain c{i} periodic=100 deadline=400 {{ task t{i} prio=1 wcet={wcet} }}"
            ))
            .unwrap();
            builder = builder.resource(format!("r{i}"), system);
        }
        StoredBody::Dist(
            builder
                .link(("r0", "c0"), ("r1", "c1"))
                .link(("r1", "c1"), ("r2", "c2"))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn versions_count_up_and_diffs_localize_edits() {
        let store = SystemStore::new();
        assert_eq!(store.put("s", uni(10)).version, 1);
        let receipt = store.put("s", uni(11));
        assert_eq!(receipt.version, 2);
        assert_eq!(
            receipt.diff,
            StoreDiff {
                resources_changed: 1,
                chains_changed: 1,
                tasks_changed: 1
            }
        );
        // Identical put: version bumps, nothing changed.
        let receipt = store.put("s", uni(11));
        assert_eq!(receipt.version, 3);
        assert!(receipt.diff.is_empty());
        // Names are independent entries.
        assert_eq!(store.put("other", uni(10)).version, 1);
        let mut names = store.names();
        names.sort();
        assert_eq!(names, ["other", "s"]);
    }

    #[test]
    fn dist_diff_counts_only_the_edited_resource() {
        let store = SystemStore::new();
        store.put("d", dist(None));
        let receipt = store.put("d", dist(Some(2)));
        assert_eq!(
            receipt.diff,
            StoreDiff {
                resources_changed: 1,
                chains_changed: 1,
                tasks_changed: 1
            }
        );
    }

    #[test]
    fn link_moves_dirty_the_consumer_resource() {
        let build = |second_target: &str| {
            let mut builder = DistributedSystemBuilder::new();
            for i in 0..4 {
                let system = parse_system(&format!(
                    "chain c{i} periodic=100 {{ task t{i} prio=1 wcet=10 }}"
                ))
                .unwrap();
                builder = builder.resource(format!("r{i}"), system);
            }
            StoredBody::Dist(
                builder
                    .link(("r0", "c0"), ("r1", "c1"))
                    .link(
                        ("r0", "c0"),
                        (second_target, format!("c{}", &second_target[1..])),
                    )
                    .build()
                    .unwrap(),
            )
        };
        let store = SystemStore::new();
        store.put("d", build("r2"));
        let receipt = store.put("d", build("r3"));
        // No chain declaration changed, but both link consumers moved.
        assert_eq!(receipt.diff.chains_changed, 0);
        assert_eq!(receipt.diff.resources_changed, 2);
    }

    #[test]
    fn kind_flips_count_the_whole_new_body() {
        let store = SystemStore::new();
        store.put("s", uni(10));
        let receipt = store.put("s", dist(None));
        assert_eq!(receipt.diff.resources_changed, 4);
        assert_eq!(receipt.diff.chains_changed, 4);
        assert_eq!(receipt.diff.tasks_changed, 4);
    }
}
