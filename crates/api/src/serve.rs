//! JSON-Lines streaming: one request per input line, one response per
//! output line, in input order.

use std::io::{BufRead, Write};

use crate::json::Json;
use crate::request::AnalysisRequest;
use crate::response::AnalysisResponse;
use crate::session::Session;

/// What a [`serve`] loop processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Lines answered (blank lines are skipped).
    pub requests: usize,
    /// Responses whose outcome was an error.
    pub errors: usize,
}

/// Answers one request line. Malformed lines never panic and never
/// kill the stream: they produce an error response, echoing the `id`
/// when one is recoverable from the line.
pub fn respond_line(session: &Session, line: &str) -> AnalysisResponse {
    match Json::parse(line) {
        Err(e) => AnalysisResponse::error(None, e.into()),
        Ok(value) => {
            // Echo the id even when the request is structurally
            // invalid, so clients can correlate the failure.
            let id = value.get("id").and_then(Json::as_str).map(str::to_owned);
            match AnalysisRequest::from_json(&value) {
                Err(e) => AnalysisResponse::error(id, e),
                Ok(request) => session.analyze(&request),
            }
        }
    }
}

/// Runs the streaming loop: reads JSON-Lines requests from `input`,
/// writes one response line per request to `output` **in input
/// order**, flushing after every response so a pipe sees each answer
/// as soon as it exists. The session's cache stays warm across the
/// whole stream — the core of the `twca serve` mode.
///
/// # Errors
///
/// Only I/O errors of `input`/`output` abort the loop; analysis and
/// parse failures are streamed as error responses.
///
/// # Examples
///
/// ```
/// use twca_api::{serve, Session};
///
/// let input = "{\"id\": \"a\", \"system\": \"chain c periodic=10 { task t prio=1 wcet=1 }\"}\n";
/// let mut output = Vec::new();
/// let summary = serve(&Session::new(), input.as_bytes(), &mut output).unwrap();
/// assert_eq!(summary.requests, 1);
/// assert_eq!(summary.errors, 0);
/// let text = String::from_utf8(output).unwrap();
/// assert!(text.starts_with("{\"v\": 1, \"id\": \"a\", \"ok\": "));
/// ```
pub fn serve(
    session: &Session,
    input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = respond_line(session, &line);
        summary.requests += 1;
        if response.outcome.is_err() {
            summary.errors += 1;
        }
        writeln!(output, "{}", response.to_json())?;
        output.flush()?;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ApiErrorKind;

    const CHAIN: &str = "chain c periodic=100 deadline=100 { task t prio=1 wcet=10 }";

    #[test]
    fn responses_arrive_in_input_order_with_ids() {
        let input = format!(
            "{}\n\n{}\n{}\n",
            format_args!("{{\"id\": \"first\", \"system\": \"{CHAIN}\"}}"),
            "this is not json",
            format_args!("{{\"id\": \"third\", \"system\": \"{CHAIN}\"}}"),
        );
        let session = Session::new();
        let mut output = Vec::new();
        let summary = serve(&session, input.as_bytes(), &mut output).unwrap();
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.errors, 1);

        let lines: Vec<AnalysisResponse> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| AnalysisResponse::from_json(&Json::parse(l).unwrap()).unwrap())
            .collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].id.as_deref(), Some("first"));
        assert!(lines[0].outcome.is_ok());
        assert!(lines[1].id.is_none());
        assert_eq!(
            lines[1].outcome.as_ref().unwrap_err().kind,
            ApiErrorKind::Json
        );
        assert_eq!(lines[2].id.as_deref(), Some("third"));
        assert!(lines[2].outcome.is_ok());
    }

    #[test]
    fn invalid_requests_echo_their_id() {
        let session = Session::new();
        let response = respond_line(&session, r#"{"id": "x", "queries": []}"#);
        assert_eq!(response.id.as_deref(), Some("x"));
        assert!(response.outcome.is_err());
    }

    #[test]
    fn the_cache_stays_warm_across_the_stream() {
        let line =
            format!("{{\"system\": \"{CHAIN}\", \"queries\": [{{\"dmm\": {{\"ks\": [10]}}}}]}}\n");
        let input = line.repeat(3);
        let session = Session::new();
        let mut output = Vec::new();
        serve(&session, input.as_bytes(), &mut output).unwrap();
        assert!(session.cache_stats().hits > 0);
    }
}
