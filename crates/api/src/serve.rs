//! JSON-Lines streaming: one request per input line, one response per
//! output line, in input order.

use std::io::{BufRead, Write};
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::request::AnalysisRequest;
use crate::response::AnalysisResponse;
use crate::session::{CancelToken, Session};

/// Per-request wall-clock latency accumulation: count, total, and the
/// min/max extremes, all in nanoseconds. Mergeable across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyStats {
    /// Requests timed.
    pub count: u64,
    /// Summed latency of all timed requests.
    pub total_ns: u64,
    /// Fastest request; 0 when nothing was timed.
    pub min_ns: u64,
    /// Slowest request; 0 when nothing was timed.
    pub max_ns: u64,
}

impl LatencyStats {
    /// Records one request latency.
    pub fn record(&mut self, elapsed: Duration) {
        self.record_ns(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one request latency given in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
    }

    /// Folds another accumulation into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
    }

    /// Mean latency in nanoseconds; 0 when nothing was timed.
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// What a [`serve`] loop processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Lines answered (blank lines are skipped).
    pub requests: usize,
    /// Responses whose outcome was an error.
    pub errors: usize,
    /// Per-request wall-clock latency accumulation.
    pub latency: LatencyStats,
    /// Connection-edge counters of the drained service; all-zero for
    /// the single-lane stdio loop, which has no connection edge.
    pub edge: crate::EdgeCounters,
}

impl ServeSummary {
    /// Serializes the summary. The historical `requests`/`errors`
    /// members come first, byte-identical to earlier builds; the
    /// latency object is appended only when something was timed, and
    /// the edge object only when a connection edge saw any events.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("requests".into(), Json::UInt(self.requests as u64)),
            ("errors".into(), Json::UInt(self.errors as u64)),
        ];
        if self.latency.count > 0 {
            members.push((
                "latency_ns".into(),
                Json::Object(vec![
                    ("min".into(), Json::UInt(self.latency.min_ns)),
                    ("mean".into(), Json::UInt(self.latency.mean_ns())),
                    ("max".into(), Json::UInt(self.latency.max_ns)),
                ]),
            ));
        }
        if !self.edge.is_empty() {
            members.push((
                "edge".into(),
                Json::Object(vec![
                    (
                        "open_connections".into(),
                        Json::UInt(self.edge.open_connections),
                    ),
                    ("reaped".into(), Json::UInt(self.edge.reaped)),
                    ("timeouts".into(), Json::UInt(self.edge.timeouts)),
                    ("resets".into(), Json::UInt(self.edge.resets)),
                    (
                        "slow_consumers".into(),
                        Json::UInt(self.edge.slow_consumers),
                    ),
                    (
                        "queue_depth_peak".into(),
                        Json::UInt(self.edge.queue_depth_peak),
                    ),
                ]),
            ));
        }
        Json::Object(members)
    }
}

/// Answers one request line. Malformed lines never panic and never
/// kill the stream: they produce an error response, echoing the `id`
/// when one is recoverable from the line.
pub fn respond_line(session: &Session, line: &str) -> AnalysisResponse {
    respond_line_with(session, line, None)
}

/// [`respond_line`] under an external cancellation token: a raised token
/// preempts in-flight analysis and turns the answer into a typed
/// `canceled` error, still correlated to the request's `id`.
pub fn respond_line_with(
    session: &Session,
    line: &str,
    cancel: Option<&CancelToken>,
) -> AnalysisResponse {
    match Json::parse(line) {
        Err(e) => AnalysisResponse::error(None, e.into()),
        Ok(value) => {
            // Echo the id even when the request is structurally
            // invalid, so clients can correlate the failure.
            let id = value.get("id").and_then(Json::as_str).map(str::to_owned);
            match AnalysisRequest::from_json(&value) {
                Err(e) => AnalysisResponse::error(id, e),
                Ok(request) => session.analyze_with(&request, cancel),
            }
        }
    }
}

/// Runs the streaming loop: reads JSON-Lines requests from `input`,
/// writes one response line per request to `output` **in input
/// order**, flushing after every response so a pipe sees each answer
/// as soon as it exists. The session's cache stays warm across the
/// whole stream — the core of the `twca serve` mode.
///
/// # Errors
///
/// Only I/O errors of `input`/`output` abort the loop; analysis and
/// parse failures are streamed as error responses.
///
/// # Examples
///
/// ```
/// use twca_api::{serve, Session};
///
/// let input = "{\"id\": \"a\", \"system\": \"chain c periodic=10 { task t prio=1 wcet=1 }\"}\n";
/// let mut output = Vec::new();
/// let summary = serve(&Session::new(), input.as_bytes(), &mut output).unwrap();
/// assert_eq!(summary.requests, 1);
/// assert_eq!(summary.errors, 0);
/// let text = String::from_utf8(output).unwrap();
/// assert!(text.starts_with("{\"v\": 1, \"id\": \"a\", \"ok\": "));
/// ```
pub fn serve(
    session: &Session,
    input: impl BufRead,
    output: impl Write,
) -> std::io::Result<ServeSummary> {
    serve_with(session, input, output, None)
}

/// [`serve`] under an external cancellation token. Raising the token
/// mid-stream never aborts the loop: the in-flight request and every
/// later one stream back typed `canceled` error responses, still in
/// input order, until the input is drained.
pub fn serve_with(
    session: &Session,
    input: impl BufRead,
    mut output: impl Write,
    cancel: Option<&CancelToken>,
) -> std::io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let response = respond_line_with(session, &line, cancel);
        summary.latency.record(started.elapsed());
        summary.requests += 1;
        if response.outcome.is_err() {
            summary.errors += 1;
        }
        writeln!(output, "{}", response.to_json())?;
        output.flush()?;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ApiErrorKind;

    const CHAIN: &str = "chain c periodic=100 deadline=100 { task t prio=1 wcet=10 }";

    #[test]
    fn responses_arrive_in_input_order_with_ids() {
        let input = format!(
            "{}\n\n{}\n{}\n",
            format_args!("{{\"id\": \"first\", \"system\": \"{CHAIN}\"}}"),
            "this is not json",
            format_args!("{{\"id\": \"third\", \"system\": \"{CHAIN}\"}}"),
        );
        let session = Session::new();
        let mut output = Vec::new();
        let summary = serve(&session, input.as_bytes(), &mut output).unwrap();
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.errors, 1);

        let lines: Vec<AnalysisResponse> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| AnalysisResponse::from_json(&Json::parse(l).unwrap()).unwrap())
            .collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].id.as_deref(), Some("first"));
        assert!(lines[0].outcome.is_ok());
        assert!(lines[1].id.is_none());
        assert_eq!(
            lines[1].outcome.as_ref().unwrap_err().kind,
            ApiErrorKind::Json
        );
        assert_eq!(lines[2].id.as_deref(), Some("third"));
        assert!(lines[2].outcome.is_ok());
    }

    #[test]
    fn invalid_requests_echo_their_id() {
        let session = Session::new();
        let response = respond_line(&session, r#"{"id": "x", "queries": []}"#);
        assert_eq!(response.id.as_deref(), Some("x"));
        assert!(response.outcome.is_err());
    }

    #[test]
    fn over_budget_requests_stream_typed_errors_without_killing_later_ones() {
        // Request 1 exceeds its budget, request 2 (no budget override of
        // its own) succeeds: the stream must answer both, in order.
        let input = format!(
            "{}\n{}\n",
            format_args!(
                "{{\"id\": \"greedy\", \"system\": \"{CHAIN}\", \
                 \"queries\": [{{\"dmm\": {{\"ks\": [1,2,3,4,5,6,7,8]}}}}], \
                 \"options\": {{\"budget\": 2}}}}"
            ),
            format_args!("{{\"id\": \"modest\", \"system\": \"{CHAIN}\"}}"),
        );
        let session = Session::new();
        let mut output = Vec::new();
        let summary = serve(&session, input.as_bytes(), &mut output).unwrap();
        assert_eq!(summary.requests, 2);
        assert_eq!(summary.errors, 1);
        let lines: Vec<AnalysisResponse> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| AnalysisResponse::from_json(&Json::parse(l).unwrap()).unwrap())
            .collect();
        assert_eq!(lines[0].id.as_deref(), Some("greedy"));
        assert_eq!(
            lines[0].outcome.as_ref().unwrap_err().kind,
            ApiErrorKind::Budget
        );
        assert_eq!(lines[1].id.as_deref(), Some("modest"));
        assert!(lines[1].outcome.is_ok());
    }

    #[test]
    fn mid_stream_cancellation_streams_canceled_errors_in_order() {
        let line = format!("{{\"id\": \"r\", \"system\": \"{CHAIN}\"}}\n");
        let input = line.repeat(3);
        let session = Session::new();
        let token = crate::CancelToken::new();
        token.cancel();
        let mut output = Vec::new();
        let summary = serve_with(&session, input.as_bytes(), &mut output, Some(&token)).unwrap();
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.errors, 3);
        let lines: Vec<AnalysisResponse> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| AnalysisResponse::from_json(&Json::parse(l).unwrap()).unwrap())
            .collect();
        assert_eq!(lines.len(), 3, "cancellation must not abort the stream");
        for response in &lines {
            assert_eq!(response.id.as_deref(), Some("r"));
            assert_eq!(
                response.outcome.as_ref().unwrap_err().kind,
                ApiErrorKind::Canceled
            );
        }
    }

    #[test]
    fn latency_stats_accumulate_and_merge() {
        let mut a = LatencyStats::default();
        a.record_ns(10);
        a.record_ns(30);
        assert_eq!((a.count, a.min_ns, a.max_ns, a.mean_ns()), (2, 10, 30, 20));
        let mut b = LatencyStats::default();
        b.record_ns(5);
        a.merge(&b);
        assert_eq!((a.count, a.min_ns, a.max_ns), (3, 5, 30));
        let mut empty = LatencyStats::default();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn summary_json_leads_with_the_historical_fields() {
        let empty = ServeSummary {
            requests: 2,
            errors: 1,
            ..ServeSummary::default()
        };
        assert_eq!(
            empty.to_json().to_string(),
            "{\"requests\": 2, \"errors\": 1}"
        );
        let mut timed = empty;
        timed.latency.record_ns(7);
        assert_eq!(
            timed.to_json().to_string(),
            "{\"requests\": 2, \"errors\": 1, \
             \"latency_ns\": {\"min\": 7, \"mean\": 7, \"max\": 7}}"
        );
    }

    #[test]
    fn serve_times_every_request() {
        let input = format!("{{\"system\": \"{CHAIN}\"}}\nnot json\n");
        let summary = serve(&Session::new(), input.as_bytes(), &mut Vec::new()).unwrap();
        assert_eq!(summary.latency.count, 2);
        assert!(summary.latency.min_ns <= summary.latency.max_ns);
    }

    #[test]
    fn the_cache_stays_warm_across_the_stream() {
        let line =
            format!("{{\"system\": \"{CHAIN}\", \"queries\": [{{\"dmm\": {{\"ks\": [10]}}}}]}}\n");
        let input = line.repeat(3);
        let session = Session::new();
        let mut output = Vec::new();
        serve(&session, input.as_bytes(), &mut output).unwrap();
        assert!(session.cache_stats().hits > 0);
    }
}
