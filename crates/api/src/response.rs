//! The typed response side of the wire schema.
//!
//! [`ChainOutcome`] and [`SystemOutcome`] double as the batch records
//! of `twca-engine`: the engine's `ChainVerdict`/`SystemVerdict` are
//! aliases of these types, and the engine's batch JSON renders each
//! chain through [`ChainOutcome::to_json`] — one serializer for both
//! the streaming and the batch surface.

use crate::error::ApiError;
use crate::json::Json;
use crate::request::SCHEMA_VERSION;
use twca_chains::DmmResult;
use twca_curves::Time;

/// One `dmm(k)` point on the wire: the window length, the miss bound,
/// and whether the bound beats the trivial `k` fallback. The richer
/// diagnostic fields of [`DmmResult`] (budgets, packing internals) are
/// deliberately not part of the schema — ask for a witness instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmmPoint {
    /// The window length `k`.
    pub k: u64,
    /// At most `bound` of any `k` consecutive activations miss.
    pub bound: u64,
    /// Whether the bound is better than the trivial `k` fallback.
    pub informative: bool,
}

impl From<&DmmResult> for DmmPoint {
    fn from(value: &DmmResult) -> Self {
        DmmPoint {
            k: value.k,
            bound: value.bound,
            informative: value.informative,
        }
    }
}

impl From<DmmResult> for DmmPoint {
    fn from(value: DmmResult) -> Self {
        DmmPoint::from(&value)
    }
}

/// The analysis outcome of one chain (uniprocessor) or one site
/// (distributed) under the full batch pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainOutcome {
    /// Chain name (`resource/chain` for distributed sites).
    pub name: String,
    /// Declared end-to-end deadline.
    pub deadline: Option<Time>,
    /// Whether the chain is a rare overload source.
    pub overload: bool,
    /// Worst-case latency with overload included (Theorem 2); `None`
    /// when the busy window diverges.
    pub worst_case_latency: Option<Time>,
    /// Worst-case latency of the typical (overload-free) system.
    pub typical_latency: Option<Time>,
    /// Miss models at the requested window lengths, in request order;
    /// empty for chains without a deadline.
    pub miss_models: Vec<DmmPoint>,
    /// Analysis error, if the miss-model preparation failed.
    pub error: Option<String>,
}

impl ChainOutcome {
    /// Whether the chain provably never misses its deadline.
    pub fn schedulable(&self) -> Option<bool> {
        Some(self.worst_case_latency? <= self.deadline?)
    }

    /// Serializes the outcome as its wire object (also the engine's
    /// per-chain batch JSON).
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("name".into(), Json::str(&self.name)),
            ("overload".into(), Json::Bool(self.overload)),
            ("deadline".into(), Json::opt_u64(self.deadline)),
            ("wcl".into(), Json::opt_u64(self.worst_case_latency)),
            ("typical_wcl".into(), Json::opt_u64(self.typical_latency)),
            (
                "dmm".into(),
                Json::Array(self.miss_models.iter().map(dmm_point_to_json).collect()),
            ),
        ];
        if let Some(error) = &self.error {
            members.push(("error".into(), Json::str(error)));
        }
        Json::Object(members)
    }

    /// Parses the wire object back.
    ///
    /// # Errors
    ///
    /// [`ApiError`] for structural problems.
    pub fn from_json(value: &Json) -> Result<ChainOutcome, ApiError> {
        Ok(ChainOutcome {
            name: str_field(value, "name")?,
            overload: bool_field(value, "overload")?,
            deadline: opt_u64_field(value, "deadline")?,
            worst_case_latency: opt_u64_field(value, "wcl")?,
            typical_latency: opt_u64_field(value, "typical_wcl")?,
            miss_models: value
                .get("dmm")
                .and_then(Json::as_array)
                .ok_or_else(|| ApiError::request("chain outcome needs a `dmm` array"))?
                .iter()
                .map(dmm_point_from_json)
                .collect::<Result<Vec<_>, _>>()?,
            error: opt_str_field(value, "error")?,
        })
    }
}

/// The analysis outcome of one system under the full batch pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemOutcome {
    /// Position of the system in its batch (0 for single-system
    /// requests).
    pub index: usize,
    /// Per-chain outcomes, in chain order.
    pub chains: Vec<ChainOutcome>,
}

impl SystemOutcome {
    /// Looks up a chain outcome by name.
    pub fn chain(&self, name: &str) -> Option<&ChainOutcome> {
        self.chains.iter().find(|c| c.name == name)
    }

    /// Serializes the outcome as its wire object.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("index".into(), Json::UInt(self.index as u64)),
            (
                "chains".into(),
                Json::Array(self.chains.iter().map(ChainOutcome::to_json).collect()),
            ),
        ])
    }

    /// Parses the wire object back.
    ///
    /// # Errors
    ///
    /// [`ApiError`] for structural problems.
    pub fn from_json(value: &Json) -> Result<SystemOutcome, ApiError> {
        Ok(SystemOutcome {
            index: u64_field(value, "index")? as usize,
            chains: value
                .get("chains")
                .and_then(Json::as_array)
                .ok_or_else(|| ApiError::request("system outcome needs a `chains` array"))?
                .iter()
                .map(ChainOutcome::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

/// One latency row of a [`QueryOutcome::Latency`] answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyOutcome {
    /// Chain or site name.
    pub name: String,
    /// Declared deadline.
    pub deadline: Option<Time>,
    /// Whether the chain is an overload source.
    pub overload: bool,
    /// Worst-case latency; `None` when divergent.
    pub worst_case_latency: Option<Time>,
    /// Typical-system latency; `None` when divergent or not computed
    /// (distributed sites).
    pub typical_latency: Option<Time>,
}

/// One miss-model row of a [`QueryOutcome::Dmm`] answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmmOutcome {
    /// Chain or site name.
    pub name: String,
    /// `dmm(k)` points in request order.
    pub points: Vec<DmmPoint>,
    /// Per-chain analysis error, if the sweep failed.
    pub error: Option<String>,
}

/// One verdict row of a [`QueryOutcome::WeaklyHard`] answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MkOutcome {
    /// Chain or site name.
    pub name: String,
    /// Tolerated misses.
    pub m: u64,
    /// Window length.
    pub k: u64,
    /// Whether `dmm(k) ≤ m` is proven.
    pub satisfied: bool,
}

/// The answer to a [`QueryOutcome::Witness`] query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessOutcome {
    /// Chain or site name.
    pub name: String,
    /// Window length.
    pub k: u64,
    /// The witnessed (or computed) miss bound.
    pub bound: u64,
    /// Whether a non-trivial packing witness exists; when `false`,
    /// `text` carries the plain bound.
    pub has_witness: bool,
    /// Human-readable derivation.
    pub text: String,
}

/// The answer to a [`QueryOutcome::Sensitivity`] query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SensitivityOutcome {
    /// Chain or site name.
    pub name: String,
    /// Tolerated misses.
    pub m: u64,
    /// Window length.
    pub k: u64,
    /// Largest admissible overload percentage; `None` when even 0%
    /// violates the constraint.
    pub max_percent: Option<u64>,
}

/// The answer to a [`QueryOutcome::Path`] query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathOutcome {
    /// The hops, as `resource/chain` names.
    pub hops: Vec<String>,
    /// End-to-end latency bound.
    pub latency: Option<Time>,
    /// Composite deadline `Σ D_i`.
    pub composite_deadline: Option<Time>,
    /// End-to-end miss-model points.
    pub points: Vec<DmmPoint>,
}

/// One empirical miss-rate row of a [`QueryOutcome::Simulate`] answer.
///
/// All rates are carried as parts-per-million integers so the wire
/// schema stays `Eq`-comparable and bit-exact across platforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimChainOutcome {
    /// Chain name.
    pub name: String,
    /// Completed instances across all runs.
    pub instances: u64,
    /// Deadline misses across all runs.
    pub misses: u64,
    /// Empirical miss rate in parts per million.
    pub miss_rate_ppm: u64,
    /// Lower end of the 95% Wilson confidence interval, in ppm.
    pub ci_low_ppm: u64,
    /// Upper end of the 95% Wilson confidence interval, in ppm.
    pub ci_high_ppm: u64,
    /// Largest observed latency; `None` when nothing completed.
    pub max_latency: Option<Time>,
}

/// The answer to a [`QueryOutcome::Simulate`] query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulateOutcome {
    /// Number of simulation runs pooled into the report.
    pub runs: u64,
    /// Horizon of each run, in time units.
    pub horizon: u64,
    /// Base RNG seed the report is deterministic in.
    pub seed: u64,
    /// Per-chain empirical rows, one per selected deadline chain.
    pub chains: Vec<SimChainOutcome>,
}

/// The answer to a [`QueryOutcome::Stats`] query: the shared cache's
/// hit/miss counters plus the service counters of the answering
/// process. Outside a service the counters are all zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsOutcome {
    /// Cache hits since the cache was created.
    pub cache_hits: u64,
    /// Cache misses since the cache was created.
    pub cache_misses: u64,
    /// Entries currently resident in the cache (kept alongside
    /// `resident_entries` for wire compatibility).
    pub cache_entries: u64,
    /// Entries evicted by the cache's budget enforcement since the
    /// cache was created (clears do not count).
    pub evictions: u64,
    /// Entries currently resident in the cache.
    pub resident_entries: u64,
    /// Estimated bytes currently resident in the cache.
    pub resident_bytes_est: u64,
    /// Requests answered by the service (ok or error).
    pub served: u64,
    /// Requests rejected at admission (`overloaded`).
    pub rejected: u64,
    /// Requests admitted but not yet answered.
    pub in_flight: u64,
    /// Worker panics caught and answered with typed `internal` errors.
    pub panics: u64,
    /// Put records appended to the store journal.
    pub journal_appends: u64,
    /// Bytes appended to the store journal.
    pub journal_bytes: u64,
    /// Journal fsyncs issued.
    pub journal_syncs: u64,
    /// Store snapshots written (including drain flushes).
    pub snapshots_written: u64,
    /// Journal records replayed when the store was recovered.
    pub recovered_records: u64,
    /// Torn-tail bytes truncated when the store was recovered.
    pub truncated_bytes: u64,
    /// Client connections currently open at the service edge.
    pub open_connections: u64,
    /// Connections reaped at the idle timeout (slow-loris defense).
    pub reaped: u64,
    /// Connections closed after a per-read timeout expired.
    pub timeouts: u64,
    /// Connections that ended in a reset.
    pub resets: u64,
    /// Connections disconnected for overflowing their bounded
    /// outbound response buffer.
    pub slow_consumers: u64,
    /// Largest per-connection response-queue depth observed.
    pub queue_depth_peak: u64,
}

/// The answer to a [`crate::Query::StorePut`]: the version now current
/// under the name and the diff against the previous version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorePutOutcome {
    /// The entry name.
    pub name: String,
    /// The version just stored (1 for a first put).
    pub version: u64,
    /// Resources with any changed chain or moved incident link.
    pub resources_changed: u64,
    /// Chains added, removed, or edited.
    pub chains_changed: u64,
    /// Tasks added, removed, or edited.
    pub tasks_changed: u64,
    /// Whether the put was answered from the store's dedup ledger
    /// instead of being applied again: the request carried a `dedup`
    /// id that had already been acknowledged, so this receipt repeats
    /// the original one (at-most-once apply).
    pub deduped: bool,
}

/// The answer to a [`crate::Query::StoreAnalyze`]: per-chain bounds of
/// the stored system's current version plus the delta-re-analysis
/// accounting (how many per-resource rows were recomputed vs. answered
/// from the entry's warm memo).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreAnalyzeOutcome {
    /// The entry name.
    pub name: String,
    /// The analyzed version.
    pub version: u64,
    /// Per-resource holistic rows recomputed by this analysis
    /// (0 for uniprocessor entries, which memoize at a finer grain in
    /// the session cache).
    pub rows_analyzed: u64,
    /// Per-resource holistic rows answered from the entry's warm memo.
    pub memo_hits: u64,
    /// Latency rows, one per chain/site.
    pub latency: Vec<LatencyOutcome>,
    /// Miss-model rows, one per deadline chain/site.
    pub dmm: Vec<DmmOutcome>,
}

/// One answered query, mirroring [`crate::Query`] case by case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Latency rows, one per selected chain/site.
    Latency(Vec<LatencyOutcome>),
    /// Miss-model rows, one per selected deadline chain/site.
    Dmm(Vec<DmmOutcome>),
    /// A packing witness.
    Witness(WitnessOutcome),
    /// Weakly-hard verdicts, one per selected deadline chain/site.
    WeaklyHard(Vec<MkOutcome>),
    /// An overload sensitivity bound.
    Sensitivity(SensitivityOutcome),
    /// End-to-end path bounds.
    Path(PathOutcome),
    /// The full batch pipeline outcome.
    Full(SystemOutcome),
    /// Cache statistics and service counters.
    Stats(StatsOutcome),
    /// A store-put receipt.
    StorePut(StorePutOutcome),
    /// A delta re-analysis of a stored system.
    StoreAnalyze(StoreAnalyzeOutcome),
    /// Empirical Monte Carlo miss rates.
    Simulate(SimulateOutcome),
}

/// The response to one [`crate::AnalysisRequest`]: either the answered
/// queries (in request order) or the first error.
///
/// # Examples
///
/// ```
/// use twca_api::{AnalysisRequest, Query, Session};
///
/// let session = Session::new();
/// let request = AnalysisRequest::for_system(
///     "chain c periodic=100 deadline=100 { task t prio=1 wcet=10 }",
/// )
/// .with_id("doc")
/// .with_query(Query::Latency { chain: None });
/// let response = session.analyze(&request);
/// assert_eq!(response.id.as_deref(), Some("doc"));
/// assert!(response.outcome.is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisResponse {
    /// The schema version of the answering build.
    pub v: u64,
    /// The request's correlation id, echoed back.
    pub id: Option<String>,
    /// Answers in request order, or the first failure.
    pub outcome: Result<Vec<QueryOutcome>, ApiError>,
}

impl AnalysisResponse {
    /// A successful response.
    pub fn ok(id: Option<String>, outcomes: Vec<QueryOutcome>) -> AnalysisResponse {
        AnalysisResponse {
            v: SCHEMA_VERSION,
            id,
            outcome: Ok(outcomes),
        }
    }

    /// A failed response.
    pub fn error(id: Option<String>, error: ApiError) -> AnalysisResponse {
        AnalysisResponse {
            v: SCHEMA_VERSION,
            id,
            outcome: Err(error),
        }
    }

    /// Serializes the response as its wire object.
    pub fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> = vec![("v".into(), Json::UInt(self.v))];
        if let Some(id) = &self.id {
            members.push(("id".into(), Json::str(id)));
        }
        match &self.outcome {
            Ok(outcomes) => members.push((
                "ok".into(),
                Json::Array(outcomes.iter().map(outcome_to_json).collect()),
            )),
            Err(error) => members.push(("error".into(), error.to_json())),
        }
        Json::Object(members)
    }

    /// Parses the wire object back.
    ///
    /// # Errors
    ///
    /// [`ApiError`] for structural problems.
    pub fn from_json(value: &Json) -> Result<AnalysisResponse, ApiError> {
        let v = u64_field(value, "v")?;
        let id = match value.get("id") {
            None => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err(ApiError::request("`id` must be a string")),
        };
        let outcome = match (value.get("ok"), value.get("error")) {
            (Some(Json::Array(items)), None) => Ok(items
                .iter()
                .map(outcome_from_json)
                .collect::<Result<Vec<_>, _>>()?),
            (None, Some(error)) => Err(ApiError::from_json(error)?),
            _ => {
                return Err(ApiError::request(
                    "a response carries exactly one of `ok` and `error`",
                ))
            }
        };
        Ok(AnalysisResponse { v, id, outcome })
    }
}

fn dmm_point_to_json(point: &DmmPoint) -> Json {
    Json::Object(vec![
        ("k".into(), Json::UInt(point.k)),
        ("bound".into(), Json::UInt(point.bound)),
        ("informative".into(), Json::Bool(point.informative)),
    ])
}

fn dmm_point_from_json(value: &Json) -> Result<DmmPoint, ApiError> {
    Ok(DmmPoint {
        k: u64_field(value, "k")?,
        bound: u64_field(value, "bound")?,
        informative: bool_field(value, "informative")?,
    })
}

fn u64_field(value: &Json, key: &str) -> Result<u64, ApiError> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ApiError::request(format!("missing integer field `{key}`")))
}

fn bool_field(value: &Json, key: &str) -> Result<bool, ApiError> {
    value
        .get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| ApiError::request(format!("missing boolean field `{key}`")))
}

fn str_field(value: &Json, key: &str) -> Result<String, ApiError> {
    value
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| ApiError::request(format!("missing string field `{key}`")))
}

fn opt_u64_field(value: &Json, key: &str) -> Result<Option<u64>, ApiError> {
    match value.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::UInt(v)) => Ok(Some(*v)),
        Some(_) => Err(ApiError::request(format!(
            "field `{key}` must be an integer or null"
        ))),
    }
}

fn opt_str_field(value: &Json, key: &str) -> Result<Option<String>, ApiError> {
    match value.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(ApiError::request(format!(
            "field `{key}` must be a string or null"
        ))),
    }
}

fn latency_row_to_json(row: &LatencyOutcome) -> Json {
    Json::Object(vec![
        ("name".into(), Json::str(&row.name)),
        ("overload".into(), Json::Bool(row.overload)),
        ("deadline".into(), Json::opt_u64(row.deadline)),
        ("wcl".into(), Json::opt_u64(row.worst_case_latency)),
        ("typical_wcl".into(), Json::opt_u64(row.typical_latency)),
    ])
}

fn latency_row_from_json(value: &Json) -> Result<LatencyOutcome, ApiError> {
    Ok(LatencyOutcome {
        name: str_field(value, "name")?,
        overload: bool_field(value, "overload")?,
        deadline: opt_u64_field(value, "deadline")?,
        worst_case_latency: opt_u64_field(value, "wcl")?,
        typical_latency: opt_u64_field(value, "typical_wcl")?,
    })
}

fn dmm_row_to_json(row: &DmmOutcome) -> Json {
    let mut members = vec![
        ("name".into(), Json::str(&row.name)),
        (
            "points".into(),
            Json::Array(row.points.iter().map(dmm_point_to_json).collect()),
        ),
    ];
    if let Some(error) = &row.error {
        members.push(("error".into(), Json::str(error)));
    }
    Json::Object(members)
}

fn dmm_row_from_json(value: &Json) -> Result<DmmOutcome, ApiError> {
    Ok(DmmOutcome {
        name: str_field(value, "name")?,
        points: value
            .get("points")
            .and_then(Json::as_array)
            .ok_or_else(|| ApiError::request("dmm row needs a `points` array"))?
            .iter()
            .map(dmm_point_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        error: opt_str_field(value, "error")?,
    })
}

fn outcome_to_json(outcome: &QueryOutcome) -> Json {
    let (tag, body) = match outcome {
        QueryOutcome::Latency(rows) => (
            "latency",
            Json::Array(rows.iter().map(latency_row_to_json).collect()),
        ),
        QueryOutcome::Dmm(rows) => (
            "dmm",
            Json::Array(rows.iter().map(dmm_row_to_json).collect()),
        ),
        QueryOutcome::Witness(w) => (
            "witness",
            Json::Object(vec![
                ("name".into(), Json::str(&w.name)),
                ("k".into(), Json::UInt(w.k)),
                ("bound".into(), Json::UInt(w.bound)),
                ("has_witness".into(), Json::Bool(w.has_witness)),
                ("text".into(), Json::str(&w.text)),
            ]),
        ),
        QueryOutcome::WeaklyHard(rows) => (
            "weakly_hard",
            Json::Array(
                rows.iter()
                    .map(|row| {
                        Json::Object(vec![
                            ("name".into(), Json::str(&row.name)),
                            ("m".into(), Json::UInt(row.m)),
                            ("k".into(), Json::UInt(row.k)),
                            ("satisfied".into(), Json::Bool(row.satisfied)),
                        ])
                    })
                    .collect(),
            ),
        ),
        QueryOutcome::Sensitivity(s) => (
            "sensitivity",
            Json::Object(vec![
                ("name".into(), Json::str(&s.name)),
                ("m".into(), Json::UInt(s.m)),
                ("k".into(), Json::UInt(s.k)),
                ("max_percent".into(), Json::opt_u64(s.max_percent)),
            ]),
        ),
        QueryOutcome::Path(p) => (
            "path",
            Json::Object(vec![
                (
                    "hops".into(),
                    Json::Array(p.hops.iter().map(Json::str).collect()),
                ),
                ("latency".into(), Json::opt_u64(p.latency)),
                (
                    "composite_deadline".into(),
                    Json::opt_u64(p.composite_deadline),
                ),
                (
                    "points".into(),
                    Json::Array(p.points.iter().map(dmm_point_to_json).collect()),
                ),
            ]),
        ),
        QueryOutcome::Full(system) => ("full", system.to_json()),
        QueryOutcome::Stats(s) => (
            "stats",
            Json::Object(vec![
                ("cache_hits".into(), Json::UInt(s.cache_hits)),
                ("cache_misses".into(), Json::UInt(s.cache_misses)),
                ("cache_entries".into(), Json::UInt(s.cache_entries)),
                ("evictions".into(), Json::UInt(s.evictions)),
                ("resident_entries".into(), Json::UInt(s.resident_entries)),
                (
                    "resident_bytes_est".into(),
                    Json::UInt(s.resident_bytes_est),
                ),
                ("served".into(), Json::UInt(s.served)),
                ("rejected".into(), Json::UInt(s.rejected)),
                ("in_flight".into(), Json::UInt(s.in_flight)),
                ("panics".into(), Json::UInt(s.panics)),
                ("journal_appends".into(), Json::UInt(s.journal_appends)),
                ("journal_bytes".into(), Json::UInt(s.journal_bytes)),
                ("journal_syncs".into(), Json::UInt(s.journal_syncs)),
                ("snapshots_written".into(), Json::UInt(s.snapshots_written)),
                ("recovered_records".into(), Json::UInt(s.recovered_records)),
                ("truncated_bytes".into(), Json::UInt(s.truncated_bytes)),
                ("open_connections".into(), Json::UInt(s.open_connections)),
                ("reaped".into(), Json::UInt(s.reaped)),
                ("timeouts".into(), Json::UInt(s.timeouts)),
                ("resets".into(), Json::UInt(s.resets)),
                ("slow_consumers".into(), Json::UInt(s.slow_consumers)),
                ("queue_depth_peak".into(), Json::UInt(s.queue_depth_peak)),
            ]),
        ),
        QueryOutcome::StorePut(p) => (
            "store_put",
            Json::Object(vec![
                ("name".into(), Json::str(&p.name)),
                ("version".into(), Json::UInt(p.version)),
                ("resources_changed".into(), Json::UInt(p.resources_changed)),
                ("chains_changed".into(), Json::UInt(p.chains_changed)),
                ("tasks_changed".into(), Json::UInt(p.tasks_changed)),
                ("deduped".into(), Json::Bool(p.deduped)),
            ]),
        ),
        QueryOutcome::StoreAnalyze(a) => (
            "store_analyze",
            Json::Object(vec![
                ("name".into(), Json::str(&a.name)),
                ("version".into(), Json::UInt(a.version)),
                ("rows_analyzed".into(), Json::UInt(a.rows_analyzed)),
                ("memo_hits".into(), Json::UInt(a.memo_hits)),
                (
                    "latency".into(),
                    Json::Array(a.latency.iter().map(latency_row_to_json).collect()),
                ),
                (
                    "dmm".into(),
                    Json::Array(a.dmm.iter().map(dmm_row_to_json).collect()),
                ),
            ]),
        ),
        QueryOutcome::Simulate(s) => (
            "simulate",
            Json::Object(vec![
                ("runs".into(), Json::UInt(s.runs)),
                ("horizon".into(), Json::UInt(s.horizon)),
                ("seed".into(), Json::UInt(s.seed)),
                (
                    "chains".into(),
                    Json::Array(s.chains.iter().map(sim_row_to_json).collect()),
                ),
            ]),
        ),
    };
    Json::Object(vec![(tag.into(), body)])
}

fn sim_row_to_json(row: &SimChainOutcome) -> Json {
    Json::Object(vec![
        ("name".into(), Json::str(&row.name)),
        ("instances".into(), Json::UInt(row.instances)),
        ("misses".into(), Json::UInt(row.misses)),
        ("miss_rate_ppm".into(), Json::UInt(row.miss_rate_ppm)),
        ("ci_low_ppm".into(), Json::UInt(row.ci_low_ppm)),
        ("ci_high_ppm".into(), Json::UInt(row.ci_high_ppm)),
        ("max_latency".into(), Json::opt_u64(row.max_latency)),
    ])
}

fn sim_row_from_json(value: &Json) -> Result<SimChainOutcome, ApiError> {
    Ok(SimChainOutcome {
        name: str_field(value, "name")?,
        instances: u64_field(value, "instances")?,
        misses: u64_field(value, "misses")?,
        miss_rate_ppm: u64_field(value, "miss_rate_ppm")?,
        ci_low_ppm: u64_field(value, "ci_low_ppm")?,
        ci_high_ppm: u64_field(value, "ci_high_ppm")?,
        max_latency: opt_u64_field(value, "max_latency")?,
    })
}

fn outcome_from_json(value: &Json) -> Result<QueryOutcome, ApiError> {
    let obj = value
        .as_object()
        .ok_or_else(|| ApiError::request("each outcome must be an object"))?;
    if obj.len() != 1 {
        return Err(ApiError::request(
            "each outcome must be a single `{\"kind\": ...}` object",
        ));
    }
    let (tag, body) = &obj[0];
    Ok(match tag.as_str() {
        "latency" => QueryOutcome::Latency(
            body.as_array()
                .ok_or_else(|| ApiError::request("`latency` must be an array"))?
                .iter()
                .map(latency_row_from_json)
                .collect::<Result<Vec<_>, _>>()?,
        ),
        "dmm" => QueryOutcome::Dmm(
            body.as_array()
                .ok_or_else(|| ApiError::request("`dmm` must be an array"))?
                .iter()
                .map(dmm_row_from_json)
                .collect::<Result<Vec<_>, _>>()?,
        ),
        "witness" => QueryOutcome::Witness(WitnessOutcome {
            name: str_field(body, "name")?,
            k: u64_field(body, "k")?,
            bound: u64_field(body, "bound")?,
            has_witness: bool_field(body, "has_witness")?,
            text: str_field(body, "text")?,
        }),
        "weakly_hard" => QueryOutcome::WeaklyHard(
            body.as_array()
                .ok_or_else(|| ApiError::request("`weakly_hard` must be an array"))?
                .iter()
                .map(|row| {
                    Ok(MkOutcome {
                        name: str_field(row, "name")?,
                        m: u64_field(row, "m")?,
                        k: u64_field(row, "k")?,
                        satisfied: bool_field(row, "satisfied")?,
                    })
                })
                .collect::<Result<Vec<_>, ApiError>>()?,
        ),
        "sensitivity" => QueryOutcome::Sensitivity(SensitivityOutcome {
            name: str_field(body, "name")?,
            m: u64_field(body, "m")?,
            k: u64_field(body, "k")?,
            max_percent: opt_u64_field(body, "max_percent")?,
        }),
        "path" => QueryOutcome::Path(PathOutcome {
            hops: body
                .get("hops")
                .and_then(Json::as_array)
                .ok_or_else(|| ApiError::request("`path` needs a `hops` array"))?
                .iter()
                .map(|h| {
                    h.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| ApiError::request("each hop must be a string"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            latency: opt_u64_field(body, "latency")?,
            composite_deadline: opt_u64_field(body, "composite_deadline")?,
            points: body
                .get("points")
                .and_then(Json::as_array)
                .ok_or_else(|| ApiError::request("`path` needs a `points` array"))?
                .iter()
                .map(dmm_point_from_json)
                .collect::<Result<Vec<_>, _>>()?,
        }),
        "full" => QueryOutcome::Full(SystemOutcome::from_json(body)?),
        "stats" => QueryOutcome::Stats(StatsOutcome {
            cache_hits: u64_field(body, "cache_hits")?,
            cache_misses: u64_field(body, "cache_misses")?,
            cache_entries: u64_field(body, "cache_entries")?,
            evictions: u64_field(body, "evictions")?,
            resident_entries: u64_field(body, "resident_entries")?,
            resident_bytes_est: u64_field(body, "resident_bytes_est")?,
            served: u64_field(body, "served")?,
            rejected: u64_field(body, "rejected")?,
            in_flight: u64_field(body, "in_flight")?,
            panics: u64_field(body, "panics")?,
            journal_appends: u64_field(body, "journal_appends")?,
            journal_bytes: u64_field(body, "journal_bytes")?,
            journal_syncs: u64_field(body, "journal_syncs")?,
            snapshots_written: u64_field(body, "snapshots_written")?,
            recovered_records: u64_field(body, "recovered_records")?,
            truncated_bytes: u64_field(body, "truncated_bytes")?,
            // Edge counters arrived after v1 first shipped; tolerate
            // their absence so older recorded responses still parse.
            open_connections: opt_u64_field(body, "open_connections")?.unwrap_or(0),
            reaped: opt_u64_field(body, "reaped")?.unwrap_or(0),
            timeouts: opt_u64_field(body, "timeouts")?.unwrap_or(0),
            resets: opt_u64_field(body, "resets")?.unwrap_or(0),
            slow_consumers: opt_u64_field(body, "slow_consumers")?.unwrap_or(0),
            queue_depth_peak: opt_u64_field(body, "queue_depth_peak")?.unwrap_or(0),
        }),
        "store_put" => QueryOutcome::StorePut(StorePutOutcome {
            name: str_field(body, "name")?,
            version: u64_field(body, "version")?,
            resources_changed: u64_field(body, "resources_changed")?,
            chains_changed: u64_field(body, "chains_changed")?,
            tasks_changed: u64_field(body, "tasks_changed")?,
            deduped: body.get("deduped").and_then(Json::as_bool).unwrap_or(false),
        }),
        "store_analyze" => QueryOutcome::StoreAnalyze(StoreAnalyzeOutcome {
            name: str_field(body, "name")?,
            version: u64_field(body, "version")?,
            rows_analyzed: u64_field(body, "rows_analyzed")?,
            memo_hits: u64_field(body, "memo_hits")?,
            latency: body
                .get("latency")
                .and_then(Json::as_array)
                .ok_or_else(|| ApiError::request("`store_analyze` needs a `latency` array"))?
                .iter()
                .map(latency_row_from_json)
                .collect::<Result<Vec<_>, _>>()?,
            dmm: body
                .get("dmm")
                .and_then(Json::as_array)
                .ok_or_else(|| ApiError::request("`store_analyze` needs a `dmm` array"))?
                .iter()
                .map(dmm_row_from_json)
                .collect::<Result<Vec<_>, _>>()?,
        }),
        "simulate" => QueryOutcome::Simulate(SimulateOutcome {
            runs: u64_field(body, "runs")?,
            horizon: u64_field(body, "horizon")?,
            seed: u64_field(body, "seed")?,
            chains: body
                .get("chains")
                .and_then(Json::as_array)
                .ok_or_else(|| ApiError::request("`simulate` needs a `chains` array"))?
                .iter()
                .map(sim_row_from_json)
                .collect::<Result<Vec<_>, _>>()?,
        }),
        other => {
            return Err(ApiError::request(format!("unknown outcome kind `{other}`")));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ApiErrorKind;

    fn sample_chain_outcome() -> ChainOutcome {
        ChainOutcome {
            name: "sigma_c".into(),
            deadline: Some(200),
            overload: false,
            worst_case_latency: Some(331),
            typical_latency: Some(166),
            miss_models: vec![
                DmmPoint {
                    k: 10,
                    bound: 5,
                    informative: true,
                },
                DmmPoint {
                    k: 1,
                    bound: 1,
                    informative: false,
                },
            ],
            error: None,
        }
    }

    #[test]
    fn chain_outcome_matches_the_engine_wire_format() {
        let json = sample_chain_outcome().to_json().to_string();
        assert_eq!(
            json,
            "{\"name\": \"sigma_c\", \"overload\": false, \"deadline\": 200, \
             \"wcl\": 331, \"typical_wcl\": 166, \"dmm\": [{\"k\": 10, \"bound\": 5, \
             \"informative\": true}, {\"k\": 1, \"bound\": 1, \"informative\": false}]}"
        );
    }

    #[test]
    fn chain_outcome_round_trips() {
        let mut outcome = sample_chain_outcome();
        outcome.error = Some("boom".into());
        outcome.worst_case_latency = None;
        let reparsed = ChainOutcome::from_json(&outcome.to_json()).unwrap();
        assert_eq!(outcome, reparsed);
    }

    #[test]
    fn responses_round_trip_both_arms() {
        let ok = AnalysisResponse::ok(
            Some("r1".into()),
            vec![
                QueryOutcome::Latency(vec![LatencyOutcome {
                    name: "c".into(),
                    deadline: Some(100),
                    overload: false,
                    worst_case_latency: Some(35),
                    typical_latency: None,
                }]),
                QueryOutcome::Full(SystemOutcome {
                    index: 0,
                    chains: vec![sample_chain_outcome()],
                }),
                QueryOutcome::Sensitivity(SensitivityOutcome {
                    name: "c".into(),
                    m: 1,
                    k: 10,
                    max_percent: None,
                }),
                QueryOutcome::Stats(StatsOutcome {
                    cache_hits: 12,
                    cache_misses: 3,
                    cache_entries: 3,
                    evictions: 7,
                    resident_entries: 3,
                    resident_bytes_est: 4096,
                    served: 15,
                    rejected: 1,
                    in_flight: 2,
                    panics: 1,
                    journal_appends: 9,
                    journal_bytes: 1234,
                    journal_syncs: 9,
                    snapshots_written: 1,
                    recovered_records: 4,
                    truncated_bytes: 17,
                    open_connections: 3,
                    reaped: 2,
                    timeouts: 1,
                    resets: 5,
                    slow_consumers: 1,
                    queue_depth_peak: 42,
                }),
                QueryOutcome::StorePut(StorePutOutcome {
                    name: "plant".into(),
                    version: 4,
                    resources_changed: 1,
                    chains_changed: 2,
                    tasks_changed: 3,
                    deduped: true,
                }),
                QueryOutcome::StoreAnalyze(StoreAnalyzeOutcome {
                    name: "plant".into(),
                    version: 4,
                    rows_analyzed: 2,
                    memo_hits: 98,
                    latency: vec![LatencyOutcome {
                        name: "r0/c".into(),
                        deadline: Some(100),
                        overload: false,
                        worst_case_latency: Some(35),
                        typical_latency: None,
                    }],
                    dmm: vec![DmmOutcome {
                        name: "r0/c".into(),
                        points: vec![DmmPoint {
                            k: 10,
                            bound: 2,
                            informative: true,
                        }],
                        error: None,
                    }],
                }),
                QueryOutcome::Simulate(SimulateOutcome {
                    runs: 100,
                    horizon: 50_000,
                    seed: 42,
                    chains: vec![SimChainOutcome {
                        name: "c".into(),
                        instances: 5000,
                        misses: 125,
                        miss_rate_ppm: 25_000,
                        ci_low_ppm: 21_000,
                        ci_high_ppm: 29_600,
                        max_latency: Some(180),
                    }],
                }),
            ],
        );
        let reparsed =
            AnalysisResponse::from_json(&Json::parse(&ok.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(ok, reparsed);

        let err = AnalysisResponse::error(
            None,
            ApiError::new(ApiErrorKind::Parse, "line 3: expected `{`"),
        );
        let reparsed =
            AnalysisResponse::from_json(&Json::parse(&err.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(err, reparsed);
    }

    #[test]
    fn malformed_outcomes_are_rejected() {
        for bad in [
            r#"{"v": 1}"#,
            r#"{"v": 1, "ok": [], "error": {"kind": "io", "message": "x"}}"#,
            r#"{"v": 1, "ok": [{"bogus": []}]}"#,
        ] {
            let value = Json::parse(bad).unwrap();
            assert!(AnalysisResponse::from_json(&value).is_err(), "{bad}");
        }
    }
}
