//! The [`Analyze`] trait and its two backends: uniprocessor chain
//! systems and distributed linked-resource systems.

use std::cell::OnceCell;

use crate::error::ApiError;
use crate::request::{Query, SiteSpec};
use crate::response::{
    DmmOutcome, DmmPoint, LatencyOutcome, MkOutcome, PathOutcome, QueryOutcome, SensitivityOutcome,
    SimChainOutcome, SimulateOutcome, WitnessOutcome,
};
use crate::session::{RequestControl, Session};
use twca_chains::{
    latency_analysis, max_overload_scaling, AnalysisContext, AnalysisOptions, DmmSweep,
    MkConstraint, OverloadMode,
};
use twca_dist::{
    analyze as dist_analyze, max_path_overload_scaling, DistError, DistOptions, DistPath,
    DistResults, DistributedSystem, SiteId,
};
use twca_model::{ChainId, System};

/// Everything a backend needs to answer one query: the session (for
/// the shared cache), the effective options, and the request's work
/// accounting.
pub struct QueryEnv<'a> {
    /// The owning session.
    pub session: &'a Session,
    /// Effective per-chain analysis options.
    pub options: AnalysisOptions,
    /// Holistic sweep limit (distributed targets).
    pub max_sweeps: usize,
    /// Simulation core for `simulate` queries.
    pub sim_engine: twca_sim::SimEngineMode,
    /// Budget and cancellation accounting.
    pub control: &'a RequestControl,
}

impl QueryEnv<'_> {
    pub(crate) fn dist_options(&self) -> DistOptions {
        DistOptions {
            chain_options: self.options,
            max_sweeps: self.max_sweeps,
        }
    }
}

/// One analysis backend: anything that can answer the typed queries of
/// the schema. Implemented by [`ChainBackend`] (the paper's
/// uniprocessor analysis) and [`DistBackend`] (the holistic
/// distributed extension) — the two entry points the façade unifies.
pub trait Analyze {
    /// A short backend tag for diagnostics.
    fn describe(&self) -> &'static str;

    /// Answers one query.
    ///
    /// # Errors
    ///
    /// [`ApiError`] for unknown selectors, unsupported query kinds,
    /// analysis failures, exhausted budgets and cancellation.
    fn query(&self, query: &Query, env: &QueryEnv<'_>) -> Result<QueryOutcome, ApiError>;
}

/// Flat per-query work charges beyond the per-chain/per-point units;
/// see [`RequestControl`].
const WITNESS_COST: u64 = 4;
/// Sensitivity runs a binary search of full re-analyses.
const SENSITIVITY_COST: u64 = 16;

/// A wire point for a *composed* bound (end-to-end paths), where no
/// single `DmmResult` exists: informativeness degrades to "beats the
/// trivial `k` fallback".
fn composed_point(bound: u64, k: u64) -> DmmPoint {
    DmmPoint {
        k,
        bound,
        informative: bound < k,
    }
}

/// Renders one witness answer; shared by both backends so the wire
/// formatting cannot drift between chain and distributed targets.
fn witness_outcome(sweep: &DmmSweep<'_>, system: &System, name: String, k: u64) -> WitnessOutcome {
    match sweep.witness(k) {
        Some(witness) => WitnessOutcome {
            name,
            k,
            bound: witness.bound,
            has_witness: true,
            text: witness.render(system),
        },
        None => {
            let dmm = sweep.at(k);
            WitnessOutcome {
                name,
                k,
                bound: dmm.bound,
                has_witness: false,
                text: format!(
                    "dmm({}) = {}{}",
                    dmm.k,
                    dmm.bound,
                    if dmm.informative { "" } else { " (trivial)" }
                ),
            }
        }
    }
}

/// The uniprocessor backend: one [`System`], analyzed through
/// [`twca_chains`] with the session's shared cache. The analysis
/// context (segment views, fingerprint) is built once per request and
/// reused by every query.
pub struct ChainBackend<'a> {
    system: &'a System,
    ctx: OnceCell<AnalysisContext<'a>>,
}

impl<'a> ChainBackend<'a> {
    /// Wraps a parsed system.
    pub fn new(system: &'a System) -> ChainBackend<'a> {
        ChainBackend {
            system,
            ctx: OnceCell::new(),
        }
    }

    /// The wrapped system.
    pub fn system(&self) -> &System {
        self.system
    }

    fn ctx(&self, env: &QueryEnv<'_>) -> &AnalysisContext<'a> {
        self.ctx
            .get_or_init(|| AnalysisContext::with_cache(self.system, env.session.cache()))
    }

    fn selected(&self, selector: &Option<String>) -> Result<Vec<ChainId>, ApiError> {
        match selector {
            Some(name) => self
                .system
                .chain_by_name(name)
                .map(|(id, _)| vec![id])
                .ok_or_else(|| ApiError::no_such_chain(name)),
            None => Ok(self.system.iter().map(|(id, _)| id).collect()),
        }
    }

    fn named_chain(&self, name: &str) -> Result<ChainId, ApiError> {
        self.system
            .chain_by_name(name)
            .map(|(id, _)| id)
            .ok_or_else(|| ApiError::no_such_chain(name))
    }
}

impl Analyze for ChainBackend<'_> {
    fn describe(&self) -> &'static str {
        "chains"
    }

    fn query(&self, query: &Query, env: &QueryEnv<'_>) -> Result<QueryOutcome, ApiError> {
        let ctx = self.ctx(env);
        match query {
            Query::Latency { chain } => {
                let mut rows = Vec::new();
                for id in self.selected(chain)? {
                    env.control.charge(1)?;
                    let full = latency_analysis(ctx, id, OverloadMode::Include, env.options);
                    let typical = latency_analysis(ctx, id, OverloadMode::Exclude, env.options);
                    let chain = self.system.chain(id);
                    rows.push(LatencyOutcome {
                        name: chain.name().to_owned(),
                        deadline: chain.deadline(),
                        overload: chain.is_overload(),
                        worst_case_latency: full.map(|r| r.worst_case_latency),
                        typical_latency: typical.map(|r| r.worst_case_latency),
                    });
                }
                Ok(QueryOutcome::Latency(rows))
            }
            Query::Dmm { chain, ks } => {
                let explicit = chain.is_some();
                let mut rows = Vec::new();
                for id in self.selected(chain)? {
                    let target = self.system.chain(id);
                    if target.deadline().is_none() && !explicit {
                        continue;
                    }
                    // At least one unit even for an empty `ks` list:
                    // the sweep preparation itself (combination
                    // enumeration) is the expensive part.
                    env.control.charge(ks.len().max(1) as u64)?;
                    let (points, error) = match DmmSweep::prepare(ctx, id, env.options) {
                        Ok(sweep) => (
                            sweep
                                .curve(ks.iter().copied())
                                .into_iter()
                                .map(DmmPoint::from)
                                .collect(),
                            None,
                        ),
                        Err(e) => (Vec::new(), Some(e.to_string())),
                    };
                    rows.push(DmmOutcome {
                        name: target.name().to_owned(),
                        points,
                        error,
                    });
                }
                Ok(QueryOutcome::Dmm(rows))
            }
            Query::Witness { chain, k } => {
                env.control.charge(WITNESS_COST)?;
                let id = self.named_chain(chain)?;
                let sweep = DmmSweep::prepare(ctx, id, env.options)?;
                Ok(QueryOutcome::Witness(witness_outcome(
                    &sweep,
                    self.system,
                    chain.clone(),
                    *k,
                )))
            }
            Query::WeaklyHard { chain, m, k } => {
                let explicit = chain.is_some();
                let constraint = MkConstraint::new(*m, *k);
                let mut rows = Vec::new();
                for id in self.selected(chain)? {
                    let target = self.system.chain(id);
                    if target.deadline().is_none() && !explicit {
                        continue;
                    }
                    env.control.charge(1)?;
                    let satisfied = constraint.verify(ctx, id, env.options)?;
                    rows.push(MkOutcome {
                        name: target.name().to_owned(),
                        m: *m,
                        k: *k,
                        satisfied,
                    });
                }
                Ok(QueryOutcome::WeaklyHard(rows))
            }
            Query::Sensitivity {
                chain,
                m,
                k,
                max_percent,
            } => {
                env.control.charge(SENSITIVITY_COST)?;
                self.named_chain(chain)?;
                let max_percent_found = max_overload_scaling(
                    self.system,
                    chain,
                    MkConstraint::new(*m, *k),
                    *max_percent,
                    env.options,
                )?;
                Ok(QueryOutcome::Sensitivity(SensitivityOutcome {
                    name: chain.clone(),
                    m: *m,
                    k: *k,
                    max_percent: max_percent_found,
                }))
            }
            Query::Path { .. } => Err(ApiError::request(
                "`path` queries need a distributed target",
            )),
            Query::Full { ks } => {
                env.control
                    .charge(self.system.chains().len() as u64 * (2 + ks.len() as u64))?;
                Ok(QueryOutcome::Full(env.session.system_outcome_with(
                    0,
                    self.system,
                    ks,
                    env.options,
                )))
            }
            Query::Stats => Ok(QueryOutcome::Stats(env.session.stats_outcome())),
            // The session intercepts store queries before backend
            // dispatch; reaching a backend directly is a misuse.
            Query::StorePut { .. } | Query::StoreAnalyze { .. } => Err(ApiError::request(
                "store queries are answered by the session, not a backend",
            )),
            Query::Simulate {
                chain,
                runs,
                horizon,
                seed,
                threads,
            } => {
                // One unit per run: each run simulates the whole system
                // over the full horizon.
                env.control.charge((*runs).max(1))?;
                if let Some(name) = chain {
                    self.named_chain(name)?;
                }
                let config = twca_sim::MonteCarloConfig {
                    runs: *runs,
                    horizon: *horizon,
                    seed: *seed,
                    threads: (*threads).min(64) as usize,
                    // The wire report carries pooled totals, not the
                    // per-k window profile.
                    ks: Vec::new(),
                    engine: env.sim_engine,
                    policy: twca_sim::ExecutionPolicy::WorstCase,
                };
                let report = twca_sim::MonteCarlo::new(self.system, config).run();
                let rows = report
                    .chains()
                    .iter()
                    .filter(|profile| match chain {
                        Some(name) => profile.name() == name,
                        None => profile.deadline().is_some(),
                    })
                    .map(|profile| {
                        let (ci_low_ppm, ci_high_ppm) = profile.confidence_ppm();
                        SimChainOutcome {
                            name: profile.name().to_owned(),
                            instances: profile.instances(),
                            misses: profile.misses(),
                            miss_rate_ppm: profile.miss_rate_ppm(),
                            ci_low_ppm,
                            ci_high_ppm,
                            max_latency: profile.max_latency(),
                        }
                    })
                    .collect();
                Ok(QueryOutcome::Simulate(SimulateOutcome {
                    runs: *runs,
                    horizon: *horizon,
                    seed: *seed,
                    chains: rows,
                }))
            }
        }
    }
}

/// The distributed backend: a [`DistributedSystem`] analyzed through
/// `twca-dist`'s holistic iteration, run once per request and reused by
/// every query.
pub struct DistBackend {
    system: DistributedSystem,
    results: OnceCell<Result<DistResults, DistError>>,
}

impl DistBackend {
    /// Wraps a validated distributed system.
    pub fn new(system: DistributedSystem) -> DistBackend {
        DistBackend {
            system,
            results: OnceCell::new(),
        }
    }

    /// The wrapped system.
    pub fn system(&self) -> &DistributedSystem {
        &self.system
    }

    fn results(&self, env: &QueryEnv<'_>) -> Result<&DistResults, ApiError> {
        self.results
            .get_or_init(|| dist_analyze(&self.system, env.dist_options()))
            .as_ref()
            .map_err(|e| e.clone().into())
    }

    fn site_name(&self, site: SiteId) -> String {
        let (resource, chain) = self.system.site_names(site);
        format!("{resource}/{chain}")
    }

    fn resolve(&self, spec: &SiteSpec) -> Result<SiteId, ApiError> {
        if self.system.resource_by_name(&spec.resource).is_none() {
            return Err(ApiError::no_such_resource(&spec.resource));
        }
        self.system
            .site(&spec.resource, &spec.chain)
            .ok_or_else(|| ApiError::no_such_chain(&spec.to_wire()))
    }

    fn selected(&self, selector: &Option<String>) -> Result<Vec<SiteId>, ApiError> {
        match selector {
            Some(name) => Ok(vec![self.resolve(&SiteSpec::parse(name)?)?]),
            None => Ok(self.system.sites().collect()),
        }
    }

    fn site_chain(&self, site: SiteId) -> &twca_model::Chain {
        self.system
            .resource(site.resource())
            .system()
            .chain(site.chain())
    }
}

impl Analyze for DistBackend {
    fn describe(&self) -> &'static str {
        "distributed"
    }

    fn query(&self, query: &Query, env: &QueryEnv<'_>) -> Result<QueryOutcome, ApiError> {
        match query {
            Query::Latency { chain } => {
                let sites = self.selected(chain)?;
                env.control.charge(sites.len() as u64)?;
                let results = self.results(env)?;
                let rows = sites
                    .into_iter()
                    .map(|site| {
                        let declared = self.site_chain(site);
                        LatencyOutcome {
                            name: self.site_name(site),
                            deadline: declared.deadline(),
                            overload: declared.is_overload(),
                            worst_case_latency: results.worst_case_latency(site),
                            // The typical-system abstraction is a local
                            // (per-resource) notion; it is not computed
                            // holistically.
                            typical_latency: None,
                        }
                    })
                    .collect();
                Ok(QueryOutcome::Latency(rows))
            }
            Query::Dmm { chain, ks } => {
                let explicit = chain.is_some();
                // Charge before the holistic iteration runs so a
                // budget or raised cancel token preempts the expensive
                // fixed point, not just the readout.
                let sites: Vec<SiteId> = self
                    .selected(chain)?
                    .into_iter()
                    .filter(|&site| self.site_chain(site).deadline().is_some() || explicit)
                    .collect();
                env.control
                    .charge(sites.len() as u64 * ks.len().max(1) as u64)?;
                let results = self.results(env)?;
                let mut rows = Vec::new();
                for site in sites {
                    let mut points = Vec::with_capacity(ks.len());
                    let mut error = None;
                    for &k in ks {
                        match results.deadline_miss_model_full(site, k) {
                            Ok(dmm) => points.push(DmmPoint::from(&dmm)),
                            Err(e) => {
                                error = Some(e.to_string());
                                points.clear();
                                break;
                            }
                        }
                    }
                    rows.push(DmmOutcome {
                        name: self.site_name(site),
                        points,
                        error,
                    });
                }
                Ok(QueryOutcome::Dmm(rows))
            }
            Query::Witness { chain, k } => {
                env.control.charge(WITNESS_COST)?;
                let site = self.resolve(&SiteSpec::parse(chain)?)?;
                let results = self.results(env)?;
                // Witnesses are local derivations; explain the site on
                // its effective (post-propagation) system.
                let effective = results.effective_system(site.resource());
                let ctx = AnalysisContext::with_cache(effective, env.session.cache());
                let sweep = DmmSweep::prepare(&ctx, site.chain(), env.options)?;
                Ok(QueryOutcome::Witness(witness_outcome(
                    &sweep,
                    effective,
                    self.site_name(site),
                    *k,
                )))
            }
            Query::WeaklyHard { chain, m, k } => {
                let explicit = chain.is_some();
                // As in the Dmm arm: charge before the fixed point.
                let sites: Vec<SiteId> = self
                    .selected(chain)?
                    .into_iter()
                    .filter(|&site| self.site_chain(site).deadline().is_some() || explicit)
                    .collect();
                env.control.charge(sites.len() as u64)?;
                let results = self.results(env)?;
                let mut rows = Vec::new();
                for site in sites {
                    let bound = results.deadline_miss_model(site, *k)?;
                    rows.push(MkOutcome {
                        name: self.site_name(site),
                        m: *m,
                        k: *k,
                        satisfied: bound <= *m,
                    });
                }
                Ok(QueryOutcome::WeaklyHard(rows))
            }
            Query::Sensitivity {
                chain,
                m,
                k,
                max_percent,
            } => {
                env.control.charge(SENSITIVITY_COST)?;
                let site = self.resolve(&SiteSpec::parse(chain)?)?;
                let max_percent_found = max_path_overload_scaling(
                    &self.system,
                    &[site],
                    *m,
                    *k,
                    *max_percent,
                    env.dist_options(),
                )?;
                Ok(QueryOutcome::Sensitivity(SensitivityOutcome {
                    name: self.site_name(site),
                    m: *m,
                    k: *k,
                    max_percent: max_percent_found,
                }))
            }
            Query::Path { hops, ks } => {
                env.control.charge(1 + ks.len() as u64)?;
                let sites = hops
                    .iter()
                    .map(|spec| self.resolve(spec))
                    .collect::<Result<Vec<_>, _>>()?;
                let path = DistPath::new(&self.system, sites)?;
                let results = self.results(env)?;
                let latency = match path.latency(results) {
                    Ok(total) => Some(total),
                    Err(DistError::UnboundedLatency { .. }) => None,
                    Err(e) => return Err(e.into()),
                };
                let mut points = Vec::with_capacity(ks.len());
                for &k in ks {
                    points.push(composed_point(path.deadline_miss_model(results, k)?, k));
                }
                Ok(QueryOutcome::Path(PathOutcome {
                    hops: path.hops().iter().map(|&h| self.site_name(h)).collect(),
                    latency,
                    composite_deadline: path.composite_deadline(&self.system),
                    points,
                }))
            }
            Query::Full { .. } => Err(ApiError::request(
                "`full` queries need a chain target; query sites individually instead",
            )),
            Query::Stats => Ok(QueryOutcome::Stats(env.session.stats_outcome())),
            Query::StorePut { .. } | Query::StoreAnalyze { .. } => Err(ApiError::request(
                "store queries are answered by the session, not a backend",
            )),
            Query::Simulate { .. } => Err(ApiError::request(
                "`simulate` queries need a chain target; simulate resources individually instead",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{AnalysisRequest, Target};
    use crate::ApiErrorKind;
    use twca_model::case_study;

    const DOWNSTREAM: &str = "chain act periodic=200 deadline=200 sync { task a1 prio=1 wcet=20 }";

    fn case_study_text() -> String {
        // Re-render the paper's case study through the DSL so requests
        // can embed it.
        twca_model::render_system(&case_study())
    }

    fn dist_request() -> AnalysisRequest {
        AnalysisRequest {
            id: None,
            target: Target::Distributed {
                resources: vec![
                    ("ecu0".into(), case_study_text()),
                    ("ecu1".into(), DOWNSTREAM.into()),
                ],
                links: vec![crate::LinkSpec {
                    from: SiteSpec::parse("ecu0/sigma_c").unwrap(),
                    to: SiteSpec::parse("ecu1/act").unwrap(),
                }],
            },
            queries: Vec::new(),
            options: Default::default(),
        }
    }

    #[test]
    fn the_dsl_case_study_matches_the_builder_one() {
        let parsed = twca_model::parse_system(&case_study_text()).unwrap();
        let reference = case_study();
        let ctx = AnalysisContext::new(&parsed);
        let (c, _) = parsed.chain_by_name("sigma_c").unwrap();
        let wcl = latency_analysis(&ctx, c, OverloadMode::Include, Default::default())
            .unwrap()
            .worst_case_latency;
        assert_eq!(wcl, 331, "Table I");
        assert_eq!(parsed.chains().len(), reference.chains().len());
    }

    #[test]
    fn chain_backend_answers_table_1_and_2() {
        let session = Session::new();
        let request = AnalysisRequest::for_system(case_study_text())
            .with_query(Query::Latency {
                chain: Some("sigma_c".into()),
            })
            .with_query(Query::Dmm {
                chain: Some("sigma_c".into()),
                ks: vec![3, 10],
            })
            .with_query(Query::Witness {
                chain: "sigma_c".into(),
                k: 10,
            })
            .with_query(Query::WeaklyHard {
                chain: None,
                m: 5,
                k: 10,
            });
        let outcomes = session.analyze(&request).outcome.unwrap();
        let QueryOutcome::Latency(rows) = &outcomes[0] else {
            panic!("expected latency outcome");
        };
        assert_eq!(rows[0].worst_case_latency, Some(331));
        assert_eq!(rows[0].typical_latency, Some(166));
        let QueryOutcome::Dmm(rows) = &outcomes[1] else {
            panic!("expected dmm outcome");
        };
        assert_eq!(
            rows[0].points.iter().map(|p| p.bound).collect::<Vec<_>>(),
            vec![3, 5]
        );
        let QueryOutcome::Witness(witness) = &outcomes[2] else {
            panic!("expected witness outcome");
        };
        assert!(witness.has_witness);
        assert_eq!(witness.bound, 5);
        let QueryOutcome::WeaklyHard(rows) = &outcomes[3] else {
            panic!("expected weakly-hard outcome");
        };
        // sigma_c: dmm(10) = 5 ≤ 5; sigma_d never misses.
        assert!(rows.iter().all(|r| r.satisfied));
    }

    #[test]
    fn dist_backend_propagates_and_composes() {
        let session = Session::new();
        let request = dist_request()
            .with_query(Query::Latency {
                chain: Some("ecu0/sigma_c".into()),
            })
            .with_query(Query::Path {
                hops: vec![
                    SiteSpec::parse("ecu0/sigma_c").unwrap(),
                    SiteSpec::parse("ecu1/act").unwrap(),
                ],
                ks: vec![1, 10],
            });
        let outcomes = session.analyze(&request).outcome.unwrap();
        let QueryOutcome::Latency(rows) = &outcomes[0] else {
            panic!("expected latency outcome");
        };
        assert_eq!(rows[0].worst_case_latency, Some(331));
        let QueryOutcome::Path(path) = &outcomes[1] else {
            panic!("expected path outcome");
        };
        assert_eq!(path.hops, vec!["ecu0/sigma_c", "ecu1/act"]);
        assert_eq!(path.composite_deadline, Some(400));
        assert!(path.latency.unwrap() >= 331);
        assert!(path.points.iter().all(|p| p.bound <= p.k));
    }

    #[test]
    fn unknown_selectors_are_typed() {
        let session = Session::new();
        let bad_chain = AnalysisRequest::for_system(case_study_text()).with_query(Query::Latency {
            chain: Some("sigma_x".into()),
        });
        assert_eq!(
            session.analyze(&bad_chain).outcome.unwrap_err().kind,
            ApiErrorKind::NoSuchChain
        );
        let bad_resource = dist_request().with_query(Query::Latency {
            chain: Some("ecu9/act".into()),
        });
        assert_eq!(
            session.analyze(&bad_resource).outcome.unwrap_err().kind,
            ApiErrorKind::NoSuchResource
        );
        let not_a_site = dist_request().with_query(Query::Latency {
            chain: Some("justachain".into()),
        });
        assert_eq!(
            session.analyze(&not_a_site).outcome.unwrap_err().kind,
            ApiErrorKind::Request
        );
    }

    #[test]
    fn dist_budget_gates_the_holistic_iteration() {
        // A zero budget must fail before any holistic work: the charge
        // happens ahead of `results()` in every query arm.
        let session = Session::new();
        let request = dist_request()
            .with_query(Query::Dmm {
                chain: None,
                ks: vec![1, 10],
            })
            .with_options(crate::RequestOptions {
                budget: Some(0),
                ..Default::default()
            });
        assert_eq!(
            session.analyze(&request).outcome.unwrap_err().kind,
            ApiErrorKind::Budget
        );
        let request = dist_request()
            .with_query(Query::WeaklyHard {
                chain: None,
                m: 1,
                k: 10,
            })
            .with_options(crate::RequestOptions {
                budget: Some(0),
                ..Default::default()
            });
        assert_eq!(
            session.analyze(&request).outcome.unwrap_err().kind,
            ApiErrorKind::Budget
        );
    }

    /// Two resources where the linked producer has no latency bound:
    /// the façade error must say *which* limit was hit, not just
    /// "unbounded" (the two limits call for different fixes).
    #[test]
    fn unbounded_producer_reasons_reach_the_facade_error() {
        // Producer resource at utilization 1.2: per-q busy times
        // converge but the busy window never closes.
        let producer = "
chain feed periodic=10 sync { task f1 prio=1 wcet=6 }
chain noise periodic=10 sync { task n1 prio=2 wcet=6 }
";
        let request = |options: crate::RequestOptions| AnalysisRequest {
            id: None,
            target: Target::Distributed {
                resources: vec![
                    ("ecu0".into(), producer.into()),
                    ("ecu1".into(), DOWNSTREAM.into()),
                ],
                links: vec![crate::LinkSpec {
                    from: SiteSpec::parse("ecu0/feed").unwrap(),
                    to: SiteSpec::parse("ecu1/act").unwrap(),
                }],
            },
            queries: vec![Query::Latency { chain: None }],
            options,
        };

        let session = Session::new();
        let horizon_limited = session
            .analyze(&request(crate::RequestOptions {
                horizon: Some(1_000),
                ..Default::default()
            }))
            .outcome
            .unwrap_err();
        assert_eq!(horizon_limited.kind, ApiErrorKind::Dist);
        assert!(
            horizon_limited.message.contains("horizon 1000"),
            "{horizon_limited}"
        );

        let q_limited = session
            .analyze(&request(crate::RequestOptions {
                max_q: Some(3),
                ..Default::default()
            }))
            .outcome
            .unwrap_err();
        assert_eq!(q_limited.kind, ApiErrorKind::Dist);
        assert!(q_limited.message.contains("max_q = 3"), "{q_limited}");
    }

    #[test]
    fn zero_max_sweeps_is_rejected_at_the_boundary() {
        let session = Session::new();
        let request = dist_request()
            .with_query(Query::Latency { chain: None })
            .with_options(crate::RequestOptions {
                max_sweeps: Some(0),
                ..Default::default()
            });
        let error = session.analyze(&request).outcome.unwrap_err();
        assert_eq!(error.kind, ApiErrorKind::Dist);
        assert!(error.message.contains("max_sweeps"), "{error}");
    }

    #[test]
    fn solver_override_changes_nothing_observable() {
        let session = Session::new();
        let query = Query::Dmm {
            chain: Some("sigma_c".into()),
            ks: vec![3, 10, 76],
        };
        let default_run = session
            .analyze(&AnalysisRequest::for_system(case_study_text()).with_query(query.clone()))
            .outcome
            .unwrap();
        let iterative_run = session
            .analyze(
                &AnalysisRequest::for_system(case_study_text())
                    .with_query(query)
                    .with_options(crate::RequestOptions {
                        solver: Some(twca_chains::SolverMode::Iterative),
                        ..Default::default()
                    }),
            )
            .outcome
            .unwrap();
        assert_eq!(default_run, iterative_run);
    }

    #[test]
    fn mismatched_query_and_target_are_rejected() {
        let session = Session::new();
        let path_on_chains =
            AnalysisRequest::for_system(case_study_text()).with_query(Query::Path {
                hops: vec![SiteSpec::parse("a/b").unwrap()],
                ks: vec![1],
            });
        assert_eq!(
            session.analyze(&path_on_chains).outcome.unwrap_err().kind,
            ApiErrorKind::Request
        );
        let full_on_dist = dist_request().with_query(Query::Full { ks: vec![1] });
        assert_eq!(
            session.analyze(&full_on_dist).outcome.unwrap_err().kind,
            ApiErrorKind::Request
        );
        let simulate_on_dist = dist_request().with_query(Query::Simulate {
            chain: None,
            runs: 1,
            horizon: 1_000,
            seed: 0,
            threads: 1,
        });
        assert_eq!(
            session.analyze(&simulate_on_dist).outcome.unwrap_err().kind,
            ApiErrorKind::Request
        );
    }

    #[test]
    fn simulate_query_reports_empirical_rates() {
        let session = Session::new();
        let simulate = Query::Simulate {
            chain: Some("sigma_c".into()),
            runs: 6,
            horizon: 20_000,
            seed: 42,
            threads: 2,
        };
        let outcomes = session
            .analyze(&AnalysisRequest::for_system(case_study_text()).with_query(simulate.clone()))
            .outcome
            .unwrap();
        let QueryOutcome::Simulate(sim) = &outcomes[0] else {
            panic!("expected simulate outcome");
        };
        assert_eq!((sim.runs, sim.horizon, sim.seed), (6, 20_000, 42));
        assert_eq!(sim.chains.len(), 1);
        let row = &sim.chains[0];
        assert_eq!(row.name, "sigma_c");
        assert!(row.instances > 0);
        // Observed latency is a lower bound on the analytic WCL (331).
        assert!(row.max_latency.unwrap() <= 331);
        assert!(row.ci_low_ppm <= row.miss_rate_ppm && row.miss_rate_ppm <= row.ci_high_ppm);

        // The classic-engine override changes nothing observable.
        let classic = session
            .analyze(
                &AnalysisRequest::for_system(case_study_text())
                    .with_query(simulate)
                    .with_options(crate::RequestOptions {
                        sim_engine: Some(twca_sim::SimEngineMode::Classic),
                        ..Default::default()
                    }),
            )
            .outcome
            .unwrap();
        assert_eq!(outcomes, classic);
    }

    #[test]
    fn simulate_budget_charges_per_run() {
        let session = Session::new();
        let request = AnalysisRequest::for_system(case_study_text())
            .with_query(Query::Simulate {
                chain: None,
                runs: 100,
                horizon: 1_000,
                seed: 0,
                threads: 1,
            })
            .with_options(crate::RequestOptions {
                budget: Some(10),
                ..Default::default()
            });
        assert_eq!(
            session.analyze(&request).outcome.unwrap_err().kind,
            ApiErrorKind::Budget
        );
        let bad_chain =
            AnalysisRequest::for_system(case_study_text()).with_query(Query::Simulate {
                chain: Some("sigma_x".into()),
                runs: 1,
                horizon: 1_000,
                seed: 0,
                threads: 1,
            });
        assert_eq!(
            session.analyze(&bad_chain).outcome.unwrap_err().kind,
            ApiErrorKind::NoSuchChain
        );
    }
}
