//! The one error type every analysis backend maps into.

use std::fmt;

use crate::json::Json;

/// Classification of an [`ApiError`], stable across the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ApiErrorKind {
    /// The request declared an unsupported schema version.
    Version,
    /// The request line was not valid JSON.
    Json,
    /// The request JSON was well-formed but structurally invalid.
    Request,
    /// A system description (DSL text) did not parse or validate.
    Parse,
    /// The distributed model or holistic analysis failed.
    Dist,
    /// A per-chain analysis failed.
    Analysis,
    /// A named chain or site does not exist in the target.
    NoSuchChain,
    /// A named resource does not exist in the distributed target.
    NoSuchResource,
    /// The request was canceled through its [`crate::CancelToken`].
    Canceled,
    /// The request exhausted its work budget.
    Budget,
    /// The service rejected the request at admission: its pending
    /// queue was full (backpressure) or it was shutting down. The
    /// connection stays alive — clients should back off and retry.
    Overloaded,
    /// An input file or stream could not be read.
    Io,
    /// The store's durability layer failed: journal or snapshot I/O,
    /// or refused corruption detected during recovery.
    Persist,
    /// The service hit an internal fault (a worker panic) handling the
    /// request. The connection and the worker pool stay alive.
    Internal,
}

impl ApiErrorKind {
    /// The wire tag of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ApiErrorKind::Version => "version",
            ApiErrorKind::Json => "json",
            ApiErrorKind::Request => "request",
            ApiErrorKind::Parse => "parse",
            ApiErrorKind::Dist => "dist",
            ApiErrorKind::Analysis => "analysis",
            ApiErrorKind::NoSuchChain => "no_such_chain",
            ApiErrorKind::NoSuchResource => "no_such_resource",
            ApiErrorKind::Canceled => "canceled",
            ApiErrorKind::Budget => "budget",
            ApiErrorKind::Overloaded => "overloaded",
            ApiErrorKind::Io => "io",
            ApiErrorKind::Persist => "persist",
            ApiErrorKind::Internal => "internal",
        }
    }

    /// Parses a wire tag back into a kind.
    pub fn from_str_tag(tag: &str) -> Option<ApiErrorKind> {
        Some(match tag {
            "version" => ApiErrorKind::Version,
            "json" => ApiErrorKind::Json,
            "request" => ApiErrorKind::Request,
            "parse" => ApiErrorKind::Parse,
            "dist" => ApiErrorKind::Dist,
            "analysis" => ApiErrorKind::Analysis,
            "no_such_chain" => ApiErrorKind::NoSuchChain,
            "no_such_resource" => ApiErrorKind::NoSuchResource,
            "canceled" => ApiErrorKind::Canceled,
            "budget" => ApiErrorKind::Budget,
            "overloaded" => ApiErrorKind::Overloaded,
            "io" => ApiErrorKind::Io,
            "persist" => ApiErrorKind::Persist,
            "internal" => ApiErrorKind::Internal,
            _ => return None,
        })
    }
}

/// The façade's single error type: a stable kind plus a human-readable
/// message. Every lower-level failure — DSL parse errors, chain
/// analysis errors, distributed analysis errors, I/O — maps into this
/// through `From`.
///
/// # Examples
///
/// ```
/// use twca_api::{ApiError, ApiErrorKind};
///
/// let error: ApiError = "chain frob sporadic".parse::<u64>()
///     .map_err(|e| ApiError::new(ApiErrorKind::Request, e.to_string()))
///     .unwrap_err();
/// assert_eq!(error.kind, ApiErrorKind::Request);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// Stable classification.
    pub kind: ApiErrorKind,
    /// Human-readable description.
    pub message: String,
}

impl ApiError {
    /// An error of `kind` with `message`.
    pub fn new(kind: ApiErrorKind, message: impl Into<String>) -> ApiError {
        ApiError {
            kind,
            message: message.into(),
        }
    }

    /// Shorthand for a structurally invalid request.
    pub fn request(message: impl Into<String>) -> ApiError {
        ApiError::new(ApiErrorKind::Request, message)
    }

    /// Shorthand for a missing chain or site.
    pub fn no_such_chain(name: &str) -> ApiError {
        ApiError::new(
            ApiErrorKind::NoSuchChain,
            format!("no chain or site named `{name}`"),
        )
    }

    /// Shorthand for a missing resource.
    pub fn no_such_resource(name: &str) -> ApiError {
        ApiError::new(
            ApiErrorKind::NoSuchResource,
            format!("no resource named `{name}`"),
        )
    }

    /// The canceled-by-caller error.
    pub fn canceled() -> ApiError {
        ApiError::new(ApiErrorKind::Canceled, "request canceled")
    }

    /// The budget-exhausted error.
    pub fn budget(limit: u64) -> ApiError {
        ApiError::new(
            ApiErrorKind::Budget,
            format!("work budget of {limit} unit(s) exhausted"),
        )
    }

    /// The admission-control rejection: the service's pending queue of
    /// `capacity` request(s) was full.
    pub fn overloaded(capacity: usize) -> ApiError {
        ApiError::new(
            ApiErrorKind::Overloaded,
            format!("service overloaded: pending queue of {capacity} request(s) is full"),
        )
    }

    /// The shutting-down rejection (also kind
    /// [`ApiErrorKind::Overloaded`]: clients treat both as "back off").
    pub fn draining() -> ApiError {
        ApiError::new(
            ApiErrorKind::Overloaded,
            "service shutting down: no new requests admitted",
        )
    }

    /// The worker-panic error: the request died to an internal fault,
    /// the connection and pool did not.
    pub fn internal(detail: impl Into<String>) -> ApiError {
        ApiError::new(
            ApiErrorKind::Internal,
            format!("internal error: {}", detail.into()),
        )
    }

    /// Serializes the error as its wire object.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("kind".into(), Json::str(self.kind.as_str())),
            ("message".into(), Json::str(&self.message)),
        ])
    }

    /// Parses the wire object back.
    ///
    /// # Errors
    ///
    /// An [`ApiError`] of kind [`ApiErrorKind::Request`] describing the
    /// structural problem.
    pub fn from_json(value: &Json) -> Result<ApiError, ApiError> {
        let kind_tag = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| ApiError::request("error object needs a string `kind`"))?;
        let kind = ApiErrorKind::from_str_tag(kind_tag)
            .ok_or_else(|| ApiError::request(format!("unknown error kind `{kind_tag}`")))?;
        let message = value
            .get("message")
            .and_then(Json::as_str)
            .ok_or_else(|| ApiError::request("error object needs a string `message`"))?;
        Ok(ApiError::new(kind, message))
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

impl std::error::Error for ApiError {}

impl From<twca_model::ParseError> for ApiError {
    fn from(value: twca_model::ParseError) -> Self {
        ApiError::new(ApiErrorKind::Parse, value.to_string())
    }
}

impl From<twca_chains::AnalysisError> for ApiError {
    fn from(value: twca_chains::AnalysisError) -> Self {
        ApiError::new(ApiErrorKind::Analysis, value.to_string())
    }
}

impl From<twca_dist::DistError> for ApiError {
    fn from(value: twca_dist::DistError) -> Self {
        // Parse-shaped and analysis-shaped failures keep their own
        // kinds so clients can distinguish "bad input file" from "the
        // iteration diverged".
        use twca_dist::DistError;
        let kind = match &value {
            DistError::Parse { .. } => ApiErrorKind::Parse,
            DistError::Analysis(_) => ApiErrorKind::Analysis,
            DistError::UnknownResource { .. } => ApiErrorKind::NoSuchResource,
            DistError::UnknownChain { .. } => ApiErrorKind::NoSuchChain,
            _ => ApiErrorKind::Dist,
        };
        ApiError::new(kind, value.to_string())
    }
}

impl From<std::io::Error> for ApiError {
    fn from(value: std::io::Error) -> Self {
        ApiError::new(ApiErrorKind::Io, value.to_string())
    }
}

impl From<crate::persist::PersistError> for ApiError {
    fn from(value: crate::persist::PersistError) -> Self {
        ApiError::new(ApiErrorKind::Persist, value.to_string())
    }
}

impl From<crate::json::JsonParseError> for ApiError {
    fn from(value: crate::json::JsonParseError) -> Self {
        ApiError::new(ApiErrorKind::Json, value.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_their_tags() {
        for kind in [
            ApiErrorKind::Version,
            ApiErrorKind::Json,
            ApiErrorKind::Request,
            ApiErrorKind::Parse,
            ApiErrorKind::Dist,
            ApiErrorKind::Analysis,
            ApiErrorKind::NoSuchChain,
            ApiErrorKind::NoSuchResource,
            ApiErrorKind::Canceled,
            ApiErrorKind::Budget,
            ApiErrorKind::Overloaded,
            ApiErrorKind::Io,
            ApiErrorKind::Persist,
            ApiErrorKind::Internal,
        ] {
            assert_eq!(ApiErrorKind::from_str_tag(kind.as_str()), Some(kind));
        }
        assert_eq!(ApiErrorKind::from_str_tag("bogus"), None);
    }

    #[test]
    fn errors_round_trip_through_json() {
        let error = ApiError::no_such_chain("sigma_x");
        let reparsed = ApiError::from_json(&error.to_json()).unwrap();
        assert_eq!(error, reparsed);
    }

    #[test]
    fn dist_errors_keep_useful_kinds() {
        let e: ApiError = twca_dist::DistError::UnknownResource {
            name: "ecu9".into(),
        }
        .into();
        assert_eq!(e.kind, ApiErrorKind::NoSuchResource);
        let e: ApiError = twca_dist::DistError::Cyclic.into();
        assert_eq!(e.kind, ApiErrorKind::Dist);
    }
}
