//! Property tests: every `AnalysisRequest` / `AnalysisResponse`
//! survives serialize → parse unchanged, for randomly generated DTOs
//! covering every query and outcome kind.

use proptest::prelude::*;

use twca_api::{
    AnalysisRequest, AnalysisResponse, ApiError, ApiErrorKind, ChainOutcome, DmmOutcome, DmmPoint,
    Json, LatencyOutcome, LinkSpec, MkOutcome, PathOutcome, Query, QueryOutcome, RequestOptions,
    SensitivityOutcome, SimChainOutcome, SimulateOutcome, SiteSpec, SystemOutcome, Target,
    WitnessOutcome,
};

fn any_bool() -> impl Strategy<Value = bool> {
    prop_oneof![Just(false), Just(true)]
}

fn name() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z][a-z0-9_]{0,11}").expect("valid regex")
}

/// Free-form text fields: throw escapes, unicode and control
/// characters at the serializer.
fn text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~\u{e9}\u{1F600}\n\t\"\\\\]{0,24}").expect("valid regex")
}

fn site() -> impl Strategy<Value = SiteSpec> {
    (name(), name()).prop_map(|(resource, chain)| SiteSpec { resource, chain })
}

fn ks() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(1u64..1000, 0..5)
}

fn opt_name() -> impl Strategy<Value = Option<String>> {
    prop_oneof![Just(None), name().prop_map(Some)]
}

fn query() -> impl Strategy<Value = Query> {
    prop_oneof![
        opt_name().prop_map(|chain| Query::Latency { chain }),
        (opt_name(), ks()).prop_map(|(chain, ks)| Query::Dmm { chain, ks }),
        (name(), 1u64..100).prop_map(|(chain, k)| Query::Witness { chain, k }),
        (opt_name(), 0u64..10, 1u64..100).prop_map(|(chain, m, k)| Query::WeaklyHard {
            chain,
            m,
            k
        }),
        (name(), 0u64..10, 1u64..100, 1u64..500).prop_map(|(chain, m, k, max_percent)| {
            Query::Sensitivity {
                chain,
                m,
                k,
                max_percent,
            }
        }),
        (proptest::collection::vec(site(), 1..4), ks())
            .prop_map(|(hops, ks)| Query::Path { hops, ks }),
        ks().prop_map(|ks| Query::Full { ks }),
        (
            opt_name(),
            0u64..1000,
            0u64..1_000_000,
            0u64..u64::MAX,
            0u64..64
        )
            .prop_map(|(chain, runs, horizon, seed, threads)| Query::Simulate {
                chain,
                runs,
                horizon,
                seed,
                threads,
            }),
    ]
}

fn knob() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![Just(None), (1u64..1_000_000).prop_map(Some)]
}

fn engine() -> impl Strategy<Value = Option<twca_chains::CombinationEngineMode>> {
    prop_oneof![
        Just(None),
        Just(Some(twca_chains::CombinationEngineMode::Lazy)),
        Just(Some(twca_chains::CombinationEngineMode::Materialized)),
    ]
}

fn solver() -> impl Strategy<Value = Option<twca_chains::SolverMode>> {
    prop_oneof![
        Just(None),
        Just(Some(twca_chains::SolverMode::SchedulingPoints)),
        Just(Some(twca_chains::SolverMode::Iterative)),
    ]
}

fn sim_engine() -> impl Strategy<Value = Option<twca_sim::SimEngineMode>> {
    prop_oneof![
        Just(None),
        Just(Some(twca_sim::SimEngineMode::EventQueue)),
        Just(Some(twca_sim::SimEngineMode::Classic)),
    ]
}

fn options() -> impl Strategy<Value = RequestOptions> {
    (
        knob(),
        knob(),
        knob(),
        knob(),
        knob(),
        engine(),
        solver(),
        sim_engine(),
    )
        .prop_map(
            |(horizon, max_q, max_combinations, max_sweeps, budget, engine, solver, sim_engine)| {
                RequestOptions {
                    horizon,
                    max_q,
                    max_combinations,
                    max_sweeps,
                    budget,
                    engine,
                    solver,
                    sim_engine,
                }
            },
        )
}

fn target() -> impl Strategy<Value = Target> {
    prop_oneof![
        text().prop_map(|system| Target::Chains { system }),
        text().prop_map(|text| Target::DistText { text }),
        (
            proptest::collection::vec((name(), text()), 1..3),
            proptest::collection::vec(
                site().prop_flat_map(|f| site().prop_map(move |t| {
                    LinkSpec {
                        from: f.clone(),
                        to: t,
                    }
                })),
                0..3
            ),
        )
            .prop_map(|(mut resources, links)| {
                // Resource names become JSON object keys, which the
                // parser requires to be unique.
                resources.sort_by(|a, b| a.0.cmp(&b.0));
                resources.dedup_by(|a, b| a.0 == b.0);
                Target::Distributed { resources, links }
            }),
    ]
}

fn request() -> impl Strategy<Value = AnalysisRequest> {
    (
        opt_name(),
        target(),
        proptest::collection::vec(query(), 0..5),
        options(),
    )
        .prop_map(|(id, target, queries, options)| AnalysisRequest {
            id,
            target,
            queries,
            options,
        })
}

fn point() -> impl Strategy<Value = DmmPoint> {
    (1u64..100, 0u64..100, any_bool()).prop_map(|(k, bound, informative)| DmmPoint {
        k,
        bound,
        informative,
    })
}

fn opt_u64() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![Just(None), (0u64..1_000_000).prop_map(Some)]
}

fn opt_text() -> impl Strategy<Value = Option<String>> {
    prop_oneof![Just(None), text().prop_map(Some)]
}

fn chain_outcome() -> impl Strategy<Value = ChainOutcome> {
    (
        name(),
        opt_u64(),
        any_bool(),
        opt_u64(),
        opt_u64(),
        proptest::collection::vec(point(), 0..4),
        opt_text(),
    )
        .prop_map(
            |(name, deadline, overload, wcl, typical, miss_models, error)| ChainOutcome {
                name,
                deadline,
                overload,
                worst_case_latency: wcl,
                typical_latency: typical,
                miss_models,
                error,
            },
        )
}

fn outcome() -> impl Strategy<Value = QueryOutcome> {
    prop_oneof![
        proptest::collection::vec(
            (name(), opt_u64(), any_bool(), opt_u64(), opt_u64()).prop_map(
                |(name, deadline, overload, wcl, typical)| LatencyOutcome {
                    name,
                    deadline,
                    overload,
                    worst_case_latency: wcl,
                    typical_latency: typical,
                }
            ),
            0..4
        )
        .prop_map(QueryOutcome::Latency),
        proptest::collection::vec(
            (name(), proptest::collection::vec(point(), 0..4), opt_text()).prop_map(
                |(name, points, error)| DmmOutcome {
                    name,
                    points,
                    error,
                }
            ),
            0..4
        )
        .prop_map(QueryOutcome::Dmm),
        (name(), 1u64..100, 0u64..100, any_bool(), text()).prop_map(
            |(name, k, bound, has_witness, text)| {
                QueryOutcome::Witness(WitnessOutcome {
                    name,
                    k,
                    bound,
                    has_witness,
                    text,
                })
            }
        ),
        proptest::collection::vec(
            (name(), 0u64..10, 1u64..100, any_bool()).prop_map(|(name, m, k, satisfied)| {
                MkOutcome {
                    name,
                    m,
                    k,
                    satisfied,
                }
            }),
            0..4
        )
        .prop_map(QueryOutcome::WeaklyHard),
        (name(), 0u64..10, 1u64..100, opt_u64()).prop_map(|(name, m, k, max_percent)| {
            QueryOutcome::Sensitivity(SensitivityOutcome {
                name,
                m,
                k,
                max_percent,
            })
        }),
        (
            proptest::collection::vec(name(), 1..4),
            opt_u64(),
            opt_u64(),
            proptest::collection::vec(point(), 0..4)
        )
            .prop_map(|(hops, latency, composite_deadline, points)| {
                QueryOutcome::Path(PathOutcome {
                    hops,
                    latency,
                    composite_deadline,
                    points,
                })
            }),
        (
            0usize..1000,
            proptest::collection::vec(chain_outcome(), 0..4)
        )
            .prop_map(|(index, chains)| QueryOutcome::Full(SystemOutcome { index, chains })),
        (
            0u64..1000,
            0u64..1_000_000,
            0u64..u64::MAX,
            proptest::collection::vec(sim_row(), 0..4)
        )
            .prop_map(|(runs, horizon, seed, chains)| {
                QueryOutcome::Simulate(SimulateOutcome {
                    runs,
                    horizon,
                    seed,
                    chains,
                })
            }),
    ]
}

fn sim_row() -> impl Strategy<Value = SimChainOutcome> {
    (
        name(),
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..=1_000_000,
        0u64..=1_000_000,
        0u64..=1_000_000,
        opt_u64(),
    )
        .prop_map(
            |(name, instances, misses, miss_rate_ppm, ci_low_ppm, ci_high_ppm, max_latency)| {
                SimChainOutcome {
                    name,
                    instances,
                    misses,
                    miss_rate_ppm,
                    ci_low_ppm,
                    ci_high_ppm,
                    max_latency,
                }
            },
        )
}

fn api_error() -> impl Strategy<Value = ApiError> {
    let kind = prop_oneof![
        Just(ApiErrorKind::Version),
        Just(ApiErrorKind::Json),
        Just(ApiErrorKind::Request),
        Just(ApiErrorKind::Parse),
        Just(ApiErrorKind::Dist),
        Just(ApiErrorKind::Analysis),
        Just(ApiErrorKind::NoSuchChain),
        Just(ApiErrorKind::NoSuchResource),
        Just(ApiErrorKind::Canceled),
        Just(ApiErrorKind::Budget),
        Just(ApiErrorKind::Io),
    ];
    (kind, text()).prop_map(|(kind, message)| ApiError::new(kind, message))
}

fn response() -> impl Strategy<Value = AnalysisResponse> {
    (
        opt_name(),
        prop_oneof![
            proptest::collection::vec(outcome(), 0..5).prop_map(Ok),
            api_error().prop_map(Err),
        ],
    )
        .prop_map(|(id, outcome)| AnalysisResponse {
            v: twca_api::SCHEMA_VERSION,
            id,
            outcome,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_round_trip(request in request()) {
        let wire = request.to_json().to_string();
        let value = Json::parse(&wire).expect("serializer emits valid JSON");
        let reparsed = AnalysisRequest::from_json(&value).expect("round-trip parses");
        prop_assert_eq!(request, reparsed);
    }

    #[test]
    fn responses_round_trip(response in response()) {
        let wire = response.to_json().to_string();
        let value = Json::parse(&wire).expect("serializer emits valid JSON");
        let reparsed = AnalysisResponse::from_json(&value).expect("round-trip parses");
        prop_assert_eq!(response, reparsed);
    }

    /// The writer is canonical: parse → print → parse → print is a
    /// fixed point for arbitrary request documents.
    #[test]
    fn serialization_is_canonical(request in request()) {
        let first = request.to_json().to_string();
        let second = Json::parse(&first).unwrap().to_string();
        prop_assert_eq!(first, second);
    }
}
