//! Golden-file tests pinning schema version 1: the wire bytes of a
//! representative request, a representative response, and a live
//! served stream must match the recorded fixtures exactly. A failure
//! here means the schema changed — bump [`twca_api::SCHEMA_VERSION`]
//! and re-record deliberately, never accidentally.

use twca_api::{
    AnalysisRequest, AnalysisResponse, ApiError, ApiErrorKind, ChainOutcome, DmmOutcome, DmmPoint,
    Json, LatencyOutcome, Query, QueryOutcome, RequestOptions, Session, SiteSpec, SystemOutcome,
    Target, WitnessOutcome,
};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden fixture {}: {e}", path.display()))
}

fn golden_request() -> AnalysisRequest {
    AnalysisRequest {
        id: Some("golden-1".into()),
        target: Target::Distributed {
            resources: vec![
                (
                    "ecu0".into(),
                    "chain c periodic=100 deadline=100 sync { task t prio=1 wcet=10 }".into(),
                ),
                (
                    "ecu1".into(),
                    "chain d periodic=100 deadline=150 sync { task u prio=1 wcet=15 }".into(),
                ),
            ],
            links: vec![twca_api::LinkSpec {
                from: SiteSpec::parse("ecu0/c").unwrap(),
                to: SiteSpec::parse("ecu1/d").unwrap(),
            }],
        },
        queries: vec![
            Query::Latency { chain: None },
            Query::Dmm {
                chain: Some("ecu1/d".into()),
                ks: vec![1, 10, 100],
            },
            Query::Path {
                hops: vec![
                    SiteSpec::parse("ecu0/c").unwrap(),
                    SiteSpec::parse("ecu1/d").unwrap(),
                ],
                ks: vec![10],
            },
        ],
        options: RequestOptions {
            horizon: Some(2_000_000),
            budget: Some(10_000),
            ..RequestOptions::default()
        },
    }
}

fn golden_response() -> AnalysisResponse {
    AnalysisResponse::ok(
        Some("golden-1".into()),
        vec![
            QueryOutcome::Latency(vec![LatencyOutcome {
                name: "ecu0/c".into(),
                deadline: Some(100),
                overload: false,
                worst_case_latency: Some(10),
                typical_latency: None,
            }]),
            QueryOutcome::Dmm(vec![DmmOutcome {
                name: "ecu1/d".into(),
                points: vec![DmmPoint {
                    k: 10,
                    bound: 0,
                    informative: true,
                }],
                error: None,
            }]),
            QueryOutcome::Witness(WitnessOutcome {
                name: "c".into(),
                k: 10,
                bound: 5,
                has_witness: true,
                text: "dmm(10) = 5\n".into(),
            }),
            QueryOutcome::Full(SystemOutcome {
                index: 0,
                chains: vec![ChainOutcome {
                    name: "c".into(),
                    deadline: Some(100),
                    overload: false,
                    worst_case_latency: Some(10),
                    typical_latency: Some(10),
                    miss_models: vec![DmmPoint {
                        k: 1,
                        bound: 0,
                        informative: true,
                    }],
                    error: None,
                }],
            }),
        ],
    )
}

#[test]
fn request_schema_v1_is_stable() {
    let expected = fixture("request_v1.json");
    let actual = golden_request().to_json().to_string();
    assert_eq!(actual, expected.trim_end(), "request schema drifted");
    // And the fixture parses back to the identical DTO.
    let reparsed = AnalysisRequest::from_json(&Json::parse(expected.trim_end()).unwrap()).unwrap();
    assert_eq!(reparsed, golden_request());
}

#[test]
fn response_schema_v1_is_stable() {
    let expected = fixture("response_v1.json");
    let actual = golden_response().to_json().to_string();
    assert_eq!(actual, expected.trim_end(), "response schema drifted");
    let reparsed = AnalysisResponse::from_json(&Json::parse(expected.trim_end()).unwrap()).unwrap();
    assert_eq!(reparsed, golden_response());
}

#[test]
fn error_response_schema_v1_is_stable() {
    let expected = fixture("error_v1.json");
    let actual = AnalysisResponse::error(
        Some("golden-err".into()),
        ApiError::new(ApiErrorKind::Parse, "line 2: expected `{`"),
    )
    .to_json()
    .to_string();
    assert_eq!(actual, expected.trim_end(), "error schema drifted");
}

/// A live session over a fixed request stream must reproduce the
/// recorded responses byte for byte — the analysis is deterministic
/// and the serializer canonical.
#[test]
fn served_stream_v1_is_stable() {
    let input = fixture("stream_v1_requests.jsonl");
    let expected = fixture("stream_v1_responses.jsonl");
    let mut output = Vec::new();
    let session = Session::new();
    twca_api::serve(&session, input.as_bytes(), &mut output).unwrap();
    assert_eq!(
        String::from_utf8(output).unwrap(),
        expected,
        "served bytes drifted from the recorded schema-v1 stream"
    );
}
