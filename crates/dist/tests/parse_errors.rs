//! Error-path coverage for `parse_distributed`: every malformed
//! linked-resource document must produce a typed [`DistError`] — with
//! the offending line number where the distributed layer detects it —
//! and never a panic.

use twca_dist::{parse_distributed, DistError};

fn parse_line(text: &str) -> (usize, String) {
    match parse_distributed(text) {
        Err(DistError::Parse { line, message }) => (line, message),
        other => panic!("expected DistError::Parse, got {other:?}"),
    }
}

#[test]
fn truncated_resource_block_reports_a_parse_error() {
    // The opening brace on line 2 never closes.
    let (line, message) = parse_line(
        "resource ecu0\n{\n    chain c periodic=10 deadline=10 sync { task t prio=1 wcet=1 }\n",
    );
    assert!(message.contains("unbalanced"), "{message}");
    assert!(line >= 2, "points at or after the unbalanced brace");
}

#[test]
fn truncated_link_reports_each_missing_piece() {
    const PREFIX: &str = "resource a { chain c periodic=10 { task t prio=1 wcet=1 } }\n";

    let (line, message) = parse_line(&format!("{PREFIX}link"));
    assert_eq!(line, 2);
    assert!(message.contains("source site"), "{message}");

    let (line, message) = parse_line(&format!("{PREFIX}link a/c"));
    assert_eq!(line, 2);
    assert!(message.contains("->"), "{message}");

    let (line, message) = parse_line(&format!("{PREFIX}link a/c -> "));
    assert_eq!(line, 2);
    assert!(message.contains("destination site"), "{message}");

    let (line, message) = parse_line(&format!("{PREFIX}link a/c => b/d"));
    assert_eq!(line, 2);
    assert!(message.contains("=>"), "{message}");

    let (line, message) = parse_line(&format!("{PREFIX}\nlink notasite -> b/d"));
    assert_eq!(line, 3);
    assert!(message.contains("resource/chain"), "{message}");
}

#[test]
fn truncated_resource_header_reports_a_parse_error() {
    let (line, message) = parse_line("\nresource");
    assert_eq!(line, 2);
    assert!(message.contains("needs a name"), "{message}");

    let (line, message) = parse_line("resource lonely");
    assert_eq!(line, 1);
    assert!(message.contains('{'), "{message}");
}

#[test]
fn bad_chain_bodies_carry_the_resource_line_and_name() {
    let (line, message) = parse_line(
        "# comment\nresource broken {\n    chain c periodic=0 { task t prio=1 wcet=1 }\n}",
    );
    assert_eq!(line, 2, "the resource header line is reported");
    assert!(message.contains("broken"), "{message}");
}

#[test]
fn duplicate_resources_are_rejected() {
    const BODY: &str = "{ chain c periodic=10 { task t prio=1 wcet=1 } }";
    let document = format!("resource twin {BODY}\nresource twin {BODY}");
    match parse_distributed(&document) {
        Err(DistError::DuplicateResource { name }) => assert_eq!(name, "twin"),
        other => panic!("expected DuplicateResource, got {other:?}"),
    }
}

#[test]
fn cyclic_documents_are_rejected() {
    const A: &str = "resource a { chain c periodic=10 { task t prio=1 wcet=1 } }";
    const B: &str = "resource b { chain d periodic=10 { task u prio=1 wcet=1 } }";

    let two_cycle = format!("{A}\n{B}\nlink a/c -> b/d\nlink b/d -> a/c");
    assert!(matches!(
        parse_distributed(&two_cycle),
        Err(DistError::Cyclic)
    ));

    let self_link = format!("{A}\nlink a/c -> a/c");
    assert!(matches!(
        parse_distributed(&self_link),
        Err(DistError::Cyclic)
    ));
}

#[test]
fn dangling_and_doubly_fed_endpoints_are_rejected() {
    const A: &str = "resource a { chain c periodic=10 { task t prio=1 wcet=1 } }";
    const B: &str =
        "resource b { chain d periodic=10 { task u prio=1 wcet=1 }\n chain e periodic=10 { task v prio=2 wcet=1 } }";

    let dangling_chain = format!("{A}\n{B}\nlink a/ghost -> b/d");
    match parse_distributed(&dangling_chain) {
        Err(DistError::UnknownChain { resource, chain }) => {
            assert_eq!(resource, "a");
            assert_eq!(chain, "ghost");
        }
        other => panic!("expected UnknownChain, got {other:?}"),
    }

    let double_fed = format!("{A}\n{B}\nlink a/c -> b/d\nlink b/e -> b/d");
    match parse_distributed(&double_fed) {
        Err(DistError::DuplicateInput { resource, chain }) => {
            assert_eq!(resource, "b");
            assert_eq!(chain, "d");
        }
        other => panic!("expected DuplicateInput, got {other:?}"),
    }
}

#[test]
fn empty_and_comment_only_documents_are_parse_errors() {
    for text in ["", "   \n\n  ", "# nothing\n# here"] {
        assert!(
            matches!(parse_distributed(text), Err(DistError::Parse { .. })),
            "{text:?}"
        );
    }
}

#[test]
fn error_rendering_includes_the_line_number() {
    let error = parse_distributed("robot x {}").unwrap_err();
    assert!(error.to_string().starts_with("line 1:"), "{error}");
}
