//! A text format for linked-resource (distributed) systems, extending
//! the single-system DSL of [`twca_model::parse_system`].
//!
//! # Grammar
//!
//! ```text
//! document := (resource | link)*
//! resource := "resource" NAME "{" <system DSL> "}"
//! link     := "link" NAME "/" NAME "->" NAME "/" NAME
//! ```
//!
//! `#` starts a line comment. The body of a `resource` block is the
//! unmodified chain-system DSL. Every malformed input — unbalanced
//! braces, dangling link endpoints, duplicate resources, bad chain
//! bodies — is reported as a typed [`DistError`] (never a panic), with
//! the line number of the offense where the distributed layer detects
//! it.
//!
//! # Examples
//!
//! ```
//! use twca_dist::parse_distributed;
//!
//! # fn main() -> Result<(), twca_dist::DistError> {
//! let dist = parse_distributed(
//!     "# a two-ECU pipeline
//!      resource ecu0 {
//!          chain c periodic=100 deadline=100 sync { task t prio=1 wcet=10 }
//!      }
//!      resource ecu1 {
//!          chain d periodic=100 deadline=150 sync { task u prio=1 wcet=15 }
//!      }
//!      link ecu0/c -> ecu1/d",
//! )?;
//! assert_eq!(dist.resources().len(), 2);
//! assert_eq!(dist.links().len(), 1);
//! # Ok(())
//! # }
//! ```

use crate::error::DistError;
use crate::system::{DistributedSystem, DistributedSystemBuilder};
use twca_model::parse_system;

/// A scanner over the comment-stripped document that tracks line
/// numbers for error reporting.
struct Scanner<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn line(&self) -> usize {
        1 + self.text[..self.pos].matches('\n').count()
    }

    fn error(&self, message: impl Into<String>) -> DistError {
        DistError::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn skip_whitespace(&mut self) {
        while let Some(c) = self.text[self.pos..].chars().next() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    /// Reads a word: a maximal run of non-whitespace, non-brace
    /// characters.
    fn word(&mut self) -> Option<&'a str> {
        self.skip_whitespace();
        let start = self.pos;
        while let Some(c) = self.text[self.pos..].chars().next() {
            if c.is_whitespace() || c == '{' || c == '}' {
                break;
            }
            self.pos += c.len_utf8();
        }
        (self.pos > start).then(|| &self.text[start..self.pos])
    }

    /// Consumes the brace-balanced block after a `resource` header and
    /// returns its inner text.
    fn block(&mut self) -> Result<&'a str, DistError> {
        self.skip_whitespace();
        if !self.text[self.pos..].starts_with('{') {
            return Err(self.error("expected `{` after the resource name"));
        }
        self.pos += 1;
        let start = self.pos;
        let mut depth = 1usize;
        for (offset, c) in self.text[start..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        let inner = &self.text[start..start + offset];
                        self.pos = start + offset + 1;
                        return Ok(inner);
                    }
                }
                _ => {}
            }
        }
        self.pos = self.text.len();
        Err(self.error("unbalanced `{` in resource block"))
    }
}

/// Replaces `#`-comments by spaces, preserving offsets and newlines so
/// reported line numbers match the original document.
fn strip_comments(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.split_inclusive('\n') {
        match line.find('#') {
            Some(at) => {
                out.push_str(&line[..at]);
                for c in line[at..].chars() {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            None => out.push_str(line),
        }
    }
    out
}

/// Reads one `resource/chain` endpoint of a `link` declaration.
fn link_site(scanner: &mut Scanner<'_>, what: &str) -> Result<(String, String), DistError> {
    let Some(token) = scanner.word() else {
        return Err(scanner.error(format!("`link` needs a {what} site")));
    };
    let token = token.to_owned();
    let Some((resource, chain)) = token.split_once('/') else {
        return Err(scanner.error(format!("link site `{token}` is not `resource/chain`")));
    };
    if resource.is_empty() || chain.is_empty() {
        return Err(scanner.error(format!("link site `{token}` is not `resource/chain`")));
    }
    Ok((resource.to_owned(), chain.to_owned()))
}

/// Parses a linked-resource document; see the grammar above.
///
/// # Errors
///
/// * [`DistError::Parse`] for malformed documents (with the line of
///   the offense);
/// * the validation errors of [`DistributedSystemBuilder::build`]
///   (duplicate resources, dangling or doubly-fed link endpoints).
pub fn parse_distributed(text: &str) -> Result<DistributedSystem, DistError> {
    let stripped = strip_comments(text);
    let mut scanner = Scanner {
        text: &stripped,
        pos: 0,
    };
    let mut builder = DistributedSystemBuilder::new();
    let mut saw_anything = false;
    loop {
        scanner.skip_whitespace();
        if scanner.pos == scanner.text.len() {
            break;
        }
        let keyword_line = scanner.line();
        let Some(keyword) = scanner.word() else {
            return Err(scanner.error(format!(
                "expected `resource` or `link`, found `{}`",
                &scanner.text[scanner.pos..].chars().next().unwrap_or(' ')
            )));
        };
        match keyword {
            "resource" => {
                let name = scanner
                    .word()
                    .ok_or_else(|| scanner.error("`resource` needs a name"))?
                    .to_owned();
                let body = scanner.block()?;
                let system = parse_system(body).map_err(|e| DistError::Parse {
                    line: keyword_line,
                    message: format!("resource `{name}`: {e}"),
                })?;
                builder = builder.resource(name, system);
                saw_anything = true;
            }
            "link" => {
                let from = link_site(&mut scanner, "source")?;
                let arrow = scanner
                    .word()
                    .ok_or_else(|| scanner.error("`link` needs `->` between its sites"))?;
                if arrow != "->" {
                    let arrow = arrow.to_owned();
                    return Err(scanner.error(format!("expected `->`, found `{arrow}`")));
                }
                let to = link_site(&mut scanner, "destination")?;
                builder = builder.link(from, to);
                saw_anything = true;
            }
            other => {
                return Err(
                    scanner.error(format!("expected `resource` or `link`, found `{other}`"))
                );
            }
        }
    }
    if !saw_anything {
        return Err(DistError::Parse {
            line: 1,
            message: "a distributed document needs at least one `resource`".into(),
        });
    }
    builder.build()
}

/// Renders a distributed system back into the linked-resource document
/// format accepted by [`parse_distributed`]. The same representability
/// caveats as [`twca_model::render_system`] apply to each resource body.
///
/// # Examples
///
/// ```
/// use twca_dist::{parse_distributed, render_distributed};
///
/// # fn main() -> Result<(), twca_dist::DistError> {
/// let dist = parse_distributed(
///     "resource ecu0 { chain c periodic=100 deadline=100 sync { task t prio=1 wcet=10 } }
///      resource ecu1 { chain d periodic=100 deadline=150 sync { task u prio=1 wcet=15 } }
///      link ecu0/c -> ecu1/d",
/// )?;
/// let reparsed = parse_distributed(&render_distributed(&dist))?;
/// assert_eq!(dist, reparsed);
/// # Ok(())
/// # }
/// ```
pub fn render_distributed(system: &DistributedSystem) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for resource in system.resources() {
        let _ = writeln!(out, "resource {} {{", resource.name());
        for line in twca_model::render_system(resource.system()).lines() {
            let _ = writeln!(out, "    {line}");
        }
        let _ = writeln!(out, "}}");
    }
    for link in system.links() {
        let (from_resource, from_chain) = system.site_names(link.from());
        let (to_resource, to_chain) = system.site_names(link.to());
        let _ = writeln!(
            out,
            "link {from_resource}/{from_chain} -> {to_resource}/{to_chain}"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PIPELINE: &str = "
# two ECUs
resource ecu0 {
    chain c periodic=100 deadline=100 sync { task t prio=1 wcet=10 }
}
resource ecu1 {
    chain d periodic=100 deadline=150 sync { task u prio=1 wcet=15 }
}
link ecu0/c -> ecu1/d
";

    #[test]
    fn well_formed_documents_parse() {
        let dist = parse_distributed(PIPELINE).unwrap();
        assert_eq!(dist.resources().len(), 2);
        assert_eq!(dist.links().len(), 1);
        assert!(dist.site("ecu1", "d").is_some());
    }

    #[test]
    fn malformed_documents_are_typed_errors_with_lines() {
        let unbalanced = "resource a {\n chain c periodic=10 { task t prio=1 wcet=1 }";
        match parse_distributed(unbalanced) {
            Err(DistError::Parse { line, .. }) => assert!(line >= 1),
            other => panic!("expected a parse error, got {other:?}"),
        }

        let bad_keyword = "\n\nrobot a {}";
        match parse_distributed(bad_keyword) {
            Err(DistError::Parse { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("robot"));
            }
            other => panic!("expected a parse error, got {other:?}"),
        }

        let bad_body = "resource a { chain broken }";
        assert!(matches!(
            parse_distributed(bad_body),
            Err(DistError::Parse { .. })
        ));

        let bad_site = "resource a { chain c periodic=10 { task t prio=1 wcet=1 } }\nlink a -> b";
        assert!(matches!(
            parse_distributed(bad_site),
            Err(DistError::Parse { line: 2, .. })
        ));

        assert!(matches!(
            parse_distributed("   # only a comment"),
            Err(DistError::Parse { .. })
        ));
    }

    #[test]
    fn builder_validation_still_applies() {
        let dangling =
            "resource a { chain c periodic=10 { task t prio=1 wcet=1 } }\nlink a/c -> ghost/d";
        assert!(matches!(
            parse_distributed(dangling),
            Err(DistError::UnknownResource { .. })
        ));
        let duplicate =
            "resource a { chain c periodic=10 { task t prio=1 wcet=1 } }\nresource a { chain c periodic=10 { task t prio=1 wcet=1 } }";
        assert!(matches!(
            parse_distributed(duplicate),
            Err(DistError::DuplicateResource { .. })
        ));
    }

    #[test]
    fn rendering_round_trips() {
        let dist = parse_distributed(PIPELINE).unwrap();
        let rendered = render_distributed(&dist);
        assert_eq!(parse_distributed(&rendered).unwrap(), dist);
        assert!(rendered.contains("link ecu0/c -> ecu1/d"));
    }

    #[test]
    fn comments_do_not_shift_line_numbers() {
        let text = "# line 1\n# line 2\nrobot x {}";
        match parse_distributed(text) {
            Err(DistError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected a parse error, got {other:?}"),
        }
    }
}
