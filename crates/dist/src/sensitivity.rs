//! Sensitivity analysis along end-to-end paths: how much overload the
//! system tolerates before a weakly-hard path contract breaks.

use crate::analyze::{analyze, DistOptions};
use crate::error::DistError;
use crate::path::DistPath;
use crate::system::{DistributedSystem, SiteId};

/// Largest percentage (of the declared overload WCETs, searched in
/// `0..=max_percent`) at which the end-to-end `(m, k)` constraint along
/// `hops` still holds; `None` when even silencing the overload chains
/// entirely (0%) does not satisfy it.
///
/// The check scales **every** overload chain of **every** resource
/// uniformly, re-runs the holistic analysis and tests
/// `path dmm(k) ≤ m`. Non-converging or unbounded configurations count
/// as violating.
///
/// # Errors
///
/// Propagates construction errors for `hops` (e.g.
/// [`DistError::NotLinked`]); analysis failures at a specific
/// percentage are treated as violations, not errors.
///
/// # Examples
///
/// ```
/// use twca_dist::{max_path_overload_scaling, DistOptions, DistributedSystemBuilder};
/// use twca_model::case_study;
///
/// # fn main() -> Result<(), twca_dist::DistError> {
/// let dist = DistributedSystemBuilder::new()
///     .resource("ecu0", case_study())
///     .build()?;
/// let c = dist.site("ecu0", "sigma_c").unwrap();
/// // σc satisfies (0, 10) only with the overload silenced, and
/// // tolerates full declared overload for (5, 10).
/// let strict = max_path_overload_scaling(&dist, &[c], 0, 10, 200, DistOptions::default())?;
/// let relaxed = max_path_overload_scaling(&dist, &[c], 5, 10, 100, DistOptions::default())?;
/// assert!(strict < Some(100));
/// assert_eq!(relaxed, Some(100));
/// # Ok(())
/// # }
/// ```
pub fn max_path_overload_scaling(
    system: &DistributedSystem,
    hops: &[SiteId],
    m: u64,
    k: u64,
    max_percent: u64,
    options: DistOptions,
) -> Result<Option<u64>, DistError> {
    // Validate the path once against the unscaled system (scaling never
    // changes the structure).
    DistPath::new(system, hops.to_vec())?;

    let holds = |percent: u64| -> bool {
        let Ok(scaled) =
            system.map_systems(|r| r.system().with_scaled_overload_wcets(percent, 100))
        else {
            return false;
        };
        let Ok(results) = analyze(&scaled, options) else {
            return false;
        };
        let Ok(path) = DistPath::new(&scaled, hops.to_vec()) else {
            return false;
        };
        match path.deadline_miss_model(&results, k) {
            Ok(dmm) => dmm <= m,
            Err(_) => false,
        }
    };

    if !holds(0) {
        return Ok(None);
    }
    // Binary search for the largest admissible percentage, assuming
    // monotonicity of the miss bound in the overload WCETs.
    let (mut lo, mut hi) = (0u64, max_percent);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if holds(mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Ok(Some(lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::DistributedSystemBuilder;
    use twca_model::case_study;

    #[test]
    fn scaling_is_monotone_and_bounded() {
        let dist = DistributedSystemBuilder::new()
            .resource("ecu0", case_study())
            .build()
            .unwrap();
        let c = dist.site("ecu0", "sigma_c").unwrap();
        let tolerant =
            max_path_overload_scaling(&dist, &[c], 10, 10, 300, DistOptions::default()).unwrap();
        // (10, 10) admits everything: the cap is the search limit.
        assert_eq!(tolerant, Some(300));
        let strict =
            max_path_overload_scaling(&dist, &[c], 2, 10, 300, DistOptions::default()).unwrap();
        assert!(strict.is_some());
        assert!(strict <= tolerant);
    }
}
