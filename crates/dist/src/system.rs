//! The distributed system model: named resources plus directed links.

use std::fmt;

use crate::error::DistError;
use twca_model::{ChainId, System};

/// Index of a resource within a [`DistributedSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub(crate) usize);

impl ResourceId {
    /// The position of the resource in [`DistributedSystem::resources`].
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds an id from a raw position (for tools iterating all
    /// resources; panics later if out of range when used).
    pub fn from_index(index: usize) -> ResourceId {
        ResourceId(index)
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "resource#{}", self.0)
    }
}

/// One chain on one resource — the unit the distributed analysis hands
/// out bounds for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId {
    pub(crate) resource: ResourceId,
    pub(crate) chain: ChainId,
}

impl SiteId {
    /// The resource this site lives on.
    pub fn resource(self) -> ResourceId {
        self.resource
    }

    /// The chain within [`SiteId::resource`]'s system.
    pub fn chain(self) -> ChainId {
        self.chain
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.resource, self.chain)
    }
}

/// A named resource: one SPP uniprocessor running a chain system.
#[derive(Debug, Clone, PartialEq)]
pub struct Resource {
    pub(crate) name: String,
    pub(crate) system: System,
}

impl Resource {
    /// The resource name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The local chain system.
    pub fn system(&self) -> &System {
        &self.system
    }
}

/// A directed activation link: completions of `from` activate `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    pub(crate) from: SiteId,
    pub(crate) to: SiteId,
}

impl Link {
    /// The producing site.
    pub fn from(&self) -> SiteId {
        self.from
    }

    /// The consuming site (its declared activation model is a
    /// placeholder replaced by propagation).
    pub fn to(&self) -> SiteId {
        self.to
    }
}

/// A validated set of resources and links.
///
/// Build with [`DistributedSystemBuilder`]. Invariants: resource names
/// are unique, link endpoints resolve, and every site has at most one
/// incoming link.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedSystem {
    resources: Vec<Resource>,
    links: Vec<Link>,
}

impl DistributedSystem {
    /// All resources, in declaration order.
    pub fn resources(&self) -> &[Resource] {
        &self.resources
    }

    /// The resource at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.0]
    }

    /// Looks up a resource by name.
    pub fn resource_by_name(&self, name: &str) -> Option<ResourceId> {
        self.resources
            .iter()
            .position(|r| r.name == name)
            .map(ResourceId)
    }

    /// All links, in declaration order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Resolves `(resource, chain)` names to a site.
    pub fn site(&self, resource: &str, chain: &str) -> Option<SiteId> {
        let rid = self.resource_by_name(resource)?;
        let (cid, _) = self.resources[rid.0].system.chain_by_name(chain)?;
        Some(SiteId {
            resource: rid,
            chain: cid,
        })
    }

    /// Every chain of every resource as a site.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        self.resources.iter().enumerate().flat_map(|(r, res)| {
            res.system.iter().map(move |(c, _)| SiteId {
                resource: ResourceId(r),
                chain: c,
            })
        })
    }

    /// Links departing from `site`.
    pub fn outgoing_links(&self, site: SiteId) -> impl Iterator<Item = &Link> + '_ {
        self.links.iter().filter(move |l| l.from == site)
    }

    /// The link arriving at `site`, if any (at most one by construction).
    pub fn incoming_link(&self, site: SiteId) -> Option<&Link> {
        self.links.iter().find(|l| l.to == site)
    }

    /// Rebuilds the system with `f` applied to every resource, keeping
    /// names and links.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] if a transformed system no longer contains
    /// a linked chain name.
    pub fn map_systems(
        &self,
        mut f: impl FnMut(&Resource) -> System,
    ) -> Result<DistributedSystem, DistError> {
        let mut builder = DistributedSystemBuilder::new();
        for resource in &self.resources {
            builder = builder.resource(resource.name.clone(), f(resource));
        }
        for link in &self.links {
            let from = self.site_names(link.from);
            let to = self.site_names(link.to);
            builder = builder.link(from, to);
        }
        builder.build()
    }

    /// The `(resource, chain)` names of `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` does not belong to this system.
    pub fn site_names(&self, site: SiteId) -> (String, String) {
        let resource = &self.resources[site.resource.0];
        (
            resource.name.clone(),
            resource.system.chain(site.chain).name().to_owned(),
        )
    }

    /// Topological order of the resources under the link edges
    /// (self-links count as cycles).
    ///
    /// # Errors
    ///
    /// [`DistError::Cyclic`] when the resource graph has a cycle.
    pub fn resource_topological_order(&self) -> Result<Vec<ResourceId>, DistError> {
        let n = self.resources.len();
        let mut indegree = vec![0usize; n];
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for link in &self.links {
            let (from, to) = (link.from.resource.0, link.to.resource.0);
            if from == to {
                return Err(DistError::Cyclic);
            }
            edges.push((from, to));
            indegree[to] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(next) = queue.pop() {
            order.push(ResourceId(next));
            for &(from, to) in &edges {
                if from == next {
                    indegree[to] -= 1;
                    if indegree[to] == 0 {
                        queue.push(to);
                    }
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(DistError::Cyclic)
        }
    }

    /// Whether `site`'s indices are valid for this system.
    pub fn contains(&self, site: SiteId) -> bool {
        site.resource.0 < self.resources.len()
            && site.chain.index() < self.resources[site.resource.0].system.chains().len()
    }
}

/// Builder for [`DistributedSystem`].
///
/// # Examples
///
/// ```
/// use twca_dist::DistributedSystemBuilder;
/// use twca_model::SystemBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ecu = SystemBuilder::new()
///     .chain("c").periodic(100)?.task("t", 1, 10).done()
///     .build()?;
/// let dist = DistributedSystemBuilder::new()
///     .resource("ecu0", ecu.clone())
///     .resource("ecu1", ecu)
///     .link(("ecu0", "c"), ("ecu1", "c"))
///     .build()?;
/// assert_eq!(dist.links().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct DistributedSystemBuilder {
    resources: Vec<Resource>,
    links: Vec<((String, String), (String, String))>,
}

impl DistributedSystemBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named resource.
    pub fn resource(mut self, name: impl Into<String>, system: System) -> Self {
        self.resources.push(Resource {
            name: name.into(),
            system,
        });
        self
    }

    /// Declares that completions of `from = (resource, chain)` activate
    /// `to`.
    pub fn link(
        mut self,
        from: (impl Into<String>, impl Into<String>),
        to: (impl Into<String>, impl Into<String>),
    ) -> Self {
        self.links
            .push(((from.0.into(), from.1.into()), (to.0.into(), to.1.into())));
        self
    }

    /// Validates and builds the distributed system.
    ///
    /// # Errors
    ///
    /// * [`DistError::DuplicateResource`] for repeated resource names;
    /// * [`DistError::UnknownResource`] / [`DistError::UnknownChain`]
    ///   for dangling link endpoints;
    /// * [`DistError::DuplicateInput`] if two links target one site;
    /// * [`DistError::Cyclic`] if the resource graph has a cycle (or a
    ///   self-link) — no analysis or simulation order exists for it, so
    ///   the construction is rejected eagerly.
    pub fn build(self) -> Result<DistributedSystem, DistError> {
        for (i, resource) in self.resources.iter().enumerate() {
            if self.resources[..i].iter().any(|r| r.name == resource.name) {
                return Err(DistError::DuplicateResource {
                    name: resource.name.clone(),
                });
            }
        }
        let system = DistributedSystem {
            resources: self.resources,
            links: Vec::new(),
        };
        let mut links = Vec::with_capacity(self.links.len());
        for ((from_r, from_c), (to_r, to_c)) in self.links {
            let resolve = |r: &str, c: &str| -> Result<SiteId, DistError> {
                let rid = system
                    .resource_by_name(r)
                    .ok_or_else(|| DistError::UnknownResource { name: r.to_owned() })?;
                let (cid, _) =
                    system.resources[rid.0]
                        .system
                        .chain_by_name(c)
                        .ok_or_else(|| DistError::UnknownChain {
                            resource: r.to_owned(),
                            chain: c.to_owned(),
                        })?;
                Ok(SiteId {
                    resource: rid,
                    chain: cid,
                })
            };
            let link = Link {
                from: resolve(&from_r, &from_c)?,
                to: resolve(&to_r, &to_c)?,
            };
            if links.iter().any(|l: &Link| l.to == link.to) {
                return Err(DistError::DuplicateInput {
                    resource: to_r,
                    chain: to_c,
                });
            }
            links.push(link);
        }
        let system = DistributedSystem { links, ..system };
        system.resource_topological_order()?;
        Ok(system)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twca_model::SystemBuilder;

    fn small() -> System {
        SystemBuilder::new()
            .chain("c")
            .periodic(100)
            .unwrap()
            .task("t", 1, 10)
            .done()
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_names() {
        let dup = DistributedSystemBuilder::new()
            .resource("a", small())
            .resource("a", small())
            .build();
        assert!(matches!(dup, Err(DistError::DuplicateResource { .. })));

        let dangling = DistributedSystemBuilder::new()
            .resource("a", small())
            .link(("a", "c"), ("b", "c"))
            .build();
        assert!(matches!(dangling, Err(DistError::UnknownResource { .. })));

        let ghost = DistributedSystemBuilder::new()
            .resource("a", small())
            .resource("b", small())
            .link(("a", "ghost"), ("b", "c"))
            .build();
        assert!(matches!(ghost, Err(DistError::UnknownChain { .. })));
    }

    #[test]
    fn site_lookup_and_iteration() {
        let dist = DistributedSystemBuilder::new()
            .resource("a", small())
            .resource("b", small())
            .link(("a", "c"), ("b", "c"))
            .build()
            .unwrap();
        assert_eq!(dist.sites().count(), 2);
        let site = dist.site("b", "c").unwrap();
        assert!(dist.contains(site));
        assert!(dist.incoming_link(site).is_some());
        assert_eq!(dist.outgoing_links(site).count(), 0);
        assert_eq!(dist.site_names(site), ("b".to_owned(), "c".to_owned()));
    }

    #[test]
    fn topological_order_detects_cycles() {
        let ok = DistributedSystemBuilder::new()
            .resource("a", small())
            .resource("b", small())
            .link(("a", "c"), ("b", "c"))
            .build()
            .unwrap();
        assert_eq!(ok.resource_topological_order().unwrap().len(), 2);

        let two = SystemBuilder::new()
            .chain("c")
            .periodic(100)
            .unwrap()
            .task("t", 1, 10)
            .done()
            .chain("d")
            .periodic(100)
            .unwrap()
            .task("u", 2, 10)
            .done()
            .build()
            .unwrap();
        // Cyclic graphs are rejected at construction: no analysis or
        // simulation order exists for them.
        let cyclic = DistributedSystemBuilder::new()
            .resource("a", two.clone())
            .resource("b", two)
            .link(("a", "c"), ("b", "c"))
            .link(("b", "d"), ("a", "d"))
            .build();
        assert!(matches!(cyclic, Err(DistError::Cyclic)));
    }
}
