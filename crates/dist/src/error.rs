//! Failure modes of the distributed analysis.

use std::error::Error;
use std::fmt;

use crate::system::SiteId;
use twca_chains::{AnalysisError, LatencyFailure};

/// Errors of the distributed model and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DistError {
    /// Two resources share a name.
    DuplicateResource {
        /// The repeated name.
        name: String,
    },
    /// A link names a resource that does not exist.
    UnknownResource {
        /// The dangling name.
        name: String,
    },
    /// A link or path hop names a chain its resource does not have.
    UnknownChain {
        /// The resource name.
        resource: String,
        /// The dangling chain name.
        chain: String,
    },
    /// Two links target the same site.
    DuplicateInput {
        /// The resource name.
        resource: String,
        /// The doubly-fed chain name.
        chain: String,
    },
    /// A path was constructed without hops.
    EmptyPath,
    /// Two consecutive path hops have no declared link.
    NotLinked {
        /// The earlier hop.
        from: SiteId,
        /// The later hop.
        to: SiteId,
    },
    /// The resource graph has a cycle (or a self-link).
    Cyclic,
    /// A linked producer chain has no finite latency bound, so nothing
    /// can be propagated downstream.
    UnboundedLatency {
        /// The unbounded site.
        site: SiteId,
        /// Which analysis limit was hit, when the failure was observed
        /// during the fixed point itself (`None` on readout paths that
        /// only see the collapsed bound).
        reason: Option<LatencyFailure>,
    },
    /// The holistic iteration did not reach a fixed point.
    Diverged {
        /// Sweeps actually performed before giving up.
        sweeps: usize,
    },
    /// [`crate::DistOptions::max_sweeps`] was zero: the iteration could
    /// not even run its confirming sweep. Rejected at the boundary so a
    /// zero never silently means "one".
    ZeroSweeps,
    /// A miss-model query hit a chain without a deadline.
    MissingDeadline {
        /// The deadline-less site.
        site: SiteId,
    },
    /// A per-resource chain analysis failed.
    Analysis(AnalysisError),
    /// A linked-resource document was malformed (see
    /// [`crate::parse_distributed`]).
    Parse {
        /// 1-based line of the offense in the document.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::DuplicateResource { name } => {
                write!(f, "duplicate resource name `{name}`")
            }
            DistError::UnknownResource { name } => {
                write!(f, "no resource named `{name}`")
            }
            DistError::UnknownChain { resource, chain } => {
                write!(f, "resource `{resource}` has no chain named `{chain}`")
            }
            DistError::DuplicateInput { resource, chain } => {
                write!(f, "chain `{chain}` on `{resource}` has two incoming links")
            }
            DistError::EmptyPath => write!(f, "a path needs at least one hop"),
            DistError::NotLinked { from, to } => {
                write!(f, "consecutive path hops {from} and {to} are not linked")
            }
            DistError::Cyclic => write!(f, "the resource graph has a cycle"),
            DistError::UnboundedLatency { site, reason } => {
                write!(f, "linked chain {site} has no finite latency bound")?;
                if let Some(reason) = reason {
                    write!(f, ": {reason}")?;
                }
                Ok(())
            }
            DistError::Diverged { sweeps } => {
                write!(
                    f,
                    "holistic iteration did not converge after {sweeps} sweeps"
                )
            }
            DistError::ZeroSweeps => {
                write!(
                    f,
                    "max_sweeps must be at least 1 (the fixed point needs a confirming sweep)"
                )
            }
            DistError::MissingDeadline { site } => {
                write!(f, "{site} has no deadline, cannot compose a miss model")
            }
            DistError::Analysis(e) => write!(f, "per-resource analysis failed: {e}"),
            DistError::Parse { line, message } => {
                write!(f, "line {line}: {message}")
            }
        }
    }
}

impl Error for DistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DistError::Analysis(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AnalysisError> for DistError {
    fn from(value: AnalysisError) -> Self {
        DistError::Analysis(value)
    }
}
