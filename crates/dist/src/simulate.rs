//! Trace-propagating simulation: resources simulated in topological
//! order, with upstream completion times forwarded as downstream
//! activation traces. Used to cross-check the analytic bounds.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::analyze::DistResults;
use crate::error::DistError;
use crate::path::DistPath;
use crate::system::{DistributedSystem, SiteId};
use twca_curves::Time;
use twca_sim::{max_rate_trace, Simulation, SimulationResult, Trace, TraceSet};

/// How source (un-linked) chains are stimulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StimulusKind {
    /// Every source chain fires at its maximum legal rate.
    MaxRate,
    /// Max-rate events independently kept with probability
    /// `keep_permille / 1000` (a legal sub-trace, randomly phased).
    Thinned {
        /// RNG seed for reproducibility.
        seed: u64,
        /// Keep probability in permille (0–1000).
        keep_permille: u16,
    },
}

/// Per-resource simulation results with completion-trace forwarding.
#[derive(Debug, Clone)]
pub struct PropagateSimulation {
    results: Vec<SimulationResult>,
}

impl PropagateSimulation {
    /// Maximum observed latency of `site`, `None` without completed
    /// instances.
    pub fn max_latency(&self, site: SiteId) -> Option<Time> {
        self.results[site.resource().index()]
            .chain(site.chain())
            .max_latency()
    }

    /// Simulation statistics of `site`.
    pub fn stats(&self, site: SiteId) -> &twca_sim::ChainStats {
        self.results[site.resource().index()].chain(site.chain())
    }

    /// Maximum observed end-to-end latency along `path`: last-hop
    /// completion minus first-hop activation of the same path instance
    /// (instances correspond 1:1 along links).
    pub fn max_path_latency(&self, path: &DistPath) -> Option<Time> {
        let first = self.stats(*path.hops().first()?).records();
        let last = self.stats(*path.hops().last()?).records();
        (0..first.len().min(last.len()))
            .filter_map(|j| {
                last[j]
                    .completion()
                    .map(|c| c.saturating_sub(first[j].activation()))
            })
            .max()
    }
}

/// Simulates the whole distributed system for `horizon` ticks.
///
/// Resources run in topological order; each linked chain's activation
/// trace is the completion trace of its upstream producer, all other
/// chains are driven by `stimulus`.
///
/// # Errors
///
/// [`DistError::Cyclic`] when the resource graph has no topological
/// order.
pub fn propagate_simulation(
    system: &DistributedSystem,
    horizon: Time,
    stimulus: StimulusKind,
) -> Result<PropagateSimulation, DistError> {
    let order = system.resource_topological_order()?;
    let mut results: Vec<Option<SimulationResult>> =
        (0..system.resources().len()).map(|_| None).collect();

    for rid in order {
        let local = system.resource(rid).system();
        let mut traces = stimulus_traces(local, horizon, stimulus, rid.index() as u64);
        for (cid, _) in local.iter() {
            let site = SiteId {
                resource: rid,
                chain: cid,
            };
            if let Some(link) = system.incoming_link(site) {
                let upstream = results[link.from().resource().index()]
                    .as_ref()
                    .expect("producers precede consumers in topological order");
                let mut completions: Vec<Time> = upstream
                    .chain(link.from().chain())
                    .records()
                    .iter()
                    .filter_map(|r| r.completion())
                    .collect();
                completions.sort_unstable();
                traces.set_trace(cid, Trace::new(completions));
            }
        }
        results[rid.index()] = Some(Simulation::new(local).run(&traces));
    }

    Ok(PropagateSimulation {
        results: results
            .into_iter()
            .map(|r| r.expect("every resource simulated"))
            .collect(),
    })
}

fn stimulus_traces(
    local: &twca_model::System,
    horizon: Time,
    stimulus: StimulusKind,
    salt: u64,
) -> TraceSet {
    match stimulus {
        StimulusKind::MaxRate => TraceSet::max_rate(local, horizon),
        StimulusKind::Thinned {
            seed,
            keep_permille,
        } => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ salt.wrapping_mul(0x9E37_79B9));
            let traces = local
                .iter()
                .map(|(_, chain)| {
                    let full = max_rate_trace(chain.activation(), horizon);
                    let kept: Vec<Time> = full
                        .times()
                        .iter()
                        .copied()
                        .filter(|_| rng.gen_range(0u16..1000) < keep_permille)
                        .collect();
                    Trace::new(kept)
                })
                .collect();
            TraceSet::new(local, traces)
        }
    }
}

/// Runs a max-rate propagated simulation and reports every observation
/// that exceeds its analytic bound: per-site latencies, and per-site
/// deadline-miss counts in every window length up to `max_k`.
///
/// An empty result is the expected outcome — the bounds are sound.
///
/// # Errors
///
/// [`DistError::Cyclic`] when the resource graph has no topological
/// order.
pub fn soundness_violations(
    system: &DistributedSystem,
    results: &DistResults,
    horizon: Time,
    max_k: u64,
) -> Result<Vec<String>, DistError> {
    let sim = propagate_simulation(system, horizon, StimulusKind::MaxRate)?;
    let mut violations = Vec::new();
    for site in system.sites() {
        let (resource_name, chain_name) = system.site_names(site);
        if let (Some(observed), Some(bound)) =
            (sim.max_latency(site), results.worst_case_latency(site))
        {
            if observed > bound {
                violations.push(format!(
                    "{resource_name}/{chain_name}: observed latency {observed} > bound {bound}"
                ));
            }
        }
        let has_deadline = system
            .resource(site.resource())
            .system()
            .chain(site.chain())
            .deadline()
            .is_some();
        if has_deadline {
            let stats = sim.stats(site);
            for k in 1..=max_k {
                let Ok(bound) = results.deadline_miss_model(site, k) else {
                    continue;
                };
                let observed = stats.max_misses_in_window(k as usize) as u64;
                if observed > bound {
                    violations.push(format!(
                        "{resource_name}/{chain_name}: {observed} misses in a {k}-window > dmm({k}) = {bound}"
                    ));
                }
            }
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze, DistOptions};
    use crate::system::DistributedSystemBuilder;
    use twca_model::{case_study, SystemBuilder};

    fn pipeline() -> DistributedSystem {
        let downstream = SystemBuilder::new()
            .chain("act")
            .periodic(200)
            .unwrap()
            .deadline(200)
            .task("a1", 1, 20)
            .done()
            .build()
            .unwrap();
        DistributedSystemBuilder::new()
            .resource("ecu0", case_study())
            .resource("ecu1", downstream)
            .link(("ecu0", "sigma_c"), ("ecu1", "act"))
            .build()
            .unwrap()
    }

    #[test]
    fn propagated_simulation_respects_bounds() {
        let dist = pipeline();
        let results = analyze(&dist, DistOptions::default()).unwrap();
        let violations = soundness_violations(&dist, &results, 40_000, 5).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn thinned_stimulus_is_a_subtrace() {
        let dist = pipeline();
        let sparse = propagate_simulation(
            &dist,
            20_000,
            StimulusKind::Thinned {
                seed: 9,
                keep_permille: 500,
            },
        )
        .unwrap();
        let dense = propagate_simulation(&dist, 20_000, StimulusKind::MaxRate).unwrap();
        let c = dist.site("ecu0", "sigma_c").unwrap();
        assert!(
            sparse.stats(c).records().len() <= dense.stats(c).records().len(),
            "thinning must not add activations"
        );
    }

    #[test]
    fn path_latency_is_observed_end_to_end() {
        let dist = pipeline();
        let results = analyze(&dist, DistOptions::default()).unwrap();
        let path = DistPath::new(
            &dist,
            vec![
                dist.site("ecu0", "sigma_c").unwrap(),
                dist.site("ecu1", "act").unwrap(),
            ],
        )
        .unwrap();
        let sim = propagate_simulation(&dist, 40_000, StimulusKind::MaxRate).unwrap();
        let observed = sim.max_path_latency(&path).unwrap();
        let bound = path.latency(&results).unwrap();
        assert!(observed <= bound, "observed {observed} > bound {bound}");
        assert!(observed > 0);
    }
}
