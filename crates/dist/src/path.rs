//! End-to-end paths across resources, composing per-hop bounds.

use crate::analyze::DistResults;
use crate::error::DistError;
use crate::system::{DistributedSystem, SiteId};
use twca_curves::Time;

/// A sequence of linked sites analyzed end to end.
///
/// Composition rules (the standard compositional-performance-analysis
/// argument, matching [`twca_chains::paths`] on one resource):
///
/// * end-to-end latency ≤ Σ per-hop worst-case latencies;
/// * out of `k` consecutive end-to-end instances, at most
///   `min(k, Σ dmm_i(k))` violate the composite deadline `Σ D_i` — an
///   instance is late end-to-end only if some member instance was late
///   locally, and link instances correspond 1:1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistPath {
    hops: Vec<SiteId>,
}

impl DistPath {
    /// Validates that consecutive hops are linked and builds the path.
    ///
    /// # Errors
    ///
    /// * [`DistError::EmptyPath`] for zero hops;
    /// * [`DistError::UnknownChain`] for a site outside `system`;
    /// * [`DistError::NotLinked`] when two consecutive hops have no
    ///   declared link.
    pub fn new(system: &DistributedSystem, hops: Vec<SiteId>) -> Result<Self, DistError> {
        if hops.is_empty() {
            return Err(DistError::EmptyPath);
        }
        for &hop in &hops {
            if !system.contains(hop) {
                return Err(DistError::UnknownChain {
                    resource: format!("{}", hop.resource()),
                    chain: format!("{}", hop.chain()),
                });
            }
        }
        for pair in hops.windows(2) {
            let linked = system
                .links()
                .iter()
                .any(|l| l.from() == pair[0] && l.to() == pair[1]);
            if !linked {
                return Err(DistError::NotLinked {
                    from: pair[0],
                    to: pair[1],
                });
            }
        }
        Ok(DistPath { hops })
    }

    /// The hops, in path order.
    pub fn hops(&self) -> &[SiteId] {
        &self.hops
    }

    /// End-to-end latency bound: the sum of per-hop worst-case
    /// latencies.
    ///
    /// # Errors
    ///
    /// [`DistError::UnboundedLatency`] when any hop is unbounded.
    pub fn latency(&self, results: &DistResults) -> Result<Time, DistError> {
        let mut total: Time = 0;
        for &hop in &self.hops {
            let Some(wcl) = results.worst_case_latency(hop) else {
                return Err(DistError::UnboundedLatency {
                    site: hop,
                    reason: None,
                });
            };
            total = total.saturating_add(wcl);
        }
        Ok(total)
    }

    /// End-to-end deadline miss model: at most `min(k, Σ dmm_i(k))` of
    /// any `k` consecutive path instances exceed the composite deadline.
    ///
    /// # Errors
    ///
    /// [`DistError::MissingDeadline`] when a hop has no deadline;
    /// per-resource analysis errors are forwarded.
    pub fn deadline_miss_model(&self, results: &DistResults, k: u64) -> Result<u64, DistError> {
        let mut total: u64 = 0;
        for &hop in &self.hops {
            total = total.saturating_add(results.deadline_miss_model(hop, k)?);
        }
        Ok(total.min(k))
    }

    /// The composite deadline `Σ D_i`, `None` when a hop has no
    /// deadline.
    pub fn composite_deadline(&self, system: &DistributedSystem) -> Option<Time> {
        self.hops
            .iter()
            .map(|&hop| {
                system
                    .resource(hop.resource())
                    .system()
                    .chain(hop.chain())
                    .deadline()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze, DistOptions};
    use crate::system::DistributedSystemBuilder;
    use twca_model::{case_study, SystemBuilder};

    fn pipeline() -> DistributedSystem {
        let downstream = SystemBuilder::new()
            .chain("act")
            .periodic(200)
            .unwrap()
            .deadline(200)
            .task("a1", 1, 20)
            .done()
            .build()
            .unwrap();
        DistributedSystemBuilder::new()
            .resource("ecu0", case_study())
            .resource("ecu1", downstream)
            .link(("ecu0", "sigma_c"), ("ecu1", "act"))
            .build()
            .unwrap()
    }

    #[test]
    fn path_validation() {
        let dist = pipeline();
        let c = dist.site("ecu0", "sigma_c").unwrap();
        let d = dist.site("ecu0", "sigma_d").unwrap();
        let act = dist.site("ecu1", "act").unwrap();
        assert!(DistPath::new(&dist, vec![]).is_err());
        assert!(matches!(
            DistPath::new(&dist, vec![d, act]),
            Err(DistError::NotLinked { .. })
        ));
        let path = DistPath::new(&dist, vec![c, act]).unwrap();
        assert_eq!(path.hops().len(), 2);
        assert_eq!(path.composite_deadline(&dist), Some(200 + 200));
    }

    #[test]
    fn path_bounds_compose() {
        let dist = pipeline();
        let c = dist.site("ecu0", "sigma_c").unwrap();
        let act = dist.site("ecu1", "act").unwrap();
        let results = analyze(&dist, DistOptions::default()).unwrap();
        let path = DistPath::new(&dist, vec![c, act]).unwrap();
        let total = path.latency(&results).unwrap();
        let sum = results.worst_case_latency(c).unwrap() + results.worst_case_latency(act).unwrap();
        assert_eq!(total, sum);
        let mut previous = 0;
        for k in [1u64, 2, 5, 10, 50] {
            let dmm = path.deadline_miss_model(&results, k).unwrap();
            assert!(dmm <= k);
            assert!(dmm >= previous);
            previous = dmm;
        }
    }
}
