//! **Distributed extension** of the DATE 2017 chain analysis: multiple
//! SPP resources whose task chains feed each other across resource
//! boundaries.
//!
//! The paper's conclusion motivates extending TWCA "towards the
//! practical design of distributed embedded systems"; this crate
//! provides that layer in the style of compositional performance
//! analysis (CPA):
//!
//! * a [`DistributedSystem`] is a set of named resources (each a
//!   [`twca_model::System`]) plus directed [`Link`]s stating that the
//!   completions of one chain activate another chain on another
//!   resource;
//! * [`analyze`] runs the **holistic iteration**: per-resource chain
//!   analysis ([`twca_chains`]) alternating with **output event-model
//!   propagation** along the links
//!   ([`twca_independent::propagate_output_model`]) until the effective
//!   activation models reach a fixed point;
//! * [`DistPath`] composes per-hop bounds into end-to-end latency and
//!   deadline-miss bounds;
//! * [`propagate_simulation`] cross-checks the bounds against the
//!   discrete-event simulator ([`twca_sim`]) with completion-trace
//!   forwarding, and [`soundness_violations`] automates the comparison;
//! * [`max_path_overload_scaling`] answers sensitivity questions along a
//!   path.
//!
//! # Examples
//!
//! ```
//! use twca_dist::{analyze, DistOptions, DistributedSystemBuilder};
//! use twca_model::{case_study, SystemBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let downstream = SystemBuilder::new()
//!     .chain("act").periodic(200)?.deadline(200)
//!     .task("a1", 1, 20).done()
//!     .build()?;
//! let dist = DistributedSystemBuilder::new()
//!     .resource("ecu0", case_study())
//!     .resource("ecu1", downstream)
//!     .link(("ecu0", "sigma_c"), ("ecu1", "act"))
//!     .build()?;
//! let results = analyze(&dist, DistOptions::default())?;
//! let c = dist.site("ecu0", "sigma_c").unwrap();
//! // Embedding does not change local bounds: Table I says 331.
//! assert_eq!(results.worst_case_latency(c), Some(331));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod analyze;
mod error;
mod parse;
mod path;
mod sensitivity;
mod simulate;
mod system;

pub use analyze::{
    analyze, analyze_with_memo, jitter_shifted, DeltaReport, DistOptions, DistResults, HolisticMemo,
};
pub use error::DistError;
pub use parse::{parse_distributed, render_distributed};
pub use path::DistPath;
pub use sensitivity::max_path_overload_scaling;
pub use simulate::{propagate_simulation, soundness_violations, PropagateSimulation, StimulusKind};
pub use system::{DistributedSystem, DistributedSystemBuilder, Link, Resource, ResourceId, SiteId};
