//! The holistic fixed-point iteration: per-resource chain analysis
//! alternating with output event-model propagation along the links.

use crate::error::DistError;
use crate::system::{DistributedSystem, ResourceId, SiteId};
use twca_chains::{deadline_miss_model, AnalysisContext, AnalysisOptions};
use twca_curves::{ActivationModel, EventModel, Time};
use twca_independent::propagate_output_model;
use twca_model::System;

/// Options of the distributed analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistOptions {
    /// Options forwarded to every per-resource chain analysis.
    pub chain_options: AnalysisOptions,
    /// Maximum number of holistic sweeps before reporting
    /// [`DistError::Diverged`].
    pub max_sweeps: usize,
}

impl Default for DistOptions {
    fn default() -> Self {
        DistOptions {
            chain_options: AnalysisOptions::default(),
            max_sweeps: 64,
        }
    }
}

/// Shifts an activation model by `jitter` time units of response-time
/// variability — the propagation primitive of the holistic iteration.
///
/// Periodic and periodic-with-jitter models accumulate jitter; sporadic
/// models get their minimum distance compressed. Model classes without a
/// closed propagation form (burst, table) are abstracted to a sporadic
/// source with the compressed minimum distance, which is pessimistic but
/// sound; [`ActivationModel::never`] passes through unchanged.
///
/// # Examples
///
/// ```
/// use twca_curves::{ActivationModel, EventModel};
/// use twca_dist::jitter_shifted;
///
/// let input = ActivationModel::periodic(200).unwrap();
/// let shifted = jitter_shifted(&input, 150);
/// // Consecutive events can now come 150 closer together...
/// assert_eq!(shifted.delta_min(2), 50);
/// // ...but the long-run rate is unchanged.
/// assert_eq!(shifted.delta_min(11), 10 * 200 - 150);
/// ```
pub fn jitter_shifted(model: &ActivationModel, jitter: Time) -> ActivationModel {
    propagate_with_floor(model, jitter, 1)
}

/// Propagation with an explicit lower bound `floor` on the output's
/// minimum event distance (the consumer-visible completion spacing).
fn propagate_with_floor(model: &ActivationModel, jitter: Time, floor: Time) -> ActivationModel {
    let floor = floor.max(1);
    if let ActivationModel::Never(_) = model {
        return model.clone();
    }
    propagate_output_model(model, floor.saturating_add(jitter), floor).unwrap_or_else(|| {
        // Burst/table inputs: abstract to a sporadic stream with the
        // compressed minimum distance (sound: ≥-dense than reality).
        let distance = model.delta_min(2).saturating_sub(jitter).max(floor).max(1);
        ActivationModel::sporadic(distance).expect("distance >= 1")
    })
}

/// Outcome of [`analyze`]: converged effective systems plus per-site
/// bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct DistResults {
    /// Per-resource systems with propagated activation models applied.
    effective: Vec<System>,
    /// `wcl[resource][chain]`.
    wcl: Vec<Vec<Option<Time>>>,
    sweeps: usize,
    options: DistOptions,
}

impl DistResults {
    /// Number of sweeps until the fixed point (including the confirming
    /// sweep).
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// The effective (post-propagation) system of `resource`.
    pub fn effective_system(&self, resource: ResourceId) -> &System {
        &self.effective[resource.index()]
    }

    /// Worst-case latency bound of `site` under its effective
    /// activation; `None` when the local busy window diverges.
    pub fn worst_case_latency(&self, site: SiteId) -> Option<Time> {
        self.wcl[site.resource().index()][site.chain().index()]
    }

    /// Output response jitter of `site`: the worst-case latency itself
    /// (completions lag activations by anything in `[0, WCL]`); zero
    /// when unbounded — nothing can be propagated from such a site
    /// anyway.
    pub fn response_jitter(&self, site: SiteId) -> Time {
        self.worst_case_latency(site).unwrap_or(0)
    }

    /// The effective activation model of `site` (propagated for linked
    /// sites, declared otherwise).
    pub fn effective_activation(&self, site: SiteId) -> ActivationModel {
        self.effective[site.resource().index()]
            .chain(site.chain())
            .activation()
            .clone()
    }

    /// The local deadline miss model `dmm(k)` of `site` against its own
    /// deadline, evaluated on the effective system.
    ///
    /// # Errors
    ///
    /// [`DistError::MissingDeadline`] without a deadline; analysis
    /// errors are forwarded.
    pub fn deadline_miss_model(&self, site: SiteId, k: u64) -> Result<u64, DistError> {
        self.deadline_miss_model_full(site, k).map(|dmm| dmm.bound)
    }

    /// Like [`DistResults::deadline_miss_model`], but returns the full
    /// [`twca_chains::DmmResult`] (bound, informativeness, packing
    /// diagnostics) instead of just the bound.
    ///
    /// # Errors
    ///
    /// [`DistError::MissingDeadline`] without a deadline; analysis
    /// errors are forwarded.
    pub fn deadline_miss_model_full(
        &self,
        site: SiteId,
        k: u64,
    ) -> Result<twca_chains::DmmResult, DistError> {
        let system = &self.effective[site.resource().index()];
        let ctx = AnalysisContext::new(system);
        match deadline_miss_model(&ctx, site.chain(), k, self.options.chain_options) {
            Ok(dmm) => Ok(dmm),
            Err(twca_chains::AnalysisError::MissingDeadline { .. }) => {
                Err(DistError::MissingDeadline { site })
            }
            Err(e) => Err(DistError::Analysis(e)),
        }
    }
}

/// Computes the completion-spacing floor and response jitter of a
/// producer chain with worst-case latency `wcl`.
fn propagation_parameters(system: &System, chain: twca_model::ChainId, wcl: Time) -> (Time, Time) {
    let chain = system.chain(chain);
    // Completions lag activations by anything in [0, WCL]: the full
    // latency bound is the propagated jitter (sound, and what the
    // benches report as `jitter_out`).
    let jitter = wcl;
    // Completions of consecutive instances are spaced by at least the
    // full chain re-execution (synchronous chains) or the serialized
    // tail task (asynchronous chains, where instances pipeline).
    let spacing = if chain.kind().is_synchronous() {
        chain.total_wcet()
    } else {
        chain.tail_task().wcet()
    };
    // Never raise the output distance above the input distance: that
    // would be sound but breaks downstream monotonicity expectations.
    let floor = spacing.min(chain.activation().delta_min(2).max(1)).max(1);
    (floor, jitter)
}

/// Runs the holistic iteration to its fixed point.
///
/// Each sweep analyzes every resource with [`twca_chains`] under the
/// current effective activation models, then propagates each link
/// source's output event model (input model shifted by its response
/// jitter, floored by its completion spacing) into the destination
/// chain. The iteration converges when no effective model changes.
///
/// # Errors
///
/// * [`DistError::UnboundedLatency`] when a *linked* producer chain has
///   no finite latency bound (nothing sound can be propagated);
/// * [`DistError::Diverged`] when `options.max_sweeps` sweeps do not
///   reach a fixed point (e.g. cyclic resource graphs under load).
pub fn analyze(system: &DistributedSystem, options: DistOptions) -> Result<DistResults, DistError> {
    let mut effective: Vec<System> = system
        .resources()
        .iter()
        .map(|r| r.system().clone())
        .collect();

    for sweep in 1..=options.max_sweeps.max(1) {
        // Per-resource chain analysis under the current models.
        let mut wcl: Vec<Vec<Option<Time>>> = Vec::with_capacity(effective.len());
        for local in &effective {
            let analysis =
                twca_chains::ChainAnalysis::new(local).with_options(options.chain_options);
            let row = local
                .iter()
                .map(|(id, _)| {
                    analysis
                        .try_worst_case_latency(id)
                        .expect("chain ids from the same system")
                        .map(|r| r.worst_case_latency)
                })
                .collect();
            wcl.push(row);
        }

        // Propagate along every link.
        let mut changed = false;
        for link in system.links() {
            let (from, to) = (link.from(), link.to());
            let Some(bound) = wcl[from.resource().index()][from.chain().index()] else {
                return Err(DistError::UnboundedLatency { site: from });
            };
            let source_system = &effective[from.resource().index()];
            let input = source_system.chain(from.chain()).activation().clone();
            let (floor, jitter) = propagation_parameters(source_system, from.chain(), bound);
            let output = propagate_with_floor(&input, jitter, floor);
            let destination = &effective[to.resource().index()];
            if *destination.chain(to.chain()).activation() != output {
                effective[to.resource().index()] = destination.with_activation(to.chain(), output);
                changed = true;
            }
        }

        if !changed {
            return Ok(DistResults {
                effective,
                wcl,
                sweeps: sweep,
                options,
            });
        }
    }
    Err(DistError::Diverged {
        sweeps: options.max_sweeps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::DistributedSystemBuilder;
    use twca_model::{case_study, SystemBuilder};

    #[test]
    fn single_resource_converges_in_one_sweep() {
        let dist = DistributedSystemBuilder::new()
            .resource("ecu0", case_study())
            .build()
            .unwrap();
        let results = analyze(&dist, DistOptions::default()).unwrap();
        assert_eq!(results.sweeps(), 1);
        let c = dist.site("ecu0", "sigma_c").unwrap();
        assert_eq!(results.worst_case_latency(c), Some(331));
        assert_eq!(results.response_jitter(c), 331);
    }

    #[test]
    fn linked_destination_gains_jitter() {
        let downstream = SystemBuilder::new()
            .chain("act")
            .periodic(200)
            .unwrap()
            .deadline(200)
            .task("a1", 1, 20)
            .done()
            .build()
            .unwrap();
        let dist = DistributedSystemBuilder::new()
            .resource("ecu0", case_study())
            .resource("ecu1", downstream)
            .link(("ecu0", "sigma_c"), ("ecu1", "act"))
            .build()
            .unwrap();
        let results = analyze(&dist, DistOptions::default()).unwrap();
        let act = dist.site("ecu1", "act").unwrap();
        let effective = results.effective_activation(act);
        // σc adds WCL = 331 of jitter to the 200-periodic stream;
        // completions stay ≥ ΣC = 51 apart (σc is synchronous).
        assert_eq!(effective.delta_min(2), 51);
        assert!(results.worst_case_latency(act).is_some());
    }

    #[test]
    fn jitter_shift_preserves_long_run_rate() {
        let m = ActivationModel::periodic(100).unwrap();
        let shifted = jitter_shifted(&m, 40);
        for delta in [1_000u64, 10_000] {
            assert!(shifted.eta_plus(delta) >= m.eta_plus(delta));
            assert!(shifted.eta_plus(delta) <= m.eta_plus(delta) + 1);
        }
    }
}
