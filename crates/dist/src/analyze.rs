//! The holistic fixed-point iteration: per-resource chain analysis
//! alternating with output event-model propagation along the links.
//!
//! Two fixed-point drivers share the propagation rules (selected by the
//! busy-window [`twca_chains::SolverMode`] of the chain options): the
//! default **dirty-resource worklist** re-analyzes only resources whose
//! effective activation models changed in the previous propagation,
//! mutates activation updates in place, keeps one memoized analysis
//! cache alive across sweeps (keyed by the effective systems' activation
//! fingerprints), and fans ready resources out across threads; the
//! retained **full-sweep** reference re-analyzes every resource on every
//! sweep. Both produce byte-identical results — effective systems,
//! latency bounds, sweep counts and error behavior (the `twca-verify`
//! `solver-agreement` oracle pins the contract).

use std::collections::HashMap;
use std::sync::Mutex;

use crate::error::DistError;
use crate::system::{DistributedSystem, ResourceId, SiteId};
use twca_chains::{
    deadline_miss_model, AnalysisContext, AnalysisOptions, ChainAnalysis, SolverMode, SystemKey,
};
use twca_curves::{ActivationModel, EventModel, Time};
use twca_independent::propagate_output_model;
use twca_model::System;

/// Options of the distributed analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistOptions {
    /// Options forwarded to every per-resource chain analysis (whose
    /// [`twca_chains::SolverMode`] also selects the holistic driver:
    /// the incremental worklist by default, the full-sweep reference
    /// under [`SolverMode::Iterative`]).
    pub chain_options: AnalysisOptions,
    /// Maximum number of holistic sweeps before reporting
    /// [`DistError::Diverged`]. Must be at least 1 (the fixed point
    /// needs its confirming sweep); [`analyze`] rejects 0 with
    /// [`DistError::ZeroSweeps`].
    pub max_sweeps: usize,
}

impl Default for DistOptions {
    fn default() -> Self {
        DistOptions {
            chain_options: AnalysisOptions::default(),
            max_sweeps: 64,
        }
    }
}

/// Shifts an activation model by `jitter` time units of response-time
/// variability — the propagation primitive of the holistic iteration.
///
/// Periodic and periodic-with-jitter models accumulate jitter; sporadic
/// models get their minimum distance compressed. Model classes without a
/// closed propagation form (burst, table) are abstracted to a sporadic
/// source with the compressed minimum distance, which is pessimistic but
/// sound; [`ActivationModel::never`] passes through unchanged.
///
/// # Examples
///
/// ```
/// use twca_curves::{ActivationModel, EventModel};
/// use twca_dist::jitter_shifted;
///
/// let input = ActivationModel::periodic(200).unwrap();
/// let shifted = jitter_shifted(&input, 150);
/// // Consecutive events can now come 150 closer together...
/// assert_eq!(shifted.delta_min(2), 50);
/// // ...but the long-run rate is unchanged.
/// assert_eq!(shifted.delta_min(11), 10 * 200 - 150);
/// ```
pub fn jitter_shifted(model: &ActivationModel, jitter: Time) -> ActivationModel {
    propagate_with_floor(model, jitter, 1)
}

/// Propagation with an explicit lower bound `floor` on the output's
/// minimum event distance (the consumer-visible completion spacing).
fn propagate_with_floor(model: &ActivationModel, jitter: Time, floor: Time) -> ActivationModel {
    let floor = floor.max(1);
    if let ActivationModel::Never(_) = model {
        return model.clone();
    }
    propagate_output_model(model, floor.saturating_add(jitter), floor).unwrap_or_else(|| {
        // Burst/table inputs: abstract to a sporadic stream with the
        // compressed minimum distance (sound: ≥-dense than reality).
        let distance = model.delta_min(2).saturating_sub(jitter).max(floor).max(1);
        ActivationModel::sporadic(distance).expect("distance >= 1")
    })
}

/// Outcome of [`analyze`]: converged effective systems plus per-site
/// bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct DistResults {
    /// Per-resource systems with propagated activation models applied.
    effective: Vec<System>,
    /// `wcl[resource][chain]`.
    wcl: Vec<Vec<Option<Time>>>,
    sweeps: usize,
    options: DistOptions,
}

impl DistResults {
    /// Number of sweeps until the fixed point (including the confirming
    /// sweep).
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// The effective (post-propagation) system of `resource`.
    pub fn effective_system(&self, resource: ResourceId) -> &System {
        &self.effective[resource.index()]
    }

    /// Worst-case latency bound of `site` under its effective
    /// activation; `None` when the local busy window diverges.
    pub fn worst_case_latency(&self, site: SiteId) -> Option<Time> {
        self.wcl[site.resource().index()][site.chain().index()]
    }

    /// Output response jitter of `site`: the worst-case latency itself
    /// (completions lag activations by anything in `[0, WCL]`); zero
    /// when unbounded — nothing can be propagated from such a site
    /// anyway.
    pub fn response_jitter(&self, site: SiteId) -> Time {
        self.worst_case_latency(site).unwrap_or(0)
    }

    /// The effective activation model of `site` (propagated for linked
    /// sites, declared otherwise).
    pub fn effective_activation(&self, site: SiteId) -> ActivationModel {
        self.effective[site.resource().index()]
            .chain(site.chain())
            .activation()
            .clone()
    }

    /// The local deadline miss model `dmm(k)` of `site` against its own
    /// deadline, evaluated on the effective system.
    ///
    /// # Errors
    ///
    /// [`DistError::MissingDeadline`] without a deadline; analysis
    /// errors are forwarded.
    pub fn deadline_miss_model(&self, site: SiteId, k: u64) -> Result<u64, DistError> {
        self.deadline_miss_model_full(site, k).map(|dmm| dmm.bound)
    }

    /// Like [`DistResults::deadline_miss_model`], but returns the full
    /// [`twca_chains::DmmResult`] (bound, informativeness, packing
    /// diagnostics) instead of just the bound.
    ///
    /// # Errors
    ///
    /// [`DistError::MissingDeadline`] without a deadline; analysis
    /// errors are forwarded.
    pub fn deadline_miss_model_full(
        &self,
        site: SiteId,
        k: u64,
    ) -> Result<twca_chains::DmmResult, DistError> {
        let system = &self.effective[site.resource().index()];
        let ctx = AnalysisContext::new(system);
        match deadline_miss_model(&ctx, site.chain(), k, self.options.chain_options) {
            Ok(dmm) => Ok(dmm),
            Err(twca_chains::AnalysisError::MissingDeadline { .. }) => {
                Err(DistError::MissingDeadline { site })
            }
            Err(e) => Err(DistError::Analysis(e)),
        }
    }
}

/// Computes the completion-spacing floor and response jitter of a
/// producer chain with worst-case latency `wcl`.
fn propagation_parameters(system: &System, chain: twca_model::ChainId, wcl: Time) -> (Time, Time) {
    let chain = system.chain(chain);
    // Completions lag activations by anything in [0, WCL]: the full
    // latency bound is the propagated jitter (sound, and what the
    // benches report as `jitter_out`).
    let jitter = wcl;
    // Completions of consecutive instances are spaced by at least the
    // full chain re-execution (synchronous chains) or the serialized
    // tail task (asynchronous chains, where instances pipeline).
    let spacing = if chain.kind().is_synchronous() {
        chain.total_wcet()
    } else {
        chain.tail_task().wcet()
    };
    // Never raise the output distance above the input distance: that
    // would be sound but breaks downstream monotonicity expectations.
    let floor = spacing.min(chain.activation().delta_min(2).max(1)).max(1);
    (floor, jitter)
}

/// Runs the holistic iteration to its fixed point.
///
/// Each sweep analyzes the resources whose effective activation models
/// may have changed with [`twca_chains`] under the current models, then
/// propagates each link source's output event model (input model
/// shifted by its response jitter, floored by its completion spacing)
/// into the destination chain. The iteration converges when no
/// effective model changes. Under the default scheduling-point solver
/// only *dirty* resources are re-analyzed (see the module docs); under
/// [`SolverMode::Iterative`] every resource is re-analyzed every sweep.
/// Results are identical either way.
///
/// # Errors
///
/// * [`DistError::ZeroSweeps`] when `options.max_sweeps` is zero;
/// * [`DistError::UnboundedLatency`] when a *linked* producer chain has
///   no finite latency bound (nothing sound can be propagated) — the
///   error carries the typed [`twca_chains::LatencyFailure`] naming
///   which limit was hit;
/// * [`DistError::Diverged`] when `options.max_sweeps` sweeps do not
///   reach a fixed point (e.g. heavily loaded feedback through long
///   chains); `sweeps` reports the sweeps actually run.
pub fn analyze(system: &DistributedSystem, options: DistOptions) -> Result<DistResults, DistError> {
    if options.max_sweeps == 0 {
        return Err(DistError::ZeroSweeps);
    }
    match options.chain_options.solver {
        SolverMode::SchedulingPoints => {
            let mut rows = HashMap::new();
            worklist_pass(system, options, &mut rows).map(|(results, _)| results)
        }
        SolverMode::Iterative => analyze_full_sweeps(system, options),
    }
}

/// Upper bound on retained memo rows before a [`HolisticMemo`] resets
/// itself: rows of superseded versions linger until then, bounding the
/// memory of a long edit sequence without any per-row bookkeeping.
const MEMO_MAX_ROWS: usize = 4_096;

/// A persistent per-resource latency-row memo for **delta re-analysis**:
/// keep one `HolisticMemo` alive across [`analyze_with_memo`] calls on
/// successive versions of a system, and only the resources whose
/// effective activation state actually differs from anything previously
/// analyzed are re-converged — everything untouched by an edit is
/// answered from the memo, bit-identically (each row is keyed by the
/// effective system's [`twca_chains::SystemKey`], fingerprint plus
/// collision guard, and is a pure function of that system).
///
/// The memo self-invalidates when the [`DistOptions`] change and resets
/// after `MEMO_MAX_ROWS` retained rows. Interior mutability: one memo
/// can be shared behind an `Arc`, with calls on the same memo
/// serialized by its lock.
#[derive(Debug, Default)]
pub struct HolisticMemo {
    inner: Mutex<MemoInner>,
}

#[derive(Debug, Default, Clone)]
struct MemoInner {
    /// Options the retained rows were computed under; a call with
    /// different options resets the memo (rows depend on them).
    options: Option<DistOptions>,
    rows: HashMap<SystemKey, WclRow>,
}

impl Clone for HolisticMemo {
    fn clone(&self) -> Self {
        HolisticMemo {
            inner: Mutex::new(self.inner.lock().expect("holistic memo poisoned").clone()),
        }
    }
}

impl HolisticMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of retained latency rows.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("holistic memo poisoned")
            .rows
            .len()
    }

    /// Whether no rows are retained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every retained row (the next analysis runs cold).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("holistic memo poisoned");
        inner.rows.clear();
        inner.options = None;
    }
}

/// Delta telemetry of one [`analyze_with_memo`] run: how much work the
/// memo saved. Kept out of [`DistResults`] so memoized and from-scratch
/// results stay `==`-comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaReport {
    /// Resource latency rows actually (re-)converged this run.
    pub rows_analyzed: usize,
    /// Dirty lookups answered from the persistent memo.
    pub memo_hits: usize,
}

/// Like [`analyze`], but keeping `memo` warm across calls so a small
/// edit costs a small re-analysis: after a one-task change, only the
/// edited resource and the resources its propagation actually reaches
/// are re-converged. Results are bit-identical to a from-scratch
/// [`analyze`] of the same system (the `delta-agreement` verify oracle
/// pins this).
///
/// Under [`SolverMode::Iterative`] (the full-sweep reference driver)
/// the memo is bypassed and every resource is analyzed every sweep.
///
/// # Errors
///
/// Exactly those of [`analyze`].
pub fn analyze_with_memo(
    system: &DistributedSystem,
    options: DistOptions,
    memo: &HolisticMemo,
) -> Result<(DistResults, DeltaReport), DistError> {
    if options.max_sweeps == 0 {
        return Err(DistError::ZeroSweeps);
    }
    if options.chain_options.solver == SolverMode::Iterative {
        let results = analyze_full_sweeps(system, options)?;
        let report = DeltaReport {
            rows_analyzed: system.resources().len() * results.sweeps(),
            memo_hits: 0,
        };
        return Ok((results, report));
    }
    let mut inner = memo.inner.lock().expect("holistic memo poisoned");
    if inner.options != Some(options) || inner.rows.len() > MEMO_MAX_ROWS {
        inner.rows.clear();
        inner.options = Some(options);
    }
    let MemoInner { rows, .. } = &mut *inner;
    worklist_pass(system, options, rows)
}

/// One per-chain worst-case latency row, with the typed divergence
/// reason of any diverging chain (consumed only if that chain turns out
/// to be a link source).
type WclRow = Vec<Result<Time, twca_chains::LatencyFailure>>;

/// Analyzes one effective resource system into its latency row.
fn wcl_row(local: &System, options: AnalysisOptions) -> WclRow {
    let analysis = ChainAnalysis::new(local).with_options(options);
    local
        .iter()
        .map(|(id, _)| {
            twca_chains::latency_analysis_detailed(
                analysis.context(),
                id,
                twca_chains::OverloadMode::Include,
                options,
            )
            .map(|r| r.worst_case_latency)
        })
        .collect()
}

/// How many dirty resources justify spawning worker threads: below
/// this, thread setup costs more than the analyses.
const PARALLEL_THRESHOLD: usize = 4;

/// Analyzes the dirty resources, fanning out across threads when the
/// ready set is wide (star/tree topologies). Results are ordered by
/// resource index and bit-identical to the serial path — each row is a
/// pure function of its effective system.
fn analyze_dirty(
    effective: &[System],
    dirty: &[usize],
    options: AnalysisOptions,
) -> Vec<(usize, WclRow)> {
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(dirty.len());
    if workers <= 1 || dirty.len() < PARALLEL_THRESHOLD {
        return dirty
            .iter()
            .map(|&i| (i, wcl_row(&effective[i], options)))
            .collect();
    }
    let chunk = dirty.len().div_ceil(workers);
    let mut rows = Vec::with_capacity(dirty.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = dirty
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    part.iter()
                        .map(|&i| (i, wcl_row(&effective[i], options)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            rows.extend(handle.join().expect("worklist worker panicked"));
        }
    });
    rows
}

/// The incremental driver: a dirty-resource worklist over the link
/// graph. A resource is dirty when its effective activation models
/// changed in the previous propagation (all resources start dirty);
/// only dirty resources are re-analyzed — the expensive half of a
/// sweep. Propagation still walks every link with the stored latency
/// rows (cheap model arithmetic), which keeps the intra-sweep cascade
/// semantics of the reference driver exactly: a link whose inputs did
/// not change since its last evaluation reproduces its output
/// bit-for-bit, so skipping its *source analysis* is safe while
/// skipping its *evaluation* would not be (an earlier link in the same
/// sweep may just have rewritten the source's input model). The row
/// memo keyed by the effective systems' [`twca_chains::SystemKey`]s
/// (fingerprint plus collision guard, covering the activation models)
/// survives the whole iteration — and, through
/// [`analyze_with_memo`], across successive versions of the system —
/// so a resource whose models revisit an earlier state, identical
/// resources anywhere in the topology, and resources untouched by an
/// edit are all answered from the memo instead of re-converging.
fn worklist_pass(
    system: &DistributedSystem,
    options: DistOptions,
    row_memo: &mut HashMap<SystemKey, WclRow>,
) -> Result<(DistResults, DeltaReport), DistError> {
    let mut effective: Vec<System> = system
        .resources()
        .iter()
        .map(|r| r.system().clone())
        .collect();
    let n = effective.len();
    let mut wcl: Vec<WclRow> = vec![Vec::new(); n];
    let mut dirty: Vec<bool> = vec![true; n];
    let mut report = DeltaReport::default();

    for sweep in 1..=options.max_sweeps {
        // Re-analyze exactly the resources whose models changed, and of
        // those only one representative per activation fingerprint not
        // already memoized (the row is a pure function of the system).
        let keys: Vec<(usize, SystemKey)> = (0..n)
            .filter(|&i| dirty[i])
            .map(|i| (i, SystemKey::of(&effective[i])))
            .collect();
        let mut to_analyze: Vec<(usize, SystemKey)> = Vec::with_capacity(keys.len());
        for &(i, key) in &keys {
            if !row_memo.contains_key(&key) && to_analyze.iter().all(|&(_, k)| k != key) {
                to_analyze.push((i, key));
            }
        }
        report.rows_analyzed += to_analyze.len();
        report.memo_hits += keys.len() - to_analyze.len();
        let misses: Vec<usize> = to_analyze.iter().map(|&(i, _)| i).collect();
        let rows = analyze_dirty(&effective, &misses, options.chain_options);
        debug_assert_eq!(rows.len(), to_analyze.len());
        for ((i, row), &(j, key)) in rows.into_iter().zip(&to_analyze) {
            debug_assert_eq!(i, j);
            let _ = i;
            row_memo.insert(key, row);
        }
        for (i, key) in keys {
            wcl[i] = row_memo
                .get(&key)
                .expect("every dirty fingerprint was analyzed or memoized")
                .clone();
        }

        // Propagate along *every* link, exactly like the reference
        // driver — including its mid-loop cascade, where a link reads a
        // source model an earlier link of the same sweep just rewrote.
        // Only the analyses above are skipped for clean resources;
        // their stored rows equal what a re-analysis would compute.
        dirty = vec![false; n];
        let mut changed = false;
        for link in system.links() {
            let (from, to) = (link.from(), link.to());
            let bound = match wcl[from.resource().index()][from.chain().index()] {
                Ok(bound) => bound,
                Err(reason) => {
                    return Err(DistError::UnboundedLatency {
                        site: from,
                        reason: Some(reason),
                    });
                }
            };
            let source_system = &effective[from.resource().index()];
            let input = source_system.chain(from.chain()).activation().clone();
            let (floor, jitter) = propagation_parameters(source_system, from.chain(), bound);
            let output = propagate_with_floor(&input, jitter, floor);
            let destination = &effective[to.resource().index()];
            if *destination.chain(to.chain()).activation() != output {
                effective[to.resource().index()].set_activation(to.chain(), output);
                dirty[to.resource().index()] = true;
                changed = true;
            }
        }

        if !changed {
            let results = DistResults {
                effective,
                wcl: wcl
                    .into_iter()
                    .map(|row| row.into_iter().map(Result::ok).collect())
                    .collect(),
                sweeps: sweep,
                options,
            };
            return Ok((results, report));
        }
    }
    Err(DistError::Diverged {
        sweeps: options.max_sweeps,
    })
}

/// The full-sweep reference driver: every resource re-analyzed on every
/// sweep, whole systems re-cloned per propagated link — retained for
/// differential testing against the worklist.
fn analyze_full_sweeps(
    system: &DistributedSystem,
    options: DistOptions,
) -> Result<DistResults, DistError> {
    let mut effective: Vec<System> = system
        .resources()
        .iter()
        .map(|r| r.system().clone())
        .collect();

    for sweep in 1..=options.max_sweeps {
        // Per-resource chain analysis under the current models.
        let wcl: Vec<Vec<Result<Time, twca_chains::LatencyFailure>>> = effective
            .iter()
            .map(|local| wcl_row(local, options.chain_options))
            .collect();

        // Propagate along every link.
        let mut changed = false;
        for link in system.links() {
            let (from, to) = (link.from(), link.to());
            let bound = match wcl[from.resource().index()][from.chain().index()] {
                Ok(bound) => bound,
                Err(reason) => {
                    return Err(DistError::UnboundedLatency {
                        site: from,
                        reason: Some(reason),
                    });
                }
            };
            let source_system = &effective[from.resource().index()];
            let input = source_system.chain(from.chain()).activation().clone();
            let (floor, jitter) = propagation_parameters(source_system, from.chain(), bound);
            let output = propagate_with_floor(&input, jitter, floor);
            let destination = &effective[to.resource().index()];
            if *destination.chain(to.chain()).activation() != output {
                effective[to.resource().index()] = destination.with_activation(to.chain(), output);
                changed = true;
            }
        }

        if !changed {
            return Ok(DistResults {
                effective,
                wcl: wcl
                    .into_iter()
                    .map(|row| row.into_iter().map(Result::ok).collect())
                    .collect(),
                sweeps: sweep,
                options,
            });
        }
    }
    Err(DistError::Diverged {
        sweeps: options.max_sweeps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::DistributedSystemBuilder;
    use twca_model::{case_study, SystemBuilder};

    #[test]
    fn single_resource_converges_in_one_sweep() {
        let dist = DistributedSystemBuilder::new()
            .resource("ecu0", case_study())
            .build()
            .unwrap();
        let results = analyze(&dist, DistOptions::default()).unwrap();
        assert_eq!(results.sweeps(), 1);
        let c = dist.site("ecu0", "sigma_c").unwrap();
        assert_eq!(results.worst_case_latency(c), Some(331));
        assert_eq!(results.response_jitter(c), 331);
    }

    #[test]
    fn linked_destination_gains_jitter() {
        let downstream = SystemBuilder::new()
            .chain("act")
            .periodic(200)
            .unwrap()
            .deadline(200)
            .task("a1", 1, 20)
            .done()
            .build()
            .unwrap();
        let dist = DistributedSystemBuilder::new()
            .resource("ecu0", case_study())
            .resource("ecu1", downstream)
            .link(("ecu0", "sigma_c"), ("ecu1", "act"))
            .build()
            .unwrap();
        let results = analyze(&dist, DistOptions::default()).unwrap();
        let act = dist.site("ecu1", "act").unwrap();
        let effective = results.effective_activation(act);
        // σc adds WCL = 331 of jitter to the 200-periodic stream;
        // completions stay ≥ ΣC = 51 apart (σc is synchronous).
        assert_eq!(effective.delta_min(2), 51);
        assert!(results.worst_case_latency(act).is_some());
    }

    #[test]
    fn jitter_shift_preserves_long_run_rate() {
        let m = ActivationModel::periodic(100).unwrap();
        let shifted = jitter_shifted(&m, 40);
        for delta in [1_000u64, 10_000] {
            assert!(shifted.eta_plus(delta) >= m.eta_plus(delta));
            assert!(shifted.eta_plus(delta) <= m.eta_plus(delta) + 1);
        }
    }

    #[test]
    fn zero_sweeps_is_a_typed_error() {
        let dist = DistributedSystemBuilder::new()
            .resource("ecu0", case_study())
            .build()
            .unwrap();
        let options = DistOptions {
            max_sweeps: 0,
            ..DistOptions::default()
        };
        assert_eq!(analyze(&dist, options).unwrap_err(), DistError::ZeroSweeps);
        // Both drivers reject at the boundary.
        let mut iterative = options;
        iterative.chain_options.solver = twca_chains::SolverMode::Iterative;
        assert_eq!(
            analyze(&dist, iterative).unwrap_err(),
            DistError::ZeroSweeps
        );
    }

    #[test]
    fn diverged_reports_the_sweeps_actually_run() {
        // A two-resource ping-pong through jitter accumulation that
        // cannot settle in one sweep: capping max_sweeps at 1 must
        // report exactly 1 sweep run.
        let downstream = SystemBuilder::new()
            .chain("act")
            .periodic(200)
            .unwrap()
            .deadline(200)
            .task("a1", 1, 20)
            .done()
            .build()
            .unwrap();
        let dist = DistributedSystemBuilder::new()
            .resource("ecu0", case_study())
            .resource("ecu1", downstream)
            .link(("ecu0", "sigma_c"), ("ecu1", "act"))
            .build()
            .unwrap();
        let options = DistOptions {
            max_sweeps: 1,
            ..DistOptions::default()
        };
        assert_eq!(
            analyze(&dist, options).unwrap_err(),
            DistError::Diverged { sweeps: 1 }
        );
    }

    /// The worklist and the full-sweep reference must agree on
    /// everything observable: sweeps, latencies, effective activations.
    #[test]
    fn worklist_matches_full_sweeps_on_a_pipeline() {
        let mk = |period: u64| {
            SystemBuilder::new()
                .chain("stage")
                .periodic(period)
                .unwrap()
                .deadline(period)
                .task("hi", 5, 10)
                .task("lo", 1, 15)
                .done()
                .chain("noise")
                .periodic(70)
                .unwrap()
                .task("n1", 3, 9)
                .done()
                .build()
                .unwrap()
        };
        let mut builder = DistributedSystemBuilder::new();
        for (i, period) in [200u64, 210, 220, 230, 240].iter().enumerate() {
            builder = builder.resource(format!("r{i}"), mk(*period));
        }
        for i in 0..4 {
            builder = builder.link(
                (format!("r{i}"), "stage".to_owned()),
                (format!("r{}", i + 1), "stage".to_owned()),
            );
        }
        let dist = builder.build().unwrap();

        let worklist = analyze(&dist, DistOptions::default()).unwrap();
        let mut iterative_options = DistOptions::default();
        iterative_options.chain_options.solver = twca_chains::SolverMode::Iterative;
        let reference = analyze(&dist, iterative_options).unwrap();

        assert_eq!(worklist.sweeps(), reference.sweeps());
        assert!(worklist.sweeps() > 1, "propagation must actually happen");
        for site in dist.sites() {
            assert_eq!(
                worklist.worst_case_latency(site),
                reference.worst_case_latency(site),
                "site {site}"
            );
            assert_eq!(
                worklist.effective_activation(site),
                reference.effective_activation(site),
                "site {site}"
            );
        }
        for r in 0..dist.resources().len() {
            assert_eq!(
                worklist.effective_system(crate::system::ResourceId::from_index(r)),
                reference.effective_system(crate::system::ResourceId::from_index(r)),
            );
        }
    }

    /// Builds an n-stage pipeline whose `edited` stage (if any) carries
    /// a bumped WCET — the delta-re-analysis workload shape.
    fn pipeline(stages: usize, edited: Option<usize>) -> DistributedSystem {
        let mut builder = DistributedSystemBuilder::new();
        for i in 0..stages {
            let wcet = 10 + u64::from(edited == Some(i));
            let stage = SystemBuilder::new()
                .chain("stage")
                .periodic(200 + 10 * i as u64)
                .unwrap()
                .deadline(400)
                .task("hi", 5, wcet)
                .task("lo", 1, 15)
                .done()
                .build()
                .unwrap();
            builder = builder.resource(format!("r{i}"), stage);
        }
        for i in 0..stages.saturating_sub(1) {
            builder = builder.link(
                (format!("r{i}"), "stage".to_owned()),
                (format!("r{}", i + 1), "stage".to_owned()),
            );
        }
        builder.build().unwrap()
    }

    /// A warm memo must make re-analysis after a one-task edit cost
    /// O(affected resources) — and still agree bit-for-bit with a
    /// from-scratch run of the edited system.
    #[test]
    fn memoized_reanalysis_is_incremental_and_bit_identical() {
        let stages = 12;
        let memo = HolisticMemo::new();
        let options = DistOptions::default();

        let v1 = pipeline(stages, None);
        let (cold, cold_report) = analyze_with_memo(&v1, options, &memo).unwrap();
        assert_eq!(cold, analyze(&v1, options).unwrap());
        assert!(cold_report.rows_analyzed >= stages, "cold run analyzes all");

        // Edit the last stage: nothing downstream of it exists, so the
        // warm run should re-converge only that one resource.
        let v2 = pipeline(stages, Some(stages - 1));
        let (warm, warm_report) = analyze_with_memo(&v2, options, &memo).unwrap();
        assert_eq!(warm, analyze(&v2, options).unwrap());
        // Only the edited resource re-converges (once per effective
        // state it passes through); the other 11 stages hit the memo.
        assert!(
            warm_report.rows_analyzed <= warm.sweeps(),
            "a tail-stage edit re-analyzed {} rows over {} sweeps",
            warm_report.rows_analyzed,
            warm.sweeps()
        );
        assert!(warm_report.rows_analyzed < cold_report.rows_analyzed / 4);
        assert!(warm_report.memo_hits >= stages - 1);

        // Re-running the same version is answered entirely from memo.
        let (again, again_report) = analyze_with_memo(&v2, options, &memo).unwrap();
        assert_eq!(again, warm);
        assert_eq!(again_report.rows_analyzed, 0);
    }

    /// Changing the options invalidates the memo (rows depend on them).
    #[test]
    fn memo_resets_when_options_change() {
        let memo = HolisticMemo::new();
        let dist = pipeline(3, None);
        let options = DistOptions::default();
        let _ = analyze_with_memo(&dist, options, &memo).unwrap();
        assert!(!memo.is_empty());
        let mut tighter = options;
        tighter.chain_options.max_q = options.chain_options.max_q / 2;
        let (_, report) = analyze_with_memo(&dist, tighter, &memo).unwrap();
        assert!(report.rows_analyzed > 0, "stale rows must not be reused");
        memo.clear();
        assert!(memo.is_empty());
    }

    /// The iterative reference driver bypasses the memo but reports
    /// honest telemetry.
    #[test]
    fn iterative_driver_bypasses_the_memo() {
        let memo = HolisticMemo::new();
        let dist = pipeline(3, None);
        let mut options = DistOptions::default();
        options.chain_options.solver = twca_chains::SolverMode::Iterative;
        let (results, report) = analyze_with_memo(&dist, options, &memo).unwrap();
        assert_eq!(results, analyze(&dist, options).unwrap());
        assert_eq!(report.memo_hits, 0);
        assert_eq!(report.rows_analyzed, 3 * results.sweeps());
        assert!(memo.is_empty(), "the reference driver must not populate it");
    }
}
