//! Random priority assignments (Experiment 2 of the paper).

use rand::seq::SliceRandom;
use rand::Rng;

use twca_model::Priority;

/// Draws a uniformly random assignment of the distinct priorities
/// `1..=n` to `n` tasks (a random permutation).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use twca_gen::random_priority_permutation;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let p = random_priority_permutation(&mut rng, 13);
/// let mut levels: Vec<u32> = p.iter().map(|p| p.level()).collect();
/// levels.sort_unstable();
/// assert_eq!(levels, (1..=13).collect::<Vec<_>>());
/// ```
pub fn random_priority_permutation(rng: &mut impl Rng, n: usize) -> Vec<Priority> {
    let mut levels: Vec<u32> = (1..=n as u32).collect();
    levels.shuffle(rng);
    levels.into_iter().map(Priority::new).collect()
}

/// Produces `count` independent random priority permutations.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use twca_gen::priority_permutations;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(7);
/// let all = priority_permutations(&mut rng, 13, 1000);
/// assert_eq!(all.len(), 1000);
/// ```
pub fn priority_permutations(rng: &mut impl Rng, n: usize, count: usize) -> Vec<Vec<Priority>> {
    (0..count)
        .map(|_| random_priority_permutation(rng, n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn permutation_covers_all_levels() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for n in [1usize, 2, 5, 13, 40] {
            let p = random_priority_permutation(&mut rng, n);
            assert_eq!(p.len(), n);
            let mut levels: Vec<u32> = p.iter().map(|p| p.level()).collect();
            levels.sort_unstable();
            assert_eq!(levels, (1..=n as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn seeded_generation_is_reproducible() {
        let a = priority_permutations(&mut ChaCha8Rng::seed_from_u64(9), 13, 10);
        let b = priority_permutations(&mut ChaCha8Rng::seed_from_u64(9), 13, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn different_draws_differ() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let all = priority_permutations(&mut rng, 13, 50);
        let distinct: std::collections::HashSet<_> = all.iter().collect();
        assert!(distinct.len() > 40, "50 draws of 13! permutations collide?");
    }
}
