//! Synthetic workload generation for TWCA experiments.
//!
//! Experiment 2 of the paper evaluates the analysis over **1000 random
//! priority assignments** of the industrial case study; this crate
//! provides the reproducible generators for that experiment and for
//! broader synthetic studies:
//!
//! * [`random_priority_permutation`] / [`priority_permutations`] — uniform
//!   random priority assignments (distinct priorities, as in Figure 4);
//! * [`uunifast`] — the UUniFast utilization-splitting algorithm;
//! * [`RandomSystemConfig`] / [`random_system`] — random chain systems
//!   with controlled utilization, chain lengths and overload sources;
//! * [`RandomPipelineConfig`] / [`random_pipeline`] — random
//!   multi-resource pipelines for the distributed extension
//!   ([`twca_dist`]).
//!
//! All generators take explicit RNGs; seed a
//! `rand_chacha::ChaCha8Rng` for reproducible experiments.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//! use twca_gen::random_priority_permutation;
//! use twca_model::{case_study, CASE_STUDY_TASK_COUNT};
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(42);
//! let priorities = random_priority_permutation(&mut rng, CASE_STUDY_TASK_COUNT);
//! let randomized = case_study().with_priorities(&priorities);
//! assert_eq!(randomized.task_count(), CASE_STUDY_TASK_COUNT);
//! ```

mod dist;
mod priorities;
mod stress;
mod systems;
mod threads;
mod unifast;

pub use dist::{
    random_distributed, random_pipeline, DistTopology, RandomDistConfig, RandomPipelineConfig,
};
pub use priorities::{priority_permutations, random_priority_permutation};
pub use stress::{random_stress_system, StressProfile};
pub use systems::{random_system, wide_throughput_system, RandomSystemConfig};
pub use threads::{communicating_threads_system, ThreadSystemConfig};
pub use unifast::uunifast;
