//! Named stress profiles: reproducible generator presets that push the
//! analysis into its corner cases.
//!
//! The default [`crate::random_system`] configuration approximates the
//! paper's case study; the conformance fuzzer (`twca-verify`) and
//! `twca batch --gen --profile` need scenarios far outside that comfort
//! zone — saturated processors, degenerate single-task chains with tight
//! deadlines, bursty and jittery activation, overload-dominated load.
//! Each [`StressProfile`] names one such shape.

use rand::Rng;

use crate::systems::{random_system, RandomSystemConfig};
use twca_curves::{ActivationModel, Burst, EventModel as _, PeriodicJitter};
use twca_model::{ModelError, System};

/// A named generator preset for stress scenarios.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use twca_gen::{random_stress_system, StressProfile};
///
/// let profile: StressProfile = "high-util".parse().unwrap();
/// let mut rng = ChaCha8Rng::seed_from_u64(11);
/// let system = random_stress_system(&mut rng, profile).unwrap();
/// assert!(system.chains().len() >= 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StressProfile {
    /// The default generator shape (case-study-like).
    Baseline,
    /// Near-saturated regular load plus heavy overload.
    HighUtilization,
    /// Many single-task chains with tiny periods and tightened
    /// (sub-period) deadlines.
    Degenerate,
    /// Regular chains driven by burst and periodic-with-jitter
    /// activation models.
    Bursty,
    /// Overload-dominated systems: rare-event chains carry most of the
    /// load and may arrive as often as regular chains.
    OverloadHeavy,
}

impl StressProfile {
    /// Every uniprocessor profile, in a stable order.
    pub const ALL: [StressProfile; 5] = [
        StressProfile::Baseline,
        StressProfile::HighUtilization,
        StressProfile::Degenerate,
        StressProfile::Bursty,
        StressProfile::OverloadHeavy,
    ];

    /// The stable command-line name of this profile.
    pub fn name(self) -> &'static str {
        match self {
            StressProfile::Baseline => "baseline",
            StressProfile::HighUtilization => "high-util",
            StressProfile::Degenerate => "degenerate",
            StressProfile::Bursty => "bursty",
            StressProfile::OverloadHeavy => "overload-heavy",
        }
    }

    /// The generator configuration backing this profile.
    pub fn config(self) -> RandomSystemConfig {
        match self {
            StressProfile::Baseline => RandomSystemConfig::default(),
            StressProfile::HighUtilization => RandomSystemConfig {
                regular_chains: 3,
                overload_chains: 2,
                regular_utilization: 0.92,
                overload_utilization: 0.3,
                ..RandomSystemConfig::default()
            },
            StressProfile::Degenerate => RandomSystemConfig {
                regular_chains: 4,
                overload_chains: 1,
                tasks_per_chain: (1, 1),
                period_range: (2, 12),
                overload_rarity: 1,
                regular_utilization: 0.7,
                overload_utilization: 0.2,
            },
            StressProfile::Bursty => RandomSystemConfig {
                regular_chains: 3,
                overload_chains: 1,
                ..RandomSystemConfig::default()
            },
            StressProfile::OverloadHeavy => RandomSystemConfig {
                regular_chains: 1,
                overload_chains: 4,
                overload_rarity: 1,
                regular_utilization: 0.3,
                overload_utilization: 0.5,
                ..RandomSystemConfig::default()
            },
        }
    }
}

impl std::str::FromStr for StressProfile {
    type Err = String;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        StressProfile::ALL
            .into_iter()
            .find(|p| p.name() == text)
            .ok_or_else(|| {
                let names: Vec<&str> = StressProfile::ALL.iter().map(|p| p.name()).collect();
                format!(
                    "unknown profile `{text}` (expected one of: {})",
                    names.join(", ")
                )
            })
    }
}

impl std::fmt::Display for StressProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generates a random system shaped by `profile`.
///
/// On top of the profile's [`RandomSystemConfig`], two profiles
/// post-process the generated system:
///
/// * [`StressProfile::Bursty`] rewrites regular-chain activations into
///   [`Burst`] or [`PeriodicJitter`] models (randomly per chain);
/// * [`StressProfile::Degenerate`] tightens roughly half the deadlines
///   to half the activation period, producing chains that miss even
///   without overload (the trivial-bound corner of the miss model).
///
/// # Errors
///
/// Propagates [`ModelError`] from system validation (not expected for
/// the built-in profiles).
pub fn random_stress_system(
    rng: &mut impl Rng,
    profile: StressProfile,
) -> Result<System, ModelError> {
    let mut system = random_system(rng, &profile.config())?;
    match profile {
        StressProfile::Bursty => {
            let regulars: Vec<_> = system.regular_chains().collect();
            for id in regulars {
                let period = system.chain(id).activation().delta_min(2).max(4);
                let model = if rng.gen_bool(0.5) {
                    let size = rng.gen_range(2..=4u64);
                    let inner = (period / 4).max(1);
                    ActivationModel::Burst(
                        Burst::new(period * size, size, inner).expect("burst fits its period"),
                    )
                } else {
                    let jitter = rng.gen_range(1..=period);
                    ActivationModel::PeriodicJitter(
                        PeriodicJitter::new(period, jitter, (period / 8).max(1))
                            .expect("period and distance are positive"),
                    )
                };
                system = system.with_activation(id, model);
            }
        }
        StressProfile::Degenerate => {
            let regulars: Vec<_> = system.regular_chains().collect();
            for id in regulars {
                if rng.gen_bool(0.5) {
                    let period = system.chain(id).activation().delta_min(2);
                    system = system.with_deadline(id, Some((period / 2).max(1)));
                }
            }
        }
        _ => {}
    }
    Ok(system)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn profile_names_round_trip() {
        for profile in StressProfile::ALL {
            assert_eq!(profile.name().parse::<StressProfile>(), Ok(profile));
        }
        assert!("bogus".parse::<StressProfile>().is_err());
    }

    #[test]
    fn every_profile_generates_valid_systems() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for profile in StressProfile::ALL {
            for _ in 0..10 {
                let system = random_stress_system(&mut rng, profile).unwrap();
                assert!(!system.chains().is_empty(), "{profile}");
                for (_, chain) in system.iter() {
                    assert!(!chain.is_empty());
                }
            }
        }
    }

    #[test]
    fn bursty_profile_uses_burst_or_jitter_models() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut saw_special = false;
        for _ in 0..5 {
            let system = random_stress_system(&mut rng, StressProfile::Bursty).unwrap();
            for id in system.regular_chains() {
                saw_special |= matches!(
                    system.chain(id).activation(),
                    ActivationModel::Burst(_) | ActivationModel::PeriodicJitter(_)
                );
            }
        }
        assert!(saw_special, "bursty systems must rewrite activations");
    }

    #[test]
    fn degenerate_profile_tightens_some_deadlines() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut saw_tight = false;
        for _ in 0..10 {
            let system = random_stress_system(&mut rng, StressProfile::Degenerate).unwrap();
            for id in system.regular_chains() {
                let chain = system.chain(id);
                let period = chain.activation().delta_min(2);
                if chain.deadline().is_some_and(|d| d < period) {
                    saw_tight = true;
                }
            }
        }
        assert!(saw_tight, "degenerate systems must tighten deadlines");
    }

    #[test]
    fn stress_generation_is_reproducible() {
        for profile in StressProfile::ALL {
            let a = random_stress_system(&mut ChaCha8Rng::seed_from_u64(42), profile).unwrap();
            let b = random_stress_system(&mut ChaCha8Rng::seed_from_u64(42), profile).unwrap();
            assert_eq!(a, b, "{profile}");
        }
    }
}
