//! Random distributed-system generation: linear pipelines plus the
//! star and tree topologies the conformance fuzzer exercises.

use rand::Rng;

use crate::stress::{random_stress_system, StressProfile};
use crate::systems::{random_system, RandomSystemConfig};
use twca_dist::{DistError, DistributedSystem, DistributedSystemBuilder};
use twca_model::System;

/// Configuration for [`random_pipeline`].
///
/// Defaults produce small sense→process→act style pipelines: every
/// resource carries its own random local load, and one regular chain per
/// resource is wired to the next resource.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomPipelineConfig {
    /// Number of resources in the pipeline (≥ 1).
    pub resources: usize,
    /// Shape of each resource's local system.
    pub resource: RandomSystemConfig,
}

impl Default for RandomPipelineConfig {
    fn default() -> Self {
        RandomPipelineConfig {
            resources: 3,
            resource: RandomSystemConfig {
                regular_chains: 2,
                overload_chains: 1,
                tasks_per_chain: (1, 3),
                period_range: (100, 400),
                regular_utilization: 0.5,
                overload_utilization: 0.05,
                ..RandomSystemConfig::default()
            },
        }
    }
}

/// Generates a random linear pipeline of resources.
///
/// Each resource is an independent [`random_system`]; the first regular
/// chain of resource `i` feeds the first regular chain of resource
/// `i + 1` (whose declared activation model then acts as a placeholder
/// replaced by event-model propagation).
///
/// # Errors
///
/// Propagates [`DistError`] from validation and the model errors of
/// [`random_system`] (rendered into `DistError::DuplicateResource` never
/// occurs — resources are named `r0`, `r1`, …).
///
/// # Panics
///
/// Panics if `config.resources == 0` or a resource configuration has no
/// regular chains (there would be nothing to link).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use twca_gen::{random_pipeline, RandomPipelineConfig};
///
/// # fn main() -> Result<(), twca_dist::DistError> {
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let dist = random_pipeline(&mut rng, &RandomPipelineConfig::default())?;
/// assert_eq!(dist.resources().len(), 3);
/// assert_eq!(dist.links().len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn random_pipeline(
    rng: &mut impl Rng,
    config: &RandomPipelineConfig,
) -> Result<DistributedSystem, DistError> {
    let systems: Vec<System> = (0..config.resources)
        .map(|_| random_system(rng, &config.resource).expect("valid configuration"))
        .collect();
    assemble(systems, DistTopology::Linear)
}

/// How the resources of a [`random_distributed`] system are wired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistTopology {
    /// `r0 → r1 → … → rn`: every resource feeds the next.
    Linear,
    /// `r0` fans out to every other resource (one producer site with
    /// multiple outgoing links).
    Star,
    /// A binary tree: resource `i` is fed by resource `(i − 1) / 2`.
    Tree,
}

impl DistTopology {
    /// Every topology, in a stable order.
    pub const ALL: [DistTopology; 3] =
        [DistTopology::Linear, DistTopology::Star, DistTopology::Tree];

    /// The producing resource index for consumer `i ≥ 1`.
    fn parent(self, i: usize) -> usize {
        match self {
            DistTopology::Linear => i - 1,
            DistTopology::Star => 0,
            DistTopology::Tree => (i - 1) / 2,
        }
    }
}

/// Configuration for [`random_distributed`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomDistConfig {
    /// Number of resources (≥ 1).
    pub resources: usize,
    /// How resources are wired.
    pub topology: DistTopology,
    /// Stress shape of each resource's local system.
    pub profile: StressProfile,
}

impl Default for RandomDistConfig {
    fn default() -> Self {
        RandomDistConfig {
            resources: 3,
            topology: DistTopology::Linear,
            profile: StressProfile::Baseline,
        }
    }
}

impl RandomDistConfig {
    /// A deep linear pipeline (`resources ≥ 8`): jitter propagates hop
    /// by hop, so the holistic fixed point needs about one sweep per
    /// hop — the shape where an incremental (dirty-resource) iteration
    /// beats full re-analysis by the pipeline depth. The conformance
    /// fuzzer's `dist-deep` profile.
    pub fn deep_pipeline(resources: usize, profile: StressProfile) -> RandomDistConfig {
        assert!(resources >= 8, "a deep pipeline has at least 8 resources");
        RandomDistConfig {
            resources,
            topology: DistTopology::Linear,
            profile,
        }
    }

    /// A wide star (`resources ≥ 8`): one hub feeding every other
    /// resource, so after the hub settles the whole ready set is
    /// independent — the shape that exercises the worklist's parallel
    /// fan-out. The conformance fuzzer's `dist-wide` profile.
    pub fn wide_star(resources: usize, profile: StressProfile) -> RandomDistConfig {
        assert!(resources >= 8, "a wide star has at least 8 resources");
        RandomDistConfig {
            resources,
            topology: DistTopology::Star,
            profile,
        }
    }
}

/// Generates a random distributed system: `resources` independent
/// stress-profile systems wired by `topology`. The first regular chain
/// of each producer feeds the first regular chain of each consumer
/// (whose declared activation then acts as a placeholder replaced by
/// event-model propagation).
///
/// # Errors
///
/// Propagates [`DistError`] from validation (not expected for the
/// built-in topologies, which are acyclic by construction).
///
/// # Panics
///
/// Panics if `config.resources == 0` or the profile generates a system
/// without regular chains (nothing to link).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use twca_gen::{random_distributed, DistTopology, RandomDistConfig};
///
/// # fn main() -> Result<(), twca_dist::DistError> {
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let config = RandomDistConfig {
///     resources: 4,
///     topology: DistTopology::Star,
///     ..RandomDistConfig::default()
/// };
/// let dist = random_distributed(&mut rng, &config)?;
/// assert_eq!(dist.resources().len(), 4);
/// assert_eq!(dist.links().len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn random_distributed(
    rng: &mut impl Rng,
    config: &RandomDistConfig,
) -> Result<DistributedSystem, DistError> {
    let systems: Vec<System> = (0..config.resources)
        .map(|_| random_stress_system(rng, config.profile).expect("valid profile"))
        .collect();
    assemble(systems, config.topology)
}

/// Wires pre-generated per-resource systems into a distributed system.
fn assemble(systems: Vec<System>, topology: DistTopology) -> Result<DistributedSystem, DistError> {
    assert!(!systems.is_empty(), "need at least one resource");
    let resources = systems.len();
    let mut builder = DistributedSystemBuilder::new();
    let mut link_chains = Vec::with_capacity(systems.len());
    for (i, system) in systems.into_iter().enumerate() {
        let chain_name = system
            .regular_chains()
            .map(|id| system.chain(id).name().to_owned())
            .next()
            .expect("at least one regular chain");
        builder = builder.resource(format!("r{i}"), system);
        link_chains.push(chain_name);
    }
    for i in 1..resources {
        let parent = topology.parent(i);
        builder = builder.link(
            (format!("r{parent}"), link_chains[parent].clone()),
            (format!("r{i}"), link_chains[i].clone()),
        );
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn generates_reproducible_pipelines() {
        let config = RandomPipelineConfig::default();
        let a = random_pipeline(&mut ChaCha8Rng::seed_from_u64(1), &config).unwrap();
        let b = random_pipeline(&mut ChaCha8Rng::seed_from_u64(1), &config).unwrap();
        assert_eq!(a, b);
        let c = random_pipeline(&mut ChaCha8Rng::seed_from_u64(2), &config).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn pipeline_links_first_regular_chains() {
        let config = RandomPipelineConfig {
            resources: 4,
            ..RandomPipelineConfig::default()
        };
        let dist = random_pipeline(&mut ChaCha8Rng::seed_from_u64(3), &config).unwrap();
        assert_eq!(dist.resources().len(), 4);
        assert_eq!(dist.links().len(), 3);
        for link in dist.links() {
            let src = dist.resource(link.from().resource()).system();
            assert!(!src.chain(link.from().chain()).is_overload());
        }
        assert!(dist.resource_topological_order().is_ok());
    }

    #[test]
    fn star_topology_fans_out_from_the_hub() {
        let config = RandomDistConfig {
            resources: 5,
            topology: DistTopology::Star,
            ..RandomDistConfig::default()
        };
        let dist = random_distributed(&mut ChaCha8Rng::seed_from_u64(8), &config).unwrap();
        assert_eq!(dist.links().len(), 4);
        for link in dist.links() {
            assert_eq!(link.from().resource().index(), 0);
        }
        assert!(dist.resource_topological_order().is_ok());
    }

    #[test]
    fn tree_topology_is_acyclic_with_single_inputs() {
        let config = RandomDistConfig {
            resources: 7,
            topology: DistTopology::Tree,
            profile: crate::StressProfile::HighUtilization,
        };
        let dist = random_distributed(&mut ChaCha8Rng::seed_from_u64(9), &config).unwrap();
        assert_eq!(dist.links().len(), 6);
        assert!(dist.resource_topological_order().is_ok());
        // Every consumer has exactly one incoming link (builder enforces
        // it, but the topology must not even try to double-feed).
        for link in dist.links() {
            assert!(link.to().resource().index() >= 1);
        }
    }

    #[test]
    fn distributed_generation_is_reproducible() {
        for topology in DistTopology::ALL {
            let config = RandomDistConfig {
                resources: 4,
                topology,
                ..RandomDistConfig::default()
            };
            let a = random_distributed(&mut ChaCha8Rng::seed_from_u64(10), &config).unwrap();
            let b = random_distributed(&mut ChaCha8Rng::seed_from_u64(10), &config).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn worklist_stress_presets_have_the_promised_shapes() {
        let deep = RandomDistConfig::deep_pipeline(8, StressProfile::Baseline);
        let dist = random_distributed(&mut ChaCha8Rng::seed_from_u64(11), &deep).unwrap();
        assert_eq!(dist.resources().len(), 8);
        assert_eq!(dist.links().len(), 7);
        // Linear: every consumer is fed by its predecessor.
        for link in dist.links() {
            assert_eq!(
                link.from().resource().index() + 1,
                link.to().resource().index()
            );
        }
        let wide = RandomDistConfig::wide_star(9, StressProfile::HighUtilization);
        let dist = random_distributed(&mut ChaCha8Rng::seed_from_u64(12), &wide).unwrap();
        assert_eq!(dist.links().len(), 8);
        for link in dist.links() {
            assert_eq!(link.from().resource().index(), 0);
        }
    }

    #[test]
    fn single_resource_pipeline_has_no_links() {
        let config = RandomPipelineConfig {
            resources: 1,
            ..RandomPipelineConfig::default()
        };
        let dist = random_pipeline(&mut ChaCha8Rng::seed_from_u64(4), &config).unwrap();
        assert_eq!(dist.links().len(), 0);
    }
}
