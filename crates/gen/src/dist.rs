//! Random distributed-system generation.

use rand::Rng;

use crate::systems::{random_system, RandomSystemConfig};
use twca_dist::{DistError, DistributedSystem, DistributedSystemBuilder};
use twca_model::System;

/// Configuration for [`random_pipeline`].
///
/// Defaults produce small sense→process→act style pipelines: every
/// resource carries its own random local load, and one regular chain per
/// resource is wired to the next resource.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomPipelineConfig {
    /// Number of resources in the pipeline (≥ 1).
    pub resources: usize,
    /// Shape of each resource's local system.
    pub resource: RandomSystemConfig,
}

impl Default for RandomPipelineConfig {
    fn default() -> Self {
        RandomPipelineConfig {
            resources: 3,
            resource: RandomSystemConfig {
                regular_chains: 2,
                overload_chains: 1,
                tasks_per_chain: (1, 3),
                period_range: (100, 400),
                regular_utilization: 0.5,
                overload_utilization: 0.05,
                ..RandomSystemConfig::default()
            },
        }
    }
}

/// Generates a random linear pipeline of resources.
///
/// Each resource is an independent [`random_system`]; the first regular
/// chain of resource `i` feeds the first regular chain of resource
/// `i + 1` (whose declared activation model then acts as a placeholder
/// replaced by event-model propagation).
///
/// # Errors
///
/// Propagates [`DistError`] from validation and the model errors of
/// [`random_system`] (rendered into `DistError::DuplicateResource` never
/// occurs — resources are named `r0`, `r1`, …).
///
/// # Panics
///
/// Panics if `config.resources == 0` or a resource configuration has no
/// regular chains (there would be nothing to link).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use twca_gen::{random_pipeline, RandomPipelineConfig};
///
/// # fn main() -> Result<(), twca_dist::DistError> {
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let dist = random_pipeline(&mut rng, &RandomPipelineConfig::default())?;
/// assert_eq!(dist.resources().len(), 3);
/// assert_eq!(dist.links().len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn random_pipeline(
    rng: &mut impl Rng,
    config: &RandomPipelineConfig,
) -> Result<DistributedSystem, DistError> {
    assert!(
        config.resources >= 1,
        "pipeline needs at least one resource"
    );
    assert!(
        config.resource.regular_chains >= 1,
        "resources need a regular chain to link"
    );
    let systems: Vec<System> = (0..config.resources)
        .map(|_| random_system(rng, &config.resource).expect("valid configuration"))
        .collect();

    let mut builder = DistributedSystemBuilder::new();
    let mut link_chains = Vec::with_capacity(systems.len());
    for (i, system) in systems.into_iter().enumerate() {
        let chain_name = system
            .regular_chains()
            .map(|id| system.chain(id).name().to_owned())
            .next()
            .expect("at least one regular chain");
        builder = builder.resource(format!("r{i}"), system);
        link_chains.push(chain_name);
    }
    for i in 0..config.resources - 1 {
        builder = builder.link(
            (format!("r{i}"), link_chains[i].clone()),
            (format!("r{}", i + 1), link_chains[i + 1].clone()),
        );
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn generates_reproducible_pipelines() {
        let config = RandomPipelineConfig::default();
        let a = random_pipeline(&mut ChaCha8Rng::seed_from_u64(1), &config).unwrap();
        let b = random_pipeline(&mut ChaCha8Rng::seed_from_u64(1), &config).unwrap();
        assert_eq!(a, b);
        let c = random_pipeline(&mut ChaCha8Rng::seed_from_u64(2), &config).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn pipeline_links_first_regular_chains() {
        let config = RandomPipelineConfig {
            resources: 4,
            ..RandomPipelineConfig::default()
        };
        let dist = random_pipeline(&mut ChaCha8Rng::seed_from_u64(3), &config).unwrap();
        assert_eq!(dist.resources().len(), 4);
        assert_eq!(dist.links().len(), 3);
        for link in dist.links() {
            let src = dist.resource(link.from().resource()).system();
            assert!(!src.chain(link.from().chain()).is_overload());
        }
        assert!(dist.resource_topological_order().is_ok());
    }

    #[test]
    fn single_resource_pipeline_has_no_links() {
        let config = RandomPipelineConfig {
            resources: 1,
            ..RandomPipelineConfig::default()
        };
        let dist = random_pipeline(&mut ChaCha8Rng::seed_from_u64(4), &config).unwrap();
        assert_eq!(dist.links().len(), 0);
    }
}
