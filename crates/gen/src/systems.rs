//! Random chain-system generation.

use rand::Rng;

use crate::priorities::random_priority_permutation;
use crate::unifast::uunifast;
use twca_model::{ModelError, System, SystemBuilder, Time};

/// Configuration for [`random_system`].
///
/// Defaults approximate the shape of the paper's case study: a few
/// periodic deadline-constrained chains plus sporadic overload chains,
/// distinct priorities across all tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomSystemConfig {
    /// Number of regular (periodic, deadline-constrained) chains.
    pub regular_chains: usize,
    /// Number of sporadic overload chains.
    pub overload_chains: usize,
    /// Inclusive range of tasks per chain.
    pub tasks_per_chain: (usize, usize),
    /// Inclusive range of periods for regular chains (deadline = period).
    pub period_range: (Time, Time),
    /// Multiplier on the period for overload chain inter-arrival
    /// distances (overloads are rare).
    pub overload_rarity: Time,
    /// Total utilization of the regular chains (UUniFast split).
    pub regular_utilization: f64,
    /// Total utilization of the overload chains at their maximum rate.
    pub overload_utilization: f64,
}

impl Default for RandomSystemConfig {
    fn default() -> Self {
        RandomSystemConfig {
            regular_chains: 2,
            overload_chains: 2,
            tasks_per_chain: (2, 5),
            period_range: (100, 1_000),
            overload_rarity: 3,
            regular_utilization: 0.6,
            overload_utilization: 0.1,
        }
    }
}

/// Generates a random task-chain system.
///
/// Regular chains are strictly periodic with deadline = period; overload
/// chains are sporadic with an inter-arrival distance of
/// `overload_rarity` periods. Task execution times are derived from
/// UUniFast utilization shares, split evenly across a chain's tasks
/// (each at least 1 tick). Priorities form a random permutation across
/// all tasks.
///
/// # Errors
///
/// Propagates [`ModelError`] from system validation (not expected for
/// valid configurations).
///
/// # Panics
///
/// Panics if the configuration is degenerate (no chains, empty task
/// range, zero periods, non-positive utilizations).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use twca_gen::{random_system, RandomSystemConfig};
///
/// # fn main() -> Result<(), twca_model::ModelError> {
/// let mut rng = ChaCha8Rng::seed_from_u64(5);
/// let system = random_system(&mut rng, &RandomSystemConfig::default())?;
/// assert_eq!(system.chains().len(), 4);
/// assert_eq!(system.overload_chains().count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn random_system(
    rng: &mut impl Rng,
    config: &RandomSystemConfig,
) -> Result<System, ModelError> {
    assert!(
        config.regular_chains + config.overload_chains > 0,
        "need at least one chain"
    );
    assert!(
        config.tasks_per_chain.0 >= 1 && config.tasks_per_chain.0 <= config.tasks_per_chain.1,
        "invalid task range"
    );
    assert!(
        config.period_range.0 >= 1 && config.period_range.0 <= config.period_range.1,
        "invalid period range"
    );
    assert!(config.overload_rarity >= 1, "overload rarity must be >= 1");

    let regular_utils = if config.regular_chains > 0 {
        uunifast(rng, config.regular_chains, config.regular_utilization)
    } else {
        Vec::new()
    };
    let overload_utils = if config.overload_chains > 0 {
        uunifast(rng, config.overload_chains, config.overload_utilization)
    } else {
        Vec::new()
    };

    // Chain shapes first, to know the total task count for priorities.
    struct Shape {
        tasks: usize,
        period: Time,
        utilization: f64,
        overload: bool,
    }
    let mut shapes = Vec::new();
    for &u in &regular_utils {
        shapes.push(Shape {
            tasks: rng.gen_range(config.tasks_per_chain.0..=config.tasks_per_chain.1),
            period: rng.gen_range(config.period_range.0..=config.period_range.1),
            utilization: u,
            overload: false,
        });
    }
    for &u in &overload_utils {
        let period =
            rng.gen_range(config.period_range.0..=config.period_range.1) * config.overload_rarity;
        shapes.push(Shape {
            tasks: rng.gen_range(config.tasks_per_chain.0..=config.tasks_per_chain.1),
            period,
            utilization: u,
            overload: true,
        });
    }

    let total_tasks: usize = shapes.iter().map(|s| s.tasks).sum();
    let priorities = random_priority_permutation(rng, total_tasks);
    let mut priority_iter = priorities.into_iter();

    let mut builder = SystemBuilder::new();
    for (i, shape) in shapes.iter().enumerate() {
        let budget = ((shape.period as f64 * shape.utilization).floor() as Time).max(1);
        let per_task = (budget / shape.tasks as Time).max(1);
        let name = if shape.overload {
            format!("overload_{i}")
        } else {
            format!("chain_{i}")
        };
        let mut cb = if shape.overload {
            builder.chain(&name).sporadic(shape.period)?.overload()
        } else {
            builder
                .chain(&name)
                .periodic(shape.period)?
                .deadline(shape.period)
        };
        for t in 0..shape.tasks {
            let p = priority_iter.next().expect("permutation covers all tasks");
            cb = cb.task(format!("{name}_t{t}"), p.level(), per_task);
        }
        builder = cb.done();
    }
    builder.build()
}

/// Builds the deterministic **wide throughput system**: `chains`
/// synchronous periodic chains with short, staggered periods, one task
/// each and distinct priorities — a high-event-rate workload for
/// simulation throughput benchmarks (`sim_throughput`) and scale tests.
///
/// The shape stays schedulable at **any** width: chain `i` has period
/// `chains + i` and WCET 1, so total utilization is
/// `Σ 1/(chains+i) ≈ ln 2 ≈ 0.69` regardless of how many chains fan
/// out — widening the system grows the scheduler's bookkeeping load
/// (the quantity under test) without growing the simulated horizon's
/// job count or backlogging the processor.
///
/// # Panics
///
/// Panics if `chains` is zero.
///
/// # Examples
///
/// ```
/// let system = twca_gen::wide_throughput_system(256);
/// assert_eq!(system.chains().len(), 256);
/// assert!(system.utilization_bound(1_000_000) < 1.0);
/// ```
pub fn wide_throughput_system(chains: usize) -> System {
    assert!(chains > 0, "need at least one chain");
    let mut builder = SystemBuilder::new();
    for i in 0..chains {
        let period = (chains + i) as Time;
        builder = builder
            .chain(format!("wide_{i}"))
            .periodic(period)
            .expect("positive period")
            .deadline(period)
            .task(format!("wide_{i}_t0"), (chains - i) as u32, 1)
            .done();
    }
    builder.build().expect("the wide system is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use twca_curves::EventModel;

    #[test]
    fn generated_system_is_well_formed() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let config = RandomSystemConfig::default();
        for _ in 0..20 {
            let s = random_system(&mut rng, &config).unwrap();
            assert_eq!(
                s.chains().len(),
                config.regular_chains + config.overload_chains
            );
            for (_, chain) in s.iter() {
                assert!(!chain.is_empty());
                assert!(chain.total_wcet() >= chain.len() as u64);
                if chain.is_overload() {
                    assert!(chain.deadline().is_none());
                } else {
                    assert_eq!(chain.deadline(), Some(chain.activation().delta_min(2)));
                }
            }
        }
    }

    #[test]
    fn utilization_is_controlled() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let config = RandomSystemConfig {
            regular_utilization: 0.5,
            overload_utilization: 0.05,
            ..RandomSystemConfig::default()
        };
        let mut total = 0.0;
        const ROUNDS: usize = 30;
        for _ in 0..ROUNDS {
            let s = random_system(&mut rng, &config).unwrap();
            total += s.utilization_bound(1_000_000);
        }
        let mean = total / ROUNDS as f64;
        // Floor effects push utilization below the target; it must stay
        // in a sane band.
        assert!((0.2..=0.7).contains(&mean), "mean={mean}");
    }

    #[test]
    fn priorities_are_distinct_across_chains() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let s = random_system(&mut rng, &RandomSystemConfig::default()).unwrap();
        let mut levels: Vec<u32> = s
            .task_refs()
            .map(|r| s.task(r).priority().level())
            .collect();
        levels.sort_unstable();
        let expected: Vec<u32> = (1..=levels.len() as u32).collect();
        assert_eq!(levels, expected);
    }

    #[test]
    fn reproducible_with_same_seed() {
        let config = RandomSystemConfig::default();
        let a = random_system(&mut ChaCha8Rng::seed_from_u64(77), &config).unwrap();
        let b = random_system(&mut ChaCha8Rng::seed_from_u64(77), &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pure_regular_configuration() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let config = RandomSystemConfig {
            overload_chains: 0,
            ..RandomSystemConfig::default()
        };
        let s = random_system(&mut rng, &config).unwrap();
        assert_eq!(s.overload_chains().count(), 0);
    }
}
