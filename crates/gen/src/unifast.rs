//! The UUniFast utilization-splitting algorithm (Bini & Buttazzo).

use rand::Rng;

/// Splits a total utilization uniformly into `n` per-task utilizations
/// using UUniFast.
///
/// # Panics
///
/// Panics if `n == 0` or `total` is not finite and positive.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use twca_gen::uunifast;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(11);
/// let parts = uunifast(&mut rng, 5, 0.8);
/// assert_eq!(parts.len(), 5);
/// assert!((parts.iter().sum::<f64>() - 0.8).abs() < 1e-9);
/// assert!(parts.iter().all(|&u| u >= 0.0));
/// ```
pub fn uunifast(rng: &mut impl Rng, n: usize, total: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one task");
    assert!(
        total.is_finite() && total > 0.0,
        "total utilization must be positive"
    );
    let mut result = Vec::with_capacity(n);
    let mut remaining = total;
    for i in 1..n {
        let exponent = 1.0 / (n - i) as f64;
        let next = remaining * rng.gen::<f64>().powf(exponent);
        result.push(remaining - next);
        remaining = next;
    }
    result.push(remaining);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sums_to_total() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for n in [1usize, 2, 7, 25] {
            let parts = uunifast(&mut rng, n, 0.9);
            assert_eq!(parts.len(), n);
            assert!((parts.iter().sum::<f64>() - 0.9).abs() < 1e-9);
            assert!(parts.iter().all(|&u| (0.0..=0.9 + 1e-12).contains(&u)));
        }
    }

    #[test]
    fn single_task_gets_everything() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert_eq!(uunifast(&mut rng, 1, 0.5), vec![0.5]);
    }

    #[test]
    fn distribution_is_not_degenerate() {
        // All mass should not land on one task systematically.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut first_share = 0.0;
        const ROUNDS: usize = 200;
        for _ in 0..ROUNDS {
            first_share += uunifast(&mut rng, 4, 1.0)[0];
        }
        let mean = first_share / ROUNDS as f64;
        assert!((0.15..0.35).contains(&mean), "mean={mean}");
    }
}
