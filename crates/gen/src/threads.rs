//! Generation of chain systems derived from *communicating threads*
//! (the structure motivating Schlatow & Ernst, RTAS'16, which the paper
//! builds on): each thread owns a priority band, and a chain is a
//! sequence of operations hopping between threads.
//!
//! Chains generated this way zig-zag through the priority space, which is
//! exactly where segment-aware analysis beats flattening: a chain
//! visiting a low-priority thread is *deferred* there, so only its
//! high-priority segments interfere with others.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::unifast::uunifast;
use twca_model::{ModelError, System, SystemBuilder, Time};

/// Configuration for [`communicating_threads_system`].
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadSystemConfig {
    /// Number of threads (= disjoint priority bands).
    pub threads: usize,
    /// Number of regular chains.
    pub chains: usize,
    /// Inclusive range of operations (tasks) per chain.
    pub chain_length: (usize, usize),
    /// Inclusive range of chain periods (deadline = period).
    pub period_range: (Time, Time),
    /// Total utilization of the regular chains.
    pub utilization: f64,
    /// Number of sporadic overload chains.
    pub overload_chains: usize,
    /// Overload inter-arrival distance = `overload_rarity` × period.
    pub overload_rarity: Time,
}

impl Default for ThreadSystemConfig {
    fn default() -> Self {
        ThreadSystemConfig {
            threads: 3,
            chains: 3,
            chain_length: (2, 6),
            period_range: (200, 2_000),
            utilization: 0.5,
            overload_chains: 1,
            overload_rarity: 5,
        }
    }
}

/// Generates a communicating-threads system: every task lives in the
/// priority band of its thread, consecutive tasks of a chain live on
/// *different* threads, and priorities are unique globally.
///
/// # Errors
///
/// Propagates [`ModelError`] from validation (not expected for sane
/// configurations).
///
/// # Panics
///
/// Panics on degenerate configurations (zero threads/chains, empty
/// ranges, fewer than two threads with chains longer than one).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use twca_gen::{communicating_threads_system, ThreadSystemConfig};
///
/// # fn main() -> Result<(), twca_model::ModelError> {
/// let mut rng = ChaCha8Rng::seed_from_u64(3);
/// let s = communicating_threads_system(&mut rng, &ThreadSystemConfig::default())?;
/// assert_eq!(s.chains().len(), 4); // 3 regular + 1 overload
/// # Ok(())
/// # }
/// ```
pub fn communicating_threads_system(
    rng: &mut impl Rng,
    config: &ThreadSystemConfig,
) -> Result<System, ModelError> {
    assert!(config.threads >= 1, "need at least one thread");
    assert!(
        config.chains + config.overload_chains >= 1,
        "need at least one chain"
    );
    assert!(
        config.chain_length.0 >= 1 && config.chain_length.0 <= config.chain_length.1,
        "invalid chain length range"
    );
    assert!(
        config.threads >= 2 || config.chain_length.1 <= 1,
        "thread-hopping chains need at least two threads"
    );
    assert!(
        config.period_range.0 >= 1 && config.period_range.0 <= config.period_range.1,
        "invalid period range"
    );

    let total_chains = config.chains + config.overload_chains;
    // Shape: per chain, the thread of each task.
    let mut shapes: Vec<(usize, Vec<usize>, Time, bool)> = Vec::new(); // (idx, threads, period, overload)
    for i in 0..total_chains {
        let overload = i >= config.chains;
        let len = rng.gen_range(config.chain_length.0..=config.chain_length.1);
        let mut hops = Vec::with_capacity(len);
        let mut current = rng.gen_range(0..config.threads);
        hops.push(current);
        for _ in 1..len {
            // Hop to a different thread.
            let mut next = rng.gen_range(0..config.threads);
            while next == current && config.threads > 1 {
                next = rng.gen_range(0..config.threads);
            }
            hops.push(next);
            current = next;
        }
        let mut period = rng.gen_range(config.period_range.0..=config.period_range.1);
        if overload {
            period = period.saturating_mul(config.overload_rarity.max(1));
        }
        shapes.push((i, hops, period, overload));
    }

    // Priorities: one unique level per task, drawn from its thread's band.
    // Band t covers levels [t·width + 1, (t+1)·width]; within a band,
    // levels are shuffled and handed out in order.
    let tasks_per_thread: Vec<usize> = (0..config.threads)
        .map(|t| {
            shapes
                .iter()
                .map(|(_, hops, _, _)| hops.iter().filter(|&&h| h == t).count())
                .sum()
        })
        .collect();
    let width = tasks_per_thread.iter().copied().max().unwrap_or(1).max(1) as u32;
    let mut band_levels: Vec<Vec<u32>> = (0..config.threads)
        .map(|t| {
            let base = t as u32 * width;
            let mut levels: Vec<u32> = (base + 1..=base + width).collect();
            levels.shuffle(rng);
            levels
        })
        .collect();

    // Utilizations.
    let utils = uunifast(rng, total_chains, config.utilization.max(1e-9));

    let mut builder = SystemBuilder::new();
    for (i, hops, period, overload) in &shapes {
        let name = if *overload {
            format!("overload_{i}")
        } else {
            format!("flow_{i}")
        };
        let budget = ((*period as f64 * utils[*i]).floor() as Time).max(1);
        let per_task = (budget / hops.len() as Time).max(1);
        let mut cb = if *overload {
            builder.chain(&name).sporadic(*period)?.overload()
        } else {
            builder.chain(&name).periodic(*period)?.deadline(*period)
        };
        for (t, &thread) in hops.iter().enumerate() {
            let level = band_levels[thread]
                .pop()
                .expect("band width covers all tasks of the thread");
            cb = cb.task(format!("{name}_op{t}_thr{thread}"), level, per_task);
        }
        builder = cb.done();
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use twca_model::{InterferenceClass, SegmentView};

    #[test]
    fn generates_valid_systems() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let config = ThreadSystemConfig::default();
        for _ in 0..20 {
            let s = communicating_threads_system(&mut rng, &config).unwrap();
            assert_eq!(s.chains().len(), 4);
            // Priorities unique.
            let mut levels: Vec<u32> = s
                .task_refs()
                .map(|r| s.task(r).priority().level())
                .collect();
            let n = levels.len();
            levels.sort_unstable();
            levels.dedup();
            assert_eq!(levels.len(), n, "priorities must be unique");
        }
    }

    #[test]
    fn consecutive_tasks_hop_threads() {
        // Thread is encoded in the task name suffix; consecutive tasks of
        // a chain must differ.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let s = communicating_threads_system(&mut rng, &ThreadSystemConfig::default()).unwrap();
        for (_, chain) in s.iter() {
            for pair in chain.tasks().windows(2) {
                let thread = |name: &str| {
                    name.rsplit("_thr")
                        .next()
                        .and_then(|t| t.parse::<usize>().ok())
                        .expect("generated names encode the thread")
                };
                assert_ne!(
                    thread(pair[0].name()),
                    thread(pair[1].name()),
                    "consecutive tasks on the same thread"
                );
            }
        }
    }

    #[test]
    fn thread_structure_produces_deferred_chains() {
        // With several bands, zig-zagging chains frequently defer each
        // other — the situation the paper's segment calculus targets.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let config = ThreadSystemConfig {
            threads: 4,
            chains: 4,
            chain_length: (3, 6),
            ..ThreadSystemConfig::default()
        };
        let mut deferred = 0usize;
        let mut pairs = 0usize;
        for _ in 0..10 {
            let s = communicating_threads_system(&mut rng, &config).unwrap();
            for (a, ca) in s.iter() {
                for (b, cb) in s.iter() {
                    if a == b {
                        continue;
                    }
                    pairs += 1;
                    if SegmentView::new(ca, cb).class() == InterferenceClass::Deferred {
                        deferred += 1;
                    }
                }
            }
        }
        assert!(
            deferred * 4 > pairs,
            "expected >25% deferred pairs, got {deferred}/{pairs}"
        );
    }

    #[test]
    fn reproducible() {
        let config = ThreadSystemConfig::default();
        let a = communicating_threads_system(&mut ChaCha8Rng::seed_from_u64(9), &config).unwrap();
        let b = communicating_threads_system(&mut ChaCha8Rng::seed_from_u64(9), &config).unwrap();
        assert_eq!(a, b);
    }
}
