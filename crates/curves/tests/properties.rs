//! Property-based tests for the event-model invariants shared by all
//! curve implementations.

use proptest::prelude::*;

use twca_curves::{
    delta_min_from_eta_plus, eta_plus_from_delta_min, ActivationModel, Burst, DeltaTable,
    EventModel, Periodic, PeriodicJitter, Sporadic, Sum,
};

/// Strategy producing one of each concrete model with small parameters.
fn any_model() -> impl Strategy<Value = ActivationModel> {
    prop_oneof![
        (1u64..500).prop_map(|p| Periodic::new(p).unwrap().into()),
        (1u64..500).prop_map(|d| Sporadic::new(d).unwrap().into()),
        (1u64..300, 0u64..600, 1u64..50).prop_map(|(p, j, d)| {
            let d = d.min(p);
            PeriodicJitter::new(p, j, d).unwrap().into()
        }),
        (2u64..6, 1u64..20).prop_map(|(size, inner)| {
            let period = (size - 1) * inner + 1 + 50;
            Burst::new(period, size, inner).unwrap().into()
        }),
        proptest::collection::vec(1u64..200, 1..6).prop_map(|increments| {
            // Build a strictly increasing table so the implied tail
            // increment is always positive.
            let mut acc = 0u64;
            let distances: Vec<u64> = increments
                .into_iter()
                .map(|inc| {
                    acc += inc;
                    acc
                })
                .collect();
            DeltaTable::new(distances).unwrap().into()
        }),
    ]
}

proptest! {
    #[test]
    fn eta_plus_is_monotone(m in any_model(), d1 in 0u64..2_000, d2 in 0u64..2_000) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(m.eta_plus(lo) <= m.eta_plus(hi));
    }

    #[test]
    fn eta_minus_never_exceeds_eta_plus(m in any_model(), d in 0u64..2_000) {
        prop_assert!(m.eta_minus(d) <= m.eta_plus(d));
    }

    #[test]
    fn delta_min_is_monotone(m in any_model(), k1 in 0u64..200, k2 in 0u64..200) {
        let (lo, hi) = if k1 <= k2 { (k1, k2) } else { (k2, k1) };
        prop_assert!(m.delta_min(lo) <= m.delta_min(hi));
    }

    #[test]
    fn delta_plus_dominates_delta_min(m in any_model(), k in 0u64..200) {
        if let Some(up) = m.delta_plus(k) {
            prop_assert!(up >= m.delta_min(k));
        }
    }

    #[test]
    fn eta_of_zero_window_is_zero(m in any_model()) {
        prop_assert_eq!(m.eta_plus(0), 0);
        prop_assert_eq!(m.eta_minus(0), 0);
    }

    #[test]
    fn delta_of_single_event_is_zero(m in any_model()) {
        prop_assert_eq!(m.delta_min(0), 0);
        prop_assert_eq!(m.delta_min(1), 0);
    }

    /// η+ and δ- must be pseudo-inverses of each other.
    #[test]
    fn pseudo_inverse_roundtrip(m in any_model(), d in 0u64..1_500, k in 0u64..100) {
        prop_assert_eq!(
            m.eta_plus(d),
            eta_plus_from_delta_min(|k| m.delta_min(k), d),
            "eta mismatch at d={}", d
        );
        prop_assert_eq!(
            m.delta_min(k),
            delta_min_from_eta_plus(|d| m.eta_plus(d), k),
            "delta mismatch at k={}", k
        );
    }

    /// k events fit into any window strictly longer than δ-(k).
    #[test]
    fn window_just_past_delta_admits_k(m in any_model(), k in 1u64..100) {
        let d = m.delta_min(k);
        prop_assert!(m.eta_plus(d.saturating_add(1)) >= k);
    }

    #[test]
    fn sum_eta_is_sum_of_etas(p1 in 1u64..100, p2 in 1u64..100, d in 0u64..2_000) {
        let a = Periodic::new(p1).unwrap();
        let b = Periodic::new(p2).unwrap();
        let s = Sum::new(a, b);
        prop_assert_eq!(s.eta_plus(d), a.eta_plus(d) + b.eta_plus(d));
        prop_assert_eq!(s.eta_minus(d), a.eta_minus(d) + b.eta_minus(d));
    }

    /// Closed-form δ- for concrete models is superadditive, which justifies
    /// using them as self-consistent lower distance bounds.
    #[test]
    fn closed_form_models_are_superadditive(m in any_model(), a in 2u64..40, b in 2u64..40) {
        if let ActivationModel::Table(_) = m {
            // Arbitrary tables need not be superadditive; checked separately.
            return Ok(());
        }
        let lhs = m.delta_min(a + b - 1);
        let rhs = m.delta_min(a).saturating_add(m.delta_min(b));
        prop_assert!(lhs >= rhs, "a={} b={} lhs={} rhs={}", a, b, lhs, rhs);
    }
}
