//! Compositions of event models.

use crate::convert::delta_min_from_eta_plus;
use crate::model::{EventModel, Time};

/// The superposition (merge) of two activation sources.
///
/// The merged stream sees the events of both inputs:
/// `η+(Δ) = η+₁(Δ) + η+₂(Δ)` and `η-(Δ) = η-₁(Δ) + η-₂(Δ)`; the distance
/// functions are obtained by pseudo-inversion, which keeps the model
/// internally consistent (and conservative where the inputs correlate).
///
/// # Examples
///
/// ```
/// use twca_curves::{EventModel, Periodic, Sum};
///
/// # fn main() -> Result<(), twca_curves::CurveError> {
/// let merged = Sum::new(Periodic::new(100)?, Periodic::new(150)?);
/// assert_eq!(merged.eta_plus(300), 3 + 2);
/// // Two events may coincide, so the minimum distance collapses to zero.
/// assert_eq!(merged.delta_min(2), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sum<A, B> {
    first: A,
    second: B,
}

impl<A: EventModel, B: EventModel> Sum<A, B> {
    /// Merges two sources into one stream.
    pub fn new(first: A, second: B) -> Self {
        Sum { first, second }
    }

    /// The first merged source.
    pub fn first(&self) -> &A {
        &self.first
    }

    /// The second merged source.
    pub fn second(&self) -> &B {
        &self.second
    }
}

impl<A: EventModel, B: EventModel> EventModel for Sum<A, B> {
    fn eta_plus(&self, delta: Time) -> u64 {
        self.first
            .eta_plus(delta)
            .saturating_add(self.second.eta_plus(delta))
    }

    fn eta_minus(&self, delta: Time) -> u64 {
        self.first
            .eta_minus(delta)
            .saturating_add(self.second.eta_minus(delta))
    }

    fn delta_min(&self, k: u64) -> Time {
        delta_min_from_eta_plus(|d| self.eta_plus(d), k)
    }

    fn delta_plus(&self, k: u64) -> Option<Time> {
        // The span of k consecutive merged events is bounded by the largest
        // window guaranteeing fewer than k events strictly inside.
        if k <= 1 {
            return Some(0);
        }
        if self.first.delta_plus(2).is_none() && self.second.delta_plus(2).is_none() {
            return None;
        }
        // Largest Δ with η-(Δ) <= k - 1; search with an exponential cap.
        let target = k - 1;
        let mut hi = 1u64;
        while self.eta_minus(hi) <= target {
            if hi >= Time::MAX / 2 {
                return None;
            }
            hi *= 2;
        }
        let mut lo = 0u64;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.eta_minus(mid) <= target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }

    fn is_recurring(&self) -> bool {
        self.first.is_recurring() || self.second.is_recurring()
    }
}

/// The tightest combination of two models of the *same* event source.
///
/// If both `A` and `B` are valid descriptions of one source — e.g. a
/// datasheet specification and a model extracted from measurements
/// ([`crate::DeltaTable::from_trace`]) — then the source also satisfies
/// the pointwise-tightest bounds: `η+ = min`, `η- = max`, `δ- = max`,
/// `δ+ = min`.
///
/// Do **not** use this to merge two *different* sources; that is
/// [`Sum`].
///
/// # Examples
///
/// ```
/// use twca_curves::{EventModel, Periodic, Sporadic, Tightest};
///
/// # fn main() -> Result<(), twca_curves::CurveError> {
/// // Spec says "at least 70 apart"; measurement says "looks periodic 100".
/// let spec = Sporadic::new(70)?;
/// let measured = Periodic::new(100)?;
/// let combined = Tightest::new(spec, measured);
/// assert_eq!(combined.delta_min(2), 100);   // max of 70 and 100
/// assert_eq!(combined.eta_minus(250), 2);   // periodic side guarantees
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tightest<A, B> {
    first: A,
    second: B,
}

impl<A: EventModel, B: EventModel> Tightest<A, B> {
    /// Combines two descriptions of the same source.
    pub fn new(first: A, second: B) -> Self {
        Tightest { first, second }
    }

    /// The first description.
    pub fn first(&self) -> &A {
        &self.first
    }

    /// The second description.
    pub fn second(&self) -> &B {
        &self.second
    }
}

impl<A: EventModel, B: EventModel> EventModel for Tightest<A, B> {
    fn eta_plus(&self, delta: Time) -> u64 {
        self.first.eta_plus(delta).min(self.second.eta_plus(delta))
    }

    fn eta_minus(&self, delta: Time) -> u64 {
        self.first
            .eta_minus(delta)
            .max(self.second.eta_minus(delta))
    }

    fn delta_min(&self, k: u64) -> Time {
        self.first.delta_min(k).max(self.second.delta_min(k))
    }

    fn delta_plus(&self, k: u64) -> Option<Time> {
        match (self.first.delta_plus(k), self.second.delta_plus(k)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    fn is_recurring(&self) -> bool {
        self.first.is_recurring() && self.second.is_recurring()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::eta_minus_from_delta_plus;
    use crate::models::{Never, Periodic, Sporadic};

    #[test]
    fn sum_adds_arrival_curves() {
        let s = Sum::new(Periodic::new(10).unwrap(), Periodic::new(20).unwrap());
        assert_eq!(s.eta_plus(40), 4 + 2);
        assert_eq!(s.eta_minus(40), 4 + 2);
    }

    #[test]
    fn sum_with_never_is_identity_on_eta() {
        let p = Periodic::new(10).unwrap();
        let s = Sum::new(p, Never::new());
        for delta in 0..200 {
            assert_eq!(s.eta_plus(delta), p.eta_plus(delta));
            assert_eq!(s.eta_minus(delta), p.eta_minus(delta));
        }
    }

    #[test]
    fn sum_delta_min_is_consistent() {
        let s = Sum::new(Periodic::new(10).unwrap(), Periodic::new(15).unwrap());
        // Two independent sources can fire together.
        assert_eq!(s.delta_min(2), 0);
        // Consistency with its own eta_plus.
        for k in 0..20 {
            let d = s.delta_min(k);
            if k >= 1 {
                assert!(s.eta_plus(d.saturating_add(1)) >= k, "k={k} d={d}");
            }
        }
    }

    #[test]
    fn sum_delta_plus_bounded_by_denser_source() {
        let s = Sum::new(Periodic::new(100).unwrap(), Periodic::new(100).unwrap());
        // In any window of length 201 at least 4 events occur, so 5
        // consecutive events can never span more than ~200.
        let span = s.delta_plus(5).unwrap();
        assert!(span <= 300, "span={span}");
    }

    #[test]
    fn sum_of_sporadics_has_unbounded_delta_plus() {
        let s = Sum::new(Sporadic::new(10).unwrap(), Sporadic::new(20).unwrap());
        assert_eq!(s.delta_plus(2), None);
    }

    #[test]
    fn tightest_takes_best_of_both() {
        let spec = Sporadic::new(70).unwrap();
        let measured = Periodic::new(100).unwrap();
        let t = Tightest::new(spec, measured);
        for delta in 0..500 {
            assert_eq!(
                t.eta_plus(delta),
                spec.eta_plus(delta).min(measured.eta_plus(delta))
            );
            assert!(t.eta_minus(delta) >= spec.eta_minus(delta));
        }
        assert_eq!(t.delta_plus(3), Some(200)); // from the periodic side
        assert!(t.is_recurring());
    }

    #[test]
    fn tightest_stays_internally_consistent() {
        // The tightest combination of two self-consistent models keeps
        // η- ≤ η+ when the models describe a common source; a periodic
        // model combined with a looser sporadic one must stay consistent.
        let a = Periodic::new(100).unwrap();
        let b = Sporadic::new(60).unwrap();
        let t = Tightest::new(a, b);
        for delta in 0..1_000 {
            assert!(t.eta_minus(delta) <= t.eta_plus(delta), "delta={delta}");
        }
        for k in 0..30 {
            if let Some(up) = t.delta_plus(k) {
                assert!(up >= t.delta_min(k), "k={k}");
            }
        }
    }

    #[test]
    fn eta_minus_helper_agrees_with_sum() {
        let s = Sum::new(Periodic::new(10).unwrap(), Periodic::new(15).unwrap());
        let viaspan = eta_minus_from_delta_plus(|k| s.delta_plus(k), 60);
        assert!(viaspan <= s.eta_minus(60));
    }
}
