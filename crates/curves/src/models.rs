//! Closed-form event models: periodic, sporadic, periodic-with-jitter,
//! bursty, and the empty source.

use serde::{Deserialize, Serialize};

use crate::convert::eta_plus_from_delta_min;
use crate::error::CurveError;
use crate::model::{EventModel, Time};

/// Ceiling division for model time, with `0 / p = 0`.
fn div_ceil(n: Time, d: Time) -> u64 {
    debug_assert!(d > 0);
    n.div_ceil(d)
}

/// Strictly periodic activation: events exactly `period` apart.
///
/// # Examples
///
/// ```
/// use twca_curves::{EventModel, Periodic};
///
/// # fn main() -> Result<(), twca_curves::CurveError> {
/// let p = Periodic::new(200)?;
/// assert_eq!(p.eta_plus(400), 2);
/// assert_eq!(p.eta_plus(401), 3);
/// assert_eq!(p.delta_min(76), 15_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Periodic {
    period: Time,
}

impl Periodic {
    /// Creates a periodic model.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::ZeroDistance`] if `period` is zero.
    pub fn new(period: Time) -> Result<Self, CurveError> {
        if period == 0 {
            return Err(CurveError::ZeroDistance);
        }
        Ok(Periodic { period })
    }

    /// The activation period.
    pub fn period(&self) -> Time {
        self.period
    }
}

impl EventModel for Periodic {
    fn eta_plus(&self, delta: Time) -> u64 {
        div_ceil(delta, self.period)
    }

    fn eta_minus(&self, delta: Time) -> u64 {
        delta / self.period
    }

    fn delta_min(&self, k: u64) -> Time {
        k.saturating_sub(1).saturating_mul(self.period)
    }

    fn delta_plus(&self, k: u64) -> Option<Time> {
        Some(self.delta_min(k))
    }
}

/// Sporadic activation: events at least `min_distance` apart, with no
/// guarantee that any event ever occurs.
///
/// This is the model used for the overload chains `σa[700]` and `σb[600]`
/// of the paper's case study, where the bracketed value is `δ-(2)`.
///
/// # Examples
///
/// ```
/// use twca_curves::{EventModel, Sporadic};
///
/// # fn main() -> Result<(), twca_curves::CurveError> {
/// let s = Sporadic::new(700)?;
/// assert_eq!(s.eta_plus(731), 2);
/// assert_eq!(s.eta_minus(10_000), 0); // may never fire
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Sporadic {
    min_distance: Time,
}

impl Sporadic {
    /// Creates a sporadic model from the minimum inter-arrival distance.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::ZeroDistance`] if `min_distance` is zero.
    pub fn new(min_distance: Time) -> Result<Self, CurveError> {
        if min_distance == 0 {
            return Err(CurveError::ZeroDistance);
        }
        Ok(Sporadic { min_distance })
    }

    /// The minimum distance between two consecutive events (`δ-(2)`).
    pub fn min_distance(&self) -> Time {
        self.min_distance
    }
}

impl EventModel for Sporadic {
    fn eta_plus(&self, delta: Time) -> u64 {
        div_ceil(delta, self.min_distance)
    }

    fn eta_minus(&self, _delta: Time) -> u64 {
        0
    }

    fn delta_min(&self, k: u64) -> Time {
        k.saturating_sub(1).saturating_mul(self.min_distance)
    }

    fn delta_plus(&self, _k: u64) -> Option<Time> {
        None
    }
}

/// Periodic activation with release jitter and a minimum event distance
/// (the classic *PJd* model of compositional performance analysis).
///
/// `η+(Δ) = min(⌈(Δ + J) / P⌉, ⌈Δ / d⌉)` and
/// `δ-(k) = max((k-1)·d, (k-1)·P − J)`.
///
/// # Examples
///
/// ```
/// use twca_curves::{EventModel, PeriodicJitter};
///
/// # fn main() -> Result<(), twca_curves::CurveError> {
/// let m = PeriodicJitter::new(100, 150, 10)?;
/// // Jitter lets two events land almost together, but never closer than d.
/// assert_eq!(m.delta_min(2), 10);
/// assert_eq!(m.eta_plus(20), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PeriodicJitter {
    period: Time,
    jitter: Time,
    min_distance: Time,
}

impl PeriodicJitter {
    /// Creates a periodic-with-jitter model.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::ZeroDistance`] if `period` or `min_distance`
    /// is zero.
    pub fn new(period: Time, jitter: Time, min_distance: Time) -> Result<Self, CurveError> {
        if period == 0 || min_distance == 0 {
            return Err(CurveError::ZeroDistance);
        }
        Ok(PeriodicJitter {
            period,
            jitter,
            min_distance,
        })
    }

    /// The activation period.
    pub fn period(&self) -> Time {
        self.period
    }

    /// The release jitter.
    pub fn jitter(&self) -> Time {
        self.jitter
    }

    /// The minimum distance between consecutive events.
    pub fn min_distance(&self) -> Time {
        self.min_distance
    }
}

impl EventModel for PeriodicJitter {
    fn eta_plus(&self, delta: Time) -> u64 {
        if delta == 0 {
            return 0;
        }
        let by_period = div_ceil(delta.saturating_add(self.jitter), self.period);
        let by_distance = div_ceil(delta, self.min_distance);
        by_period.min(by_distance)
    }

    fn eta_minus(&self, delta: Time) -> u64 {
        delta.saturating_sub(self.jitter) / self.period
    }

    fn delta_min(&self, k: u64) -> Time {
        let n = k.saturating_sub(1);
        let by_distance = n.saturating_mul(self.min_distance);
        let by_period = n.saturating_mul(self.period).saturating_sub(self.jitter);
        by_distance.max(by_period)
    }

    fn delta_plus(&self, k: u64) -> Option<Time> {
        Some(
            k.saturating_sub(1)
                .saturating_mul(self.period)
                .saturating_add(self.jitter),
        )
    }
}

/// Sporadically recurring bursts: up to `size` events spaced
/// `inner_distance` apart, with consecutive bursts starting at least
/// `period` apart.
///
/// # Examples
///
/// ```
/// use twca_curves::{Burst, EventModel};
///
/// # fn main() -> Result<(), twca_curves::CurveError> {
/// // Bursts of 3 events, 5 apart, at most every 100 ticks.
/// let b = Burst::new(100, 3, 5)?;
/// assert_eq!(b.delta_min(3), 10);  // one full burst
/// assert_eq!(b.delta_min(4), 100); // spills into the next burst
/// assert_eq!(b.eta_plus(11), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Burst {
    period: Time,
    size: u64,
    inner_distance: Time,
}

impl Burst {
    /// Creates a burst model.
    ///
    /// # Errors
    ///
    /// * [`CurveError::ZeroDistance`] if `period` or `inner_distance` is
    ///   zero;
    /// * [`CurveError::EmptyBurst`] if `size` is zero;
    /// * [`CurveError::BurstExceedsPeriod`] if one burst does not fit into
    ///   the outer period.
    pub fn new(period: Time, size: u64, inner_distance: Time) -> Result<Self, CurveError> {
        if period == 0 || inner_distance == 0 {
            return Err(CurveError::ZeroDistance);
        }
        if size == 0 {
            return Err(CurveError::EmptyBurst);
        }
        let burst_span = (size - 1).saturating_mul(inner_distance);
        if burst_span >= period {
            return Err(CurveError::BurstExceedsPeriod { burst_span, period });
        }
        Ok(Burst {
            period,
            size,
            inner_distance,
        })
    }

    /// Minimum distance between the starts of two bursts.
    pub fn period(&self) -> Time {
        self.period
    }

    /// Maximum number of events per burst.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Distance between consecutive events inside a burst.
    pub fn inner_distance(&self) -> Time {
        self.inner_distance
    }
}

impl EventModel for Burst {
    fn eta_plus(&self, delta: Time) -> u64 {
        eta_plus_from_delta_min(|k| self.delta_min(k), delta)
    }

    fn eta_minus(&self, _delta: Time) -> u64 {
        0
    }

    fn delta_min(&self, k: u64) -> Time {
        let n = k.saturating_sub(1);
        let full_periods = n / self.size;
        let rest = n % self.size;
        full_periods
            .saturating_mul(self.period)
            .saturating_add(rest.saturating_mul(self.inner_distance))
    }

    fn delta_plus(&self, _k: u64) -> Option<Time> {
        None
    }
}

/// A source that never produces events.
///
/// Used by TWCA to abstract overload chains away when computing the
/// *typical* (overload-free) behaviour of a system.
///
/// # Examples
///
/// ```
/// use twca_curves::{EventModel, Never};
///
/// let n = Never::new();
/// assert_eq!(n.eta_plus(u64::MAX), 0);
/// assert!(!n.is_recurring());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Never;

impl Never {
    /// Creates the empty source.
    pub fn new() -> Self {
        Never
    }
}

impl EventModel for Never {
    fn eta_plus(&self, _delta: Time) -> u64 {
        0
    }

    fn eta_minus(&self, _delta: Time) -> u64 {
        0
    }

    fn delta_min(&self, k: u64) -> Time {
        // No sequence of two or more events exists; report an effectively
        // infinite distance so pseudo-inversion stays consistent.
        if k <= 1 {
            0
        } else {
            Time::MAX
        }
    }

    fn delta_plus(&self, _k: u64) -> Option<Time> {
        None
    }

    fn is_recurring(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_eta_plus_matches_case_study() {
        let p = Periodic::new(200).unwrap();
        assert_eq!(p.eta_plus(0), 0);
        assert_eq!(p.eta_plus(1), 1);
        assert_eq!(p.eta_plus(200), 1);
        assert_eq!(p.eta_plus(201), 2);
        assert_eq!(p.eta_plus(331), 2);
        assert_eq!(p.eta_plus(547), 3);
    }

    #[test]
    fn periodic_eta_minus_is_floor() {
        let p = Periodic::new(100).unwrap();
        assert_eq!(p.eta_minus(99), 0);
        assert_eq!(p.eta_minus(100), 1);
        assert_eq!(p.eta_minus(250), 2);
    }

    #[test]
    fn periodic_distances_are_linear() {
        let p = Periodic::new(100).unwrap();
        assert_eq!(p.delta_min(0), 0);
        assert_eq!(p.delta_min(1), 0);
        assert_eq!(p.delta_min(2), 100);
        assert_eq!(p.delta_plus(5), Some(400));
    }

    #[test]
    fn periodic_rejects_zero_period() {
        assert_eq!(Periodic::new(0).unwrap_err(), CurveError::ZeroDistance);
    }

    #[test]
    fn sporadic_matches_overload_chains() {
        let a = Sporadic::new(700).unwrap();
        assert_eq!(a.eta_plus(700), 1);
        assert_eq!(a.eta_plus(701), 2);
        assert_eq!(a.eta_plus(15_331), 22);
        let b = Sporadic::new(600).unwrap();
        assert_eq!(b.eta_plus(15_331), 26);
    }

    #[test]
    fn sporadic_never_guarantees_events() {
        let s = Sporadic::new(10).unwrap();
        assert_eq!(s.eta_minus(1_000_000), 0);
        assert_eq!(s.delta_plus(2), None);
    }

    #[test]
    fn jitter_model_degenerates_to_periodic() {
        let p = Periodic::new(100).unwrap();
        let j = PeriodicJitter::new(100, 0, 1).unwrap();
        for delta in [0, 1, 50, 100, 101, 399, 400, 1000] {
            assert_eq!(p.eta_plus(delta), j.eta_plus(delta), "delta={delta}");
        }
        for k in 0..20 {
            assert_eq!(p.delta_min(k), j.delta_min(k).max(p.delta_min(k)));
        }
    }

    #[test]
    fn jitter_model_bounds_bursts_by_min_distance() {
        let j = PeriodicJitter::new(100, 1_000, 10).unwrap();
        // With huge jitter many events can pile up, but never closer than 10.
        assert_eq!(j.eta_plus(10), 1);
        assert_eq!(j.eta_plus(11), 2);
        assert_eq!(j.delta_min(2), 10);
        assert_eq!(j.delta_plus(2), Some(1_100));
    }

    #[test]
    fn jitter_eta_minus_accounts_for_jitter() {
        let j = PeriodicJitter::new(100, 50, 1).unwrap();
        assert_eq!(j.eta_minus(149), 0);
        assert_eq!(j.eta_minus(150), 1);
        assert_eq!(j.eta_minus(350), 3);
    }

    #[test]
    fn burst_distances() {
        let b = Burst::new(100, 3, 5).unwrap();
        assert_eq!(b.delta_min(1), 0);
        assert_eq!(b.delta_min(2), 5);
        assert_eq!(b.delta_min(3), 10);
        assert_eq!(b.delta_min(4), 100);
        assert_eq!(b.delta_min(6), 110);
        assert_eq!(b.delta_min(7), 200);
    }

    #[test]
    fn burst_eta_plus_is_consistent_with_delta_min() {
        let b = Burst::new(100, 3, 5).unwrap();
        assert_eq!(b.eta_plus(0), 0);
        assert_eq!(b.eta_plus(1), 1);
        assert_eq!(b.eta_plus(6), 2);
        assert_eq!(b.eta_plus(11), 3);
        assert_eq!(b.eta_plus(101), 4);
    }

    #[test]
    fn burst_validation() {
        assert!(matches!(
            Burst::new(10, 3, 5),
            Err(CurveError::BurstExceedsPeriod { .. })
        ));
        assert_eq!(Burst::new(10, 0, 5).unwrap_err(), CurveError::EmptyBurst);
        assert_eq!(Burst::new(0, 1, 5).unwrap_err(), CurveError::ZeroDistance);
    }

    #[test]
    fn never_produces_nothing() {
        let n = Never::new();
        assert_eq!(n.eta_plus(Time::MAX), 0);
        assert_eq!(n.eta_minus(Time::MAX), 0);
        assert_eq!(n.delta_min(2), Time::MAX);
    }
}
