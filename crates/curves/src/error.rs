use std::error::Error;
use std::fmt;

/// Error raised when constructing an ill-formed event model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CurveError {
    /// A period or minimum distance of zero would allow infinitely many
    /// activations in a finite window.
    ZeroDistance,
    /// A burst must contain at least one event.
    EmptyBurst,
    /// A burst of `size` events spaced `inner_distance` apart must fit into
    /// the outer period.
    BurstExceedsPeriod {
        /// Span of one burst, `(size - 1) * inner_distance`.
        burst_span: u64,
        /// Outer period the burst must fit into.
        period: u64,
    },
    /// A distance table must be non-decreasing in `k`.
    NonMonotonicTable {
        /// Index (number of events, starting at 2) where monotonicity broke.
        k: u64,
    },
    /// A distance table needs at least the entry for two events.
    EmptyTable,
    /// `δ+(k) < δ-(k)` would be contradictory.
    CrossingBounds {
        /// Index (number of events) where `δ+` dropped below `δ-`.
        k: u64,
    },
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveError::ZeroDistance => {
                write!(f, "period or minimum event distance must be positive")
            }
            CurveError::EmptyBurst => write!(f, "burst size must be at least one event"),
            CurveError::BurstExceedsPeriod { burst_span, period } => write!(
                f,
                "burst span {burst_span} does not fit into outer period {period}"
            ),
            CurveError::NonMonotonicTable { k } => {
                write!(f, "distance table decreases at k = {k}")
            }
            CurveError::EmptyTable => write!(f, "distance table needs an entry for k = 2"),
            CurveError::CrossingBounds { k } => {
                write!(
                    f,
                    "maximum distance drops below minimum distance at k = {k}"
                )
            }
        }
    }
}

impl Error for CurveError {}
