//! Arrival-curve event models for compositional real-time analysis.
//!
//! This crate implements the activation models used by the DATE 2017 paper
//! *"Bounding Deadline Misses in Weakly-Hard Real-Time Systems with Task
//! Dependencies"*: upper/lower **arrival curves** `η+ / η-` and their
//! pseudo-inverse **distance functions** `δ- / δ+`.
//!
//! * `η+(Δ)` — maximum number of activations that can occur in any
//!   half-open time window of length `Δ` (`η+(0) = 0`).
//! * `η-(Δ)` — minimum number of activations in any such window.
//! * `δ-(k)` — minimum distance between the first and the last activation
//!   of any `k` consecutive activations (`δ-(k) = 0` for `k ≤ 1`).
//! * `δ+(k)` — maximum such distance, which may be unbounded (e.g. for
//!   sporadic sources), represented as `None`.
//!
//! The two views are pseudo-inverses of each other:
//! `η+(Δ) = max{k : δ-(k) < Δ}` and `δ-(k) = min{Δ : η+(Δ + 1) ≥ k}`.
//!
//! # Examples
//!
//! ```
//! use twca_curves::{EventModel, Periodic, Sporadic};
//!
//! # fn main() -> Result<(), twca_curves::CurveError> {
//! let periodic = Periodic::new(200)?;
//! assert_eq!(periodic.eta_plus(331), 2);
//! assert_eq!(periodic.delta_min(3), 400);
//! assert_eq!(periodic.delta_plus(3), Some(400));
//!
//! let sporadic = Sporadic::new(700)?;
//! assert_eq!(sporadic.eta_plus(731), 2);
//! assert_eq!(sporadic.delta_plus(2), None); // may stay silent forever
//! # Ok(())
//! # }
//! ```

mod convert;
mod error;
mod model;
mod models;
mod ops;
mod table;

pub use convert::{delta_min_from_eta_plus, eta_minus_from_delta_plus, eta_plus_from_delta_min};
pub use error::CurveError;
pub use model::{ActivationModel, EventModel, Time};
pub use models::{Burst, Never, Periodic, PeriodicJitter, Sporadic};
pub use ops::{Sum, Tightest};
pub use table::DeltaTable;
