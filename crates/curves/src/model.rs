use serde::{Deserialize, Serialize};

use crate::models::{Burst, Never, Periodic, PeriodicJitter, Sporadic};
use crate::table::DeltaTable;

/// Discrete model time. All analyses in this workspace use integer ticks.
pub type Time = u64;

/// An activation source described by arrival curves.
///
/// Implementors must satisfy the usual consistency conditions of real-time
/// calculus event models:
///
/// * `eta_plus` and `eta_minus` are non-decreasing, `eta_plus(0) = 0`,
///   `eta_minus(Δ) ≤ eta_plus(Δ)`;
/// * `delta_min` is non-decreasing with `delta_min(k) = 0` for `k ≤ 1`;
/// * `delta_plus(k) ≥ delta_min(k)` whenever bounded;
/// * pseudo-inversion: `eta_plus(Δ) = max{k : delta_min(k) < Δ}`.
///
/// The helper functions [`crate::eta_plus_from_delta_min`],
/// [`crate::delta_min_from_eta_plus`] and
/// [`crate::eta_minus_from_delta_plus`] derive one view from the other;
/// concrete models should prefer closed forms.
///
/// # Examples
///
/// ```
/// use twca_curves::{EventModel, Periodic};
///
/// # fn main() -> Result<(), twca_curves::CurveError> {
/// let p = Periodic::new(100)?;
/// // A window one tick longer than the period can catch two events.
/// assert_eq!(p.eta_plus(101), 2);
/// # Ok(())
/// # }
/// ```
pub trait EventModel: std::fmt::Debug + Send + Sync {
    /// Maximum number of activations in any half-open window of length
    /// `delta`.
    fn eta_plus(&self, delta: Time) -> u64;

    /// Minimum number of activations in any half-open window of length
    /// `delta`.
    fn eta_minus(&self, delta: Time) -> u64;

    /// Minimum distance between the first and last of `k` consecutive
    /// activations. Zero for `k ≤ 1`.
    fn delta_min(&self, k: u64) -> Time;

    /// Maximum distance between the first and last of `k` consecutive
    /// activations, or `None` if the source may stay silent indefinitely.
    fn delta_plus(&self, k: u64) -> Option<Time>;

    /// Whether the source can produce unboundedly many events over time.
    ///
    /// All recurring models return `true`; [`Never`] returns `false`.
    fn is_recurring(&self) -> bool {
        true
    }

    /// The next activation breakpoint after `delta`: the smallest window
    /// length `Δ' > delta` with `eta_plus(Δ') > eta_plus(delta)`, or
    /// [`Time::MAX`] when the count never increases again (non-recurring
    /// sources).
    ///
    /// Scheduling-point fixed-point solvers use this to leap between the
    /// points where the interference function can actually change,
    /// instead of re-evaluating every arrival curve at every candidate
    /// window; the simulator's batched arrival generator
    /// (`twca_sim::batched_max_rate_trace`) walks the same breakpoints
    /// to emit whole arrival batches instead of one event per call. The
    /// default implementation pseudo-inverts `delta_min`
    /// (`η+(Δ) = max{k : δ-(k) < Δ}` jumps to `n + 1` at
    /// `δ-(n + 1) + 1`), which is exact for every model whose two curve
    /// views are consistent; the result is always `> delta`.
    fn next_step(&self, delta: Time) -> Time {
        if !self.is_recurring() {
            return Time::MAX;
        }
        let count = self.eta_plus(delta);
        self.delta_min(count.saturating_add(1))
            .saturating_add(1)
            .max(delta.saturating_add(1))
    }
}

/// A closed, serializable union of the event models shipped with this crate.
///
/// Analyses accept `&dyn EventModel`; systems that need to be stored,
/// hashed, compared or serialized hold an `ActivationModel` instead. The
/// enum implements [`EventModel`] by delegation.
///
/// # Examples
///
/// ```
/// use twca_curves::{ActivationModel, EventModel};
///
/// # fn main() -> Result<(), twca_curves::CurveError> {
/// let m = ActivationModel::periodic(200)?;
/// assert_eq!(m.eta_plus(200), 1);
/// assert_eq!(m.delta_min(2), 200);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ActivationModel {
    /// Strictly periodic activation.
    Periodic(Periodic),
    /// Sporadic activation with a minimum inter-arrival distance.
    Sporadic(Sporadic),
    /// Periodic activation with release jitter and a minimum distance.
    PeriodicJitter(PeriodicJitter),
    /// Sporadically recurring bursts of events.
    Burst(Burst),
    /// Piecewise distance-function table.
    Table(DeltaTable),
    /// A source that never activates.
    Never(Never),
}

impl ActivationModel {
    /// Strictly periodic model with the given period.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CurveError::ZeroDistance`] if `period` is zero.
    pub fn periodic(period: Time) -> Result<Self, crate::CurveError> {
        Ok(ActivationModel::Periodic(Periodic::new(period)?))
    }

    /// Sporadic model with the given minimum inter-arrival distance
    /// (`δ-(2)`).
    ///
    /// # Errors
    ///
    /// Returns [`crate::CurveError::ZeroDistance`] if `min_distance` is zero.
    pub fn sporadic(min_distance: Time) -> Result<Self, crate::CurveError> {
        Ok(ActivationModel::Sporadic(Sporadic::new(min_distance)?))
    }

    /// Periodic model with release jitter and minimum distance.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CurveError::ZeroDistance`] if `period` or `min_distance`
    /// is zero.
    pub fn periodic_jitter(
        period: Time,
        jitter: Time,
        min_distance: Time,
    ) -> Result<Self, crate::CurveError> {
        Ok(ActivationModel::PeriodicJitter(PeriodicJitter::new(
            period,
            jitter,
            min_distance,
        )?))
    }

    /// A source that never produces events (used to abstract overload away).
    pub fn never() -> Self {
        ActivationModel::Never(Never::new())
    }

    fn as_dyn(&self) -> &dyn EventModel {
        match self {
            ActivationModel::Periodic(m) => m,
            ActivationModel::Sporadic(m) => m,
            ActivationModel::PeriodicJitter(m) => m,
            ActivationModel::Burst(m) => m,
            ActivationModel::Table(m) => m,
            ActivationModel::Never(m) => m,
        }
    }
}

impl EventModel for ActivationModel {
    fn eta_plus(&self, delta: Time) -> u64 {
        self.as_dyn().eta_plus(delta)
    }

    fn eta_minus(&self, delta: Time) -> u64 {
        self.as_dyn().eta_minus(delta)
    }

    fn delta_min(&self, k: u64) -> Time {
        self.as_dyn().delta_min(k)
    }

    fn delta_plus(&self, k: u64) -> Option<Time> {
        self.as_dyn().delta_plus(k)
    }

    fn is_recurring(&self) -> bool {
        self.as_dyn().is_recurring()
    }

    fn next_step(&self, delta: Time) -> Time {
        self.as_dyn().next_step(delta)
    }
}

impl From<Periodic> for ActivationModel {
    fn from(value: Periodic) -> Self {
        ActivationModel::Periodic(value)
    }
}

impl From<Sporadic> for ActivationModel {
    fn from(value: Sporadic) -> Self {
        ActivationModel::Sporadic(value)
    }
}

impl From<PeriodicJitter> for ActivationModel {
    fn from(value: PeriodicJitter) -> Self {
        ActivationModel::PeriodicJitter(value)
    }
}

impl From<Burst> for ActivationModel {
    fn from(value: Burst) -> Self {
        ActivationModel::Burst(value)
    }
}

impl From<DeltaTable> for ActivationModel {
    fn from(value: DeltaTable) -> Self {
        ActivationModel::Table(value)
    }
}

impl From<Never> for ActivationModel {
    fn from(value: Never) -> Self {
        ActivationModel::Never(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_model_delegates() {
        let m = ActivationModel::periodic(10).unwrap();
        assert_eq!(m.eta_plus(25), 3);
        assert_eq!(m.eta_minus(25), 2);
        assert_eq!(m.delta_min(4), 30);
        assert_eq!(m.delta_plus(4), Some(30));
        assert!(m.is_recurring());
    }

    #[test]
    fn never_is_not_recurring() {
        let m = ActivationModel::never();
        assert!(!m.is_recurring());
        assert_eq!(m.eta_plus(1_000_000), 0);
        assert_eq!(m.next_step(0), Time::MAX);
    }

    #[test]
    fn next_step_is_the_minimal_count_increase() {
        let models = [
            ActivationModel::periodic(100).unwrap(),
            ActivationModel::sporadic(70).unwrap(),
            ActivationModel::periodic_jitter(100, 150, 10).unwrap(),
            crate::Burst::new(100, 3, 5).unwrap().into(),
            crate::DeltaTable::new(vec![5, 30]).unwrap().into(),
        ];
        for model in &models {
            for delta in 0..500u64 {
                let step = model.next_step(delta);
                assert!(step > delta, "{model:?} at {delta}");
                assert!(
                    model.eta_plus(step) > model.eta_plus(delta),
                    "{model:?}: no increase at step {step} from {delta}"
                );
                assert_eq!(
                    model.eta_plus(step - 1),
                    model.eta_plus(delta),
                    "{model:?}: step {step} from {delta} is not minimal"
                );
            }
        }
    }

    #[test]
    fn conversions_from_concrete_models() {
        let p: ActivationModel = Periodic::new(5).unwrap().into();
        assert_eq!(p.delta_min(3), 10);
        let s: ActivationModel = Sporadic::new(7).unwrap().into();
        assert_eq!(s.delta_plus(3), None);
    }

    #[test]
    fn models_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ActivationModel>();
    }
}
