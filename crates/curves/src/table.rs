//! Table-driven distance functions for measured or irregular activation
//! patterns.

use serde::{Deserialize, Serialize};

use crate::convert::eta_plus_from_delta_min;
use crate::error::CurveError;
use crate::model::{EventModel, Time};

/// An event model defined by an explicit `δ-` table with periodic
/// extrapolation beyond the last entry.
///
/// `distances[i]` holds `δ-(i + 2)`, i.e. the first entry is the minimum
/// distance between two consecutive events. For `k` beyond the table the
/// model extrapolates linearly with `tail_increment` per extra event, which
/// defaults to the last increment of the table.
///
/// This mirrors how measured traces are abstracted into event models in
/// compositional performance analysis tools.
///
/// # Examples
///
/// ```
/// use twca_curves::{DeltaTable, EventModel};
///
/// # fn main() -> Result<(), twca_curves::CurveError> {
/// // Two events may be 5 apart, three 30 apart, then +25 per event.
/// let t = DeltaTable::new(vec![5, 30])?;
/// assert_eq!(t.delta_min(2), 5);
/// assert_eq!(t.delta_min(3), 30);
/// assert_eq!(t.delta_min(4), 55);
/// assert_eq!(t.eta_plus(6), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeltaTable {
    distances: Vec<Time>,
    tail_increment: Time,
}

impl DeltaTable {
    /// Creates a table model; the tail increment defaults to the last
    /// increment in the table (or the single entry for one-entry tables).
    ///
    /// # Errors
    ///
    /// * [`CurveError::EmptyTable`] if `distances` is empty;
    /// * [`CurveError::NonMonotonicTable`] if the table decreases;
    /// * [`CurveError::ZeroDistance`] if the implied tail increment is zero
    ///   (the model would admit infinitely many events in a finite window).
    pub fn new(distances: Vec<Time>) -> Result<Self, CurveError> {
        let tail = match distances.len() {
            0 => return Err(CurveError::EmptyTable),
            1 => distances[0],
            n => distances[n - 1].saturating_sub(distances[n - 2]),
        };
        Self::with_tail_increment(distances, tail)
    }

    /// Creates a table model with an explicit extrapolation increment.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeltaTable::new`].
    pub fn with_tail_increment(
        distances: Vec<Time>,
        tail_increment: Time,
    ) -> Result<Self, CurveError> {
        if distances.is_empty() {
            return Err(CurveError::EmptyTable);
        }
        for (i, pair) in distances.windows(2).enumerate() {
            if pair[1] < pair[0] {
                return Err(CurveError::NonMonotonicTable { k: i as u64 + 3 });
            }
        }
        if tail_increment == 0 {
            return Err(CurveError::ZeroDistance);
        }
        Ok(DeltaTable {
            distances,
            tail_increment,
        })
    }

    /// The stored distances, `distances[i] = δ-(i + 2)`.
    pub fn distances(&self) -> &[Time] {
        &self.distances
    }

    /// The linear extrapolation increment used beyond the table.
    pub fn tail_increment(&self) -> Time {
        self.tail_increment
    }

    /// Extracts a distance table from a measured, sorted activation
    /// trace: `δ-(k)` becomes the minimum span observed over any `k`
    /// consecutive events, for `k` up to `max_events`. The tail
    /// extrapolates with the last increment.
    ///
    /// This is the standard way measured traces are abstracted into event
    /// models in compositional performance analysis; any trace that
    /// repeats the observed behaviour conforms to the resulting model.
    ///
    /// # Errors
    ///
    /// * [`CurveError::EmptyTable`] if the trace has fewer than two
    ///   events or `max_events < 2`;
    /// * [`CurveError::ZeroDistance`] if two events coincide (the
    ///   resulting model could not bound event counts).
    ///
    /// # Examples
    ///
    /// ```
    /// use twca_curves::{DeltaTable, EventModel};
    ///
    /// # fn main() -> Result<(), twca_curves::CurveError> {
    /// // A bursty observation: pairs 10 apart, bursts 100 apart.
    /// let t = DeltaTable::from_trace(&[0, 10, 100, 110, 200, 210], 4)?;
    /// assert_eq!(t.delta_min(2), 10);
    /// assert_eq!(t.delta_min(3), 100); // e.g. events at 10, 100, 110
    /// assert_eq!(t.delta_min(4), 110); // e.g. events at 0, 10, 100, 110
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_trace(times: &[Time], max_events: u64) -> Result<Self, CurveError> {
        if times.len() < 2 || max_events < 2 {
            return Err(CurveError::EmptyTable);
        }
        debug_assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "trace must be sorted"
        );
        let limit = (max_events as usize).min(times.len());
        let mut distances = Vec::with_capacity(limit - 1);
        for k in 2..=limit {
            let min_span = times
                .windows(k)
                .map(|w| w[k - 1] - w[0])
                .min()
                .expect("windows of a long-enough trace are non-empty");
            if min_span == 0 {
                return Err(CurveError::ZeroDistance);
            }
            distances.push(min_span);
        }
        // Enforce monotonicity defensively (spans of more events are
        // never shorter for sorted input, so this is a no-op in practice).
        for i in 1..distances.len() {
            if distances[i] < distances[i - 1] {
                distances[i] = distances[i - 1];
            }
        }
        DeltaTable::new(distances)
    }

    /// Checks the superadditivity property
    /// `δ-(a + b - 1) ≥ δ-(a) + δ-(b)` for all entries up to `limit`
    /// events, returning the first violating pair if any.
    ///
    /// Superadditivity is what makes a distance function self-consistent:
    /// packing two dense windows back to back cannot beat the declared
    /// minimum distances.
    pub fn superadditivity_violation(&self, limit: u64) -> Option<(u64, u64)> {
        for a in 2..=limit {
            for b in 2..=limit {
                let lhs = self.delta_min(a + b - 1);
                let rhs = self.delta_min(a).saturating_add(self.delta_min(b));
                if lhs < rhs {
                    return Some((a, b));
                }
            }
        }
        None
    }
}

impl EventModel for DeltaTable {
    fn eta_plus(&self, delta: Time) -> u64 {
        eta_plus_from_delta_min(|k| self.delta_min(k), delta)
    }

    fn eta_minus(&self, _delta: Time) -> u64 {
        0
    }

    fn delta_min(&self, k: u64) -> Time {
        if k <= 1 {
            return 0;
        }
        let index = (k - 2) as usize;
        if index < self.distances.len() {
            self.distances[index]
        } else {
            let beyond = k - 1 - self.distances.len() as u64;
            self.distances[self.distances.len() - 1]
                .saturating_add(beyond.saturating_mul(self.tail_increment))
        }
    }

    fn delta_plus(&self, _k: u64) -> Option<Time> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lookup_and_extrapolation() {
        let t = DeltaTable::new(vec![10, 25, 45]).unwrap();
        assert_eq!(t.delta_min(1), 0);
        assert_eq!(t.delta_min(2), 10);
        assert_eq!(t.delta_min(3), 25);
        assert_eq!(t.delta_min(4), 45);
        assert_eq!(t.delta_min(5), 65); // 45 + 20
        assert_eq!(t.delta_min(7), 105);
    }

    #[test]
    fn table_models_periodic_exactly() {
        let t = DeltaTable::new(vec![100]).unwrap();
        for k in 2..10 {
            assert_eq!(t.delta_min(k), (k - 1) * 100);
        }
        assert_eq!(t.eta_plus(101), 2);
    }

    #[test]
    fn table_rejects_bad_input() {
        assert_eq!(DeltaTable::new(vec![]).unwrap_err(), CurveError::EmptyTable);
        assert_eq!(
            DeltaTable::new(vec![10, 5]).unwrap_err(),
            CurveError::NonMonotonicTable { k: 3 }
        );
        assert_eq!(
            DeltaTable::with_tail_increment(vec![10, 10], 0).unwrap_err(),
            CurveError::ZeroDistance
        );
    }

    #[test]
    fn from_trace_periodic_observation() {
        let t = DeltaTable::from_trace(&[0, 100, 200, 300, 400], 5).unwrap();
        for k in 2..=8 {
            assert_eq!(t.delta_min(k), (k - 1) * 100, "k={k}");
        }
    }

    #[test]
    fn from_trace_respects_max_events() {
        let t = DeltaTable::from_trace(&[0, 100, 200, 300, 400], 3).unwrap();
        assert_eq!(t.distances().len(), 2);
        // Tail extrapolates periodically.
        assert_eq!(t.delta_min(5), 400);
    }

    #[test]
    fn from_trace_rejects_degenerate_input() {
        assert_eq!(
            DeltaTable::from_trace(&[5], 4).unwrap_err(),
            CurveError::EmptyTable
        );
        assert_eq!(
            DeltaTable::from_trace(&[0, 100], 1).unwrap_err(),
            CurveError::EmptyTable
        );
        assert_eq!(
            DeltaTable::from_trace(&[0, 0, 100], 3).unwrap_err(),
            CurveError::ZeroDistance
        );
    }

    #[test]
    fn trace_replay_conforms_to_extracted_model() {
        // Any window of the original trace satisfies the extracted model.
        let times = [0u64, 7, 40, 47, 80, 87, 120];
        let t = DeltaTable::from_trace(&times, 7).unwrap();
        for i in 0..times.len() {
            for j in i..times.len() {
                let span = times[j] - times[i];
                let events = (j - i + 1) as u64;
                assert!(
                    events <= t.eta_plus(span + 1),
                    "window [{i},{j}] violates extracted model"
                );
            }
        }
    }

    #[test]
    fn superadditivity_detects_violations() {
        // Periodic tables are superadditive.
        let good = DeltaTable::new(vec![100]).unwrap();
        assert_eq!(good.superadditivity_violation(10), None);
        // A table with a generous pair distance but a stingy triple is not:
        // δ-(3) = 10 < δ-(2) + δ-(2) = 16.
        let bad = DeltaTable::with_tail_increment(vec![8, 10], 10).unwrap();
        assert_eq!(bad.superadditivity_violation(10), Some((2, 2)));
    }
}
