//! Pseudo-inversion helpers between the `η` (events per window) and `δ`
//! (distance per event count) views of an event model.

use crate::model::Time;

/// Practical cap on event counts during inversion searches. Far above any
/// count reachable by real analyses, but small enough that saturating
/// distance arithmetic cannot wrap a search.
const MAX_EVENTS: u64 = 1 << 40;

/// Derives `η+(Δ) = max{k : δ-(k) < Δ}` from a non-decreasing minimum
/// distance function.
///
/// Returns `0` for `Δ = 0`. The supplied `delta_min` must satisfy
/// `delta_min(k) = 0` for `k ≤ 1` and be non-decreasing; then the result is
/// the standard upper arrival curve.
///
/// Note that for a source that never emits events this formula still yields
/// `1` (a single event has zero span); such sources should implement
/// `eta_plus` directly instead of relying on inversion.
///
/// # Examples
///
/// ```
/// use twca_curves::eta_plus_from_delta_min;
///
/// // Periodic with period 100, expressed as a distance function.
/// let eta = |delta| eta_plus_from_delta_min(|k| (k.saturating_sub(1)) * 100, delta);
/// assert_eq!(eta(0), 0);
/// assert_eq!(eta(100), 1);
/// assert_eq!(eta(101), 2);
/// ```
pub fn eta_plus_from_delta_min(delta_min: impl Fn(u64) -> Time, delta: Time) -> u64 {
    if delta == 0 {
        return 0;
    }
    // Exponential search for an upper bound with delta_min(hi) >= delta.
    let mut hi = 2u64;
    while hi < MAX_EVENTS && delta_min(hi) < delta {
        hi = hi.saturating_mul(2);
    }
    if delta_min(hi) < delta {
        // The distance function never reaches `delta`; the source allows
        // unbounded accumulation. Report the cap.
        return MAX_EVENTS;
    }
    // Binary search for the largest k with delta_min(k) < delta.
    let mut lo = 1u64; // delta_min(1) = 0 < delta
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if delta_min(mid) < delta {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Derives `δ-(k) = min{Δ : η+(Δ + 1) ≥ k}` from a non-decreasing upper
/// arrival curve.
///
/// Returns `0` for `k ≤ 1`.
///
/// # Examples
///
/// ```
/// use twca_curves::delta_min_from_eta_plus;
///
/// // Periodic with period 100, expressed as an arrival curve.
/// let delta = |k| delta_min_from_eta_plus(|d| d.div_ceil(100), k);
/// assert_eq!(delta(1), 0);
/// assert_eq!(delta(2), 100);
/// assert_eq!(delta(3), 200);
/// ```
pub fn delta_min_from_eta_plus(eta_plus: impl Fn(Time) -> u64, k: u64) -> Time {
    if k <= 1 {
        return 0;
    }
    // Exponential search for a window that already admits k events.
    let mut hi = 1u64;
    while eta_plus(hi.saturating_add(1)) < k {
        if hi >= Time::MAX / 2 {
            return Time::MAX;
        }
        hi *= 2;
    }
    let mut lo = 0u64; // eta_plus(1) >= 1 only guarantees k = 1
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if eta_plus(mid + 1) >= k {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    if eta_plus(lo + 1) >= k {
        lo
    } else {
        hi
    }
}

/// Derives `η-(Δ) = max{k : δ+(k + 1) ≤ Δ}` from a maximum distance
/// function, i.e. the number of events guaranteed inside any half-open
/// window of length `Δ`.
///
/// `delta_plus` returning `None` means the source may stay silent, in which
/// case no events are guaranteed and the result is `0`.
///
/// # Examples
///
/// ```
/// use twca_curves::eta_minus_from_delta_plus;
///
/// // Periodic with period 100: any window of length 250 holds >= 2 events.
/// let eta = |d| eta_minus_from_delta_plus(|k| Some((k.saturating_sub(1)) * 100), d);
/// assert_eq!(eta(250), 2);
/// assert_eq!(eta(99), 0);
/// ```
pub fn eta_minus_from_delta_plus(delta_plus: impl Fn(u64) -> Option<Time>, delta: Time) -> u64 {
    match delta_plus(2) {
        None => 0,
        Some(_) => {
            let span = |k: u64| delta_plus(k).unwrap_or(Time::MAX);
            // Largest k with span(k + 1) <= delta.
            let mut hi = 2u64;
            while hi < MAX_EVENTS && span(hi + 1) <= delta {
                hi = hi.saturating_mul(2);
            }
            let mut lo = 0u64; // span(1) = 0 <= delta
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if span(mid + 1) <= delta {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EventModel;
    use crate::models::{Burst, Periodic, PeriodicJitter, Sporadic};

    #[test]
    fn inversion_roundtrip_periodic() {
        let p = Periodic::new(137).unwrap();
        for delta in 0..1000 {
            assert_eq!(
                p.eta_plus(delta),
                eta_plus_from_delta_min(|k| p.delta_min(k), delta),
                "delta={delta}"
            );
        }
        for k in 0..30 {
            assert_eq!(
                p.delta_min(k),
                delta_min_from_eta_plus(|d| p.eta_plus(d), k),
                "k={k}"
            );
        }
    }

    #[test]
    fn inversion_roundtrip_sporadic() {
        let s = Sporadic::new(60).unwrap();
        for delta in 0..500 {
            assert_eq!(
                s.eta_plus(delta),
                eta_plus_from_delta_min(|k| s.delta_min(k), delta)
            );
        }
    }

    #[test]
    fn inversion_roundtrip_jitter() {
        let j = PeriodicJitter::new(100, 37, 11).unwrap();
        for k in 0..40 {
            assert_eq!(
                j.delta_min(k),
                delta_min_from_eta_plus(|d| j.eta_plus(d), k),
                "k={k}"
            );
        }
    }

    #[test]
    fn burst_uses_inversion_consistently() {
        let b = Burst::new(50, 4, 3).unwrap();
        for k in 0..40 {
            assert_eq!(
                b.delta_min(k),
                delta_min_from_eta_plus(|d| b.eta_plus(d), k),
                "k={k}"
            );
        }
    }

    #[test]
    fn eta_minus_from_periodic_delta_plus() {
        let p = Periodic::new(100).unwrap();
        for delta in 0..1000 {
            assert_eq!(
                p.eta_minus(delta),
                eta_minus_from_delta_plus(|k| p.delta_plus(k), delta),
                "delta={delta}"
            );
        }
    }

    #[test]
    fn unbounded_accumulation_is_capped() {
        // delta_min constant at zero: infinitely many events may coincide.
        assert_eq!(eta_plus_from_delta_min(|_| 0, 10), MAX_EVENTS);
    }
}
