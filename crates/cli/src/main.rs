//! The `twca` command-line tool: analyze, explain, simulate, export and
//! synthesize task-chain systems described in the text DSL.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match twca_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("twca: {e}");
            std::process::exit(2);
        }
    }
}
