//! Library backing the `twca` command-line tool.
//!
//! Every subcommand is a pure function from parsed arguments to a
//! rendered string, so the whole CLI is unit-testable without spawning
//! processes. The `twca` binary in `main.rs` is a thin wrapper.
//!
//! ```text
//! twca analyze <file>                 latency report + miss models
//! twca explain <file> <chain>         full analysis derivation
//! twca dmm <file> <chain> <k>...      miss model at given window lengths
//! twca simulate <file> [horizon]      adversarial simulation vs bounds
//! twca sim <file> [flags]             Monte Carlo empirical miss rates
//! twca dot <file>                     Graphviz export
//! twca gantt <file> [horizon]         textual Gantt of an adversarial run
//! twca report <file>                  Markdown analysis report
//! twca synthesize <file> <m> <k>      search priorities satisfying (m,k)
//! twca batch [files...] [--gen N]     parallel batch analysis (engine)
//! twca dist <file>                    distributed (linked-resource) analysis
//! twca serve                          JSON-Lines request/response streaming
//! twca serve --listen ADDR            multi-worker TCP analysis server
//! twca loadgen --connect ADDR         throughput/latency load generator
//! twca chaos --connect ADDR           transport fault injection vs a live server
//! twca fuzz                           randomized conformance fuzzing (verify)
//! twca bench                          perf-trajectory runner (JSON + CI gate)
//! ```
//!
//! `batch` flags: `--gen N` (analyze `N` generated systems), `--seed S`,
//! `--profile P` (stress shape of generated systems), `--threads T`,
//! `--serial`, `--k K1,K2,...`, `--json`, `--progress`.
//!
//! `fuzz` generates random scenarios (uniprocessor stress profiles and
//! distributed topologies, including the `dist-deep` pipeline and
//! `dist-wide` star shapes that stress the incremental holistic
//! worklist) and checks every one against the [`twca_verify`] oracle
//! battery: simulation soundness, cache agreement, serial/parallel
//! agreement, backend agreement, dmm monotonicity,
//! lazy-vs-materialized combination-engine agreement,
//! scheduling-point-vs-iterative solver agreement,
//! event-queue-vs-classic simulation-core agreement and Monte Carlo
//! miss-rate soundness. Failing scenarios
//! are auto-shrunk and persisted to the regression corpus. Flags:
//! `--seed S`, `--iters N`, `--budget SECS`, `--profile P1,P2,...`,
//! `--k K1,K2,...`, `--horizon H`, `--corpus DIR`, `--no-shrink`.
//!
//! `serve` reads one [`twca_api::AnalysisRequest`] per stdin line (or
//! from `--file F`) and streams one response line per request, in input
//! order, from one warm [`twca_api::Session`]. `dist` loads a
//! linked-resource document (see [`twca_dist::parse_distributed`]) and
//! answers through the same request path (`--json` for the wire form).

use std::fmt::Write as _;
use std::io::{BufRead, Write};

use twca_api::{AnalysisRequest, Query, QueryOutcome, Session};
use twca_assign::{hill_climb, Goal, SearchConfig};
use twca_chains::{explain, AnalysisContext, AnalysisOptions, ChainAnalysis, MkConstraint};
use twca_model::{parse_system, render_dot, System};
use twca_sim::{adversarial_aligned_traces, Simulation};

/// Errors surfaced to the command line.
#[derive(Debug)]
pub enum CliError {
    /// Wrong usage; the string is the usage text to print.
    Usage(String),
    /// The input file could not be read.
    Io(std::io::Error),
    /// The system description did not parse or validate.
    Parse(twca_model::ParseError),
    /// The analysis failed.
    Analysis(twca_chains::AnalysisError),
    /// A named chain does not exist in the system.
    NoSuchChain(String),
    /// A façade-level failure (request handling, distributed analysis,
    /// budget, cancellation).
    Api(twca_api::ApiError),
    /// The conformance fuzzer found oracle violations; the string is
    /// the full report (already containing the shrunk counterexamples).
    Verify(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(u) => write!(f, "usage: {u}"),
            CliError::Io(e) => write!(f, "cannot read input: {e}"),
            CliError::Parse(e) => write!(f, "invalid system description: {e}"),
            CliError::Analysis(e) => write!(f, "analysis failed: {e}"),
            CliError::NoSuchChain(name) => write!(f, "no chain named `{name}`"),
            CliError::Api(e) => write!(f, "{e}"),
            CliError::Verify(report) => write!(f, "conformance violations found\n{report}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(value: std::io::Error) -> Self {
        CliError::Io(value)
    }
}

impl From<twca_model::ParseError> for CliError {
    fn from(value: twca_model::ParseError) -> Self {
        CliError::Parse(value)
    }
}

impl From<twca_chains::AnalysisError> for CliError {
    fn from(value: twca_chains::AnalysisError) -> Self {
        CliError::Analysis(value)
    }
}

impl From<twca_api::ApiError> for CliError {
    fn from(value: twca_api::ApiError) -> Self {
        CliError::Api(value)
    }
}

impl From<twca_dist::DistError> for CliError {
    fn from(value: twca_dist::DistError) -> Self {
        CliError::Api(value.into())
    }
}

fn load(path: &str) -> Result<System, CliError> {
    let text = std::fs::read_to_string(path)?;
    Ok(parse_system(&text)?)
}

/// Parses a `--solver` value (same names as the wire option).
fn parse_solver(value: &str) -> Result<twca_chains::SolverMode, CliError> {
    match value {
        "scheduling-points" => Ok(twca_chains::SolverMode::SchedulingPoints),
        "iterative" => Ok(twca_chains::SolverMode::Iterative),
        other => Err(CliError::Usage(format!(
            "unknown solver `{other}` (expected `scheduling-points` or `iterative`)"
        ))),
    }
}

/// Parses an `--engine` value of `twca sim` (same names as the wire
/// option).
fn parse_sim_engine(value: &str) -> Result<twca_sim::SimEngineMode, CliError> {
    match value {
        "event-queue" => Ok(twca_sim::SimEngineMode::EventQueue),
        "classic" => Ok(twca_sim::SimEngineMode::Classic),
        other => Err(CliError::Usage(format!(
            "unknown sim engine `{other}` (expected `event-queue` or `classic`)"
        ))),
    }
}

fn chain_id(system: &System, name: &str) -> Result<twca_model::ChainId, CliError> {
    system
        .chain_by_name(name)
        .map(|(id, _)| id)
        .ok_or_else(|| CliError::NoSuchChain(name.to_owned()))
}

/// `twca analyze <file>`: latency report plus `dmm(10)` per deadline
/// chain.
pub fn cmd_analyze(system: &System) -> Result<String, CliError> {
    let analysis = ChainAnalysis::new(system);
    let mut out = analysis.report().to_string();
    let _ = writeln!(out);
    for (id, chain) in system.iter() {
        if chain.deadline().is_none() {
            continue;
        }
        let dmm = analysis.deadline_miss_model(id, 10)?;
        let _ = writeln!(
            out,
            "{}: dmm(10) = {}{}",
            chain.name(),
            dmm.bound,
            if dmm.informative { "" } else { " (trivial)" }
        );
    }
    Ok(out)
}

/// `twca explain <file> <chain>`: the full derivation.
pub fn cmd_explain(system: &System, chain: &str) -> Result<String, CliError> {
    let id = chain_id(system, chain)?;
    let ctx = AnalysisContext::new(system);
    Ok(explain(&ctx, id, AnalysisOptions::default())?)
}

/// `twca dmm <file> <chain> <k>...`: miss model values with packing
/// witnesses.
pub fn cmd_dmm(system: &System, chain: &str, ks: &[u64]) -> Result<String, CliError> {
    use twca_chains::DmmSweep;
    let id = chain_id(system, chain)?;
    let ctx = AnalysisContext::new(system);
    let sweep = DmmSweep::prepare(&ctx, id, AnalysisOptions::default())?;
    let mut out = String::new();
    for &k in ks {
        match sweep.witness(k) {
            Some(witness) => out.push_str(&witness.render(system)),
            None => {
                let dmm = sweep.at(k);
                let _ = writeln!(
                    out,
                    "dmm({}) = {}{}",
                    dmm.k,
                    dmm.bound,
                    if dmm.informative { "" } else { " (trivial)" }
                );
            }
        }
    }
    Ok(out)
}

/// `twca simulate <file> [horizon]`: adversarial run vs analytic bounds.
pub fn cmd_simulate(system: &System, horizon: u64) -> Result<String, CliError> {
    let analysis = ChainAnalysis::new(system);
    let traces = adversarial_aligned_traces(system, horizon);
    let result = Simulation::new(system).run(&traces);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>10} {:>10} {:>10}",
        "chain", "instances", "max lat", "WCL", "misses"
    );
    for (id, chain) in system.iter() {
        let stats = result.chain(id);
        let wcl = analysis
            .try_worst_case_latency(id)?
            .map_or("unbounded".to_owned(), |r| r.worst_case_latency.to_string());
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>10} {:>10} {:>10}",
            chain.name(),
            stats.completed_instances(),
            stats.max_latency().map_or("-".into(), |l| l.to_string()),
            wcl,
            stats.miss_count()
        );
    }
    Ok(out)
}

/// Parsed flags of `twca sim`.
struct SimArgs {
    file: String,
    runs: u64,
    horizon: u64,
    seed: u64,
    threads: u64,
    chain: Option<String>,
    engine: Option<twca_sim::SimEngineMode>,
    json: bool,
}

impl SimArgs {
    const USAGE: &'static str = "twca sim <file> [--runs N] [--horizon H] [--seed S] \
                                 [--threads T] [--chain NAME] \
                                 [--engine event-queue|classic] [--json]";

    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut file = None;
        let mut parsed = SimArgs {
            file: String::new(),
            runs: 100,
            horizon: 100_000,
            seed: 0xD1CE,
            threads: 4,
            chain: None,
            engine: None,
            json: false,
        };
        let mut rest = args.iter();
        while let Some(arg) = rest.next() {
            let mut value_of = |flag: &str| {
                rest.next().ok_or_else(|| {
                    CliError::Usage(format!("{flag} needs a value; {}", Self::USAGE))
                })
            };
            match arg.as_str() {
                "--runs" => {
                    parsed.runs = value_of("--runs")?
                        .parse()
                        .map_err(|_| CliError::Usage("`--runs` expects a run count".into()))?;
                }
                "--horizon" => {
                    parsed.horizon = value_of("--horizon")?
                        .parse()
                        .map_err(|_| CliError::Usage("`--horizon` expects a time bound".into()))?;
                }
                "--seed" => {
                    parsed.seed = value_of("--seed")?
                        .parse()
                        .map_err(|_| CliError::Usage("`--seed` expects an integer".into()))?;
                }
                "--threads" => {
                    parsed.threads = value_of("--threads")?.parse().map_err(|_| {
                        CliError::Usage("`--threads` expects a worker count".into())
                    })?;
                }
                "--chain" => parsed.chain = Some(value_of("--chain")?.clone()),
                "--engine" => parsed.engine = Some(parse_sim_engine(value_of("--engine")?)?),
                "--json" => parsed.json = true,
                flag if flag.starts_with("--") => {
                    return Err(CliError::Usage(format!(
                        "unknown sim flag `{flag}`; {}",
                        Self::USAGE
                    )));
                }
                value if file.is_none() => file = Some(value.to_owned()),
                _ => return Err(CliError::Usage(format!("too many files; {}", Self::USAGE))),
            }
        }
        parsed.file = file.ok_or_else(|| CliError::Usage(Self::USAGE.into()))?;
        Ok(parsed)
    }
}

/// `twca sim`: Monte Carlo simulation through the façade — per-chain
/// empirical miss rates with 95% confidence intervals, pooled over
/// `--runs` seeded runs fanned across `--threads` workers. The report
/// is deterministic in the seed at any thread count; `--engine classic`
/// selects the retained reference core (bit-identical by construction).
///
/// # Errors
///
/// Returns [`CliError`] for bad flags, unreadable files and façade
/// failures (parse errors, unknown chains).
pub fn cmd_sim(args: &[String]) -> Result<String, CliError> {
    let parsed = SimArgs::parse(args)?;
    let text = std::fs::read_to_string(&parsed.file)?;
    let mut request = AnalysisRequest::for_system(text).with_query(Query::Simulate {
        chain: parsed.chain.clone(),
        runs: parsed.runs,
        horizon: parsed.horizon,
        seed: parsed.seed,
        threads: parsed.threads,
    });
    if let Some(engine) = parsed.engine {
        request = request.with_options(twca_api::RequestOptions {
            sim_engine: Some(engine),
            ..Default::default()
        });
    }
    let response = Session::new().analyze(&request);
    if parsed.json {
        return Ok(format!("{}\n", response.to_json()));
    }
    let outcomes = response.outcome.map_err(CliError::Api)?;
    let QueryOutcome::Simulate(sim) = &outcomes[0] else {
        unreachable!("a simulate query answers with a simulate outcome");
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} run(s), horizon {}, seed {}",
        sim.runs, sim.horizon, sim.seed
    );
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>8} {:>10} {:>19} {:>8}",
        "chain", "instances", "misses", "rate(ppm)", "95% CI (ppm)", "max lat"
    );
    for row in &sim.chains {
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>8} {:>10} {:>19} {:>8}",
            row.name,
            row.instances,
            row.misses,
            row.miss_rate_ppm,
            format!("[{}, {}]", row.ci_low_ppm, row.ci_high_ppm),
            row.max_latency.map_or("-".into(), |l| l.to_string()),
        );
    }
    Ok(out)
}

/// `twca dot <file>`: Graphviz export.
pub fn cmd_dot(system: &System) -> Result<String, CliError> {
    Ok(render_dot(system))
}

/// `twca gantt <file> [horizon]`: adversarial simulation rendered as a
/// textual Gantt trace (one line per execution span).
pub fn cmd_gantt(system: &System, horizon: u64) -> Result<String, CliError> {
    let traces = adversarial_aligned_traces(system, horizon);
    let result = Simulation::new(system)
        .with_execution_trace(true)
        .run(&traces);
    let trace = result
        .execution_trace()
        .expect("trace recording was enabled");
    let names: Vec<&str> = system.chains().iter().map(|c| c.name()).collect();
    Ok(trace.render(&names))
}

/// `twca report <file>`: Markdown analysis report (latencies, verdicts,
/// miss-model curve per deadline chain).
pub fn cmd_report(system: &System) -> Result<String, CliError> {
    use twca_report::{Align, Document, Table};
    let analysis = ChainAnalysis::new(system);
    let report = analysis.report();

    let mut doc = Document::new("TWCA analysis report");
    doc.section("Worst-case latencies");
    let mut latencies = Table::new();
    latencies.column("chain", Align::Left);
    latencies.column("WCL", Align::Right);
    latencies.column("typical WCL", Align::Right);
    latencies.column("D", Align::Right);
    latencies.column("verdict", Align::Left);
    for row in &report.rows {
        let verdict = match row.schedulable() {
            Some(true) => "schedulable",
            Some(false) if row.typically_schedulable() == Some(true) => "weakly hard",
            Some(false) => "unschedulable",
            None => {
                if row.overload {
                    "overload"
                } else {
                    "no deadline"
                }
            }
        };
        latencies.row([
            row.name.clone(),
            row.worst_case_latency
                .map_or("unbounded".into(), |v| v.to_string()),
            row.typical_latency
                .map_or("unbounded".into(), |v| v.to_string()),
            row.deadline.map_or("-".into(), |v| v.to_string()),
            verdict.to_owned(),
        ]);
    }
    doc.table(&latencies);

    doc.section("Deadline miss models");
    let ks = [1u64, 5, 10, 25, 50, 100];
    let mut misses = Table::new();
    misses.column("chain", Align::Left);
    for k in ks {
        misses.column(format!("dmm({k})"), Align::Right);
    }
    for (id, chain) in system.iter() {
        if chain.deadline().is_none() {
            continue;
        }
        let mut cells = vec![chain.name().to_owned()];
        for dmm in analysis.dmm_curve(id, &ks)? {
            cells.push(dmm.bound.to_string());
        }
        misses.row(cells);
    }
    if misses.is_empty() {
        doc.paragraph("No chain declares a deadline.");
    } else {
        doc.table(&misses);
    }
    Ok(doc.to_markdown())
}

/// `twca synthesize <file> <m> <k>`: search priorities under which every
/// deadline chain satisfies `(m, k)`.
pub fn cmd_synthesize(system: &System, m: u64, k: u64) -> Result<String, CliError> {
    let goals: Vec<Goal> = system
        .iter()
        .filter(|(_, c)| c.deadline().is_some())
        .map(|(_, c)| Goal::new(c.name(), MkConstraint::new(m, k)))
        .collect();
    let outcome = hill_climb(
        system,
        &goals,
        &SearchConfig {
            evaluations: 500,
            restarts: 5,
            ..SearchConfig::default()
        },
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "evaluated {} assignments; best: {} violated goal(s), total dmm {}",
        outcome.evaluated, outcome.best_score.violated_goals, outcome.best_score.total_miss_bound
    );
    let synthesized = system.with_priorities(&outcome.best_priorities);
    for r in synthesized.task_refs() {
        let t = synthesized.task(r);
        let _ = writeln!(out, "{} -> priority {}", t.name(), t.priority().level());
    }
    if outcome.best_score.violated_goals == 0 {
        let _ = writeln!(out, "all ({m}, {k}) goals satisfied");
    } else {
        let _ = writeln!(out, "no fully satisfying assignment found");
    }
    Ok(out)
}

/// Parsed flags of `twca batch`.
struct BatchArgs {
    files: Vec<String>,
    generate: usize,
    seed: u64,
    profile: Option<twca_gen::StressProfile>,
    threads: Option<usize>,
    serial: bool,
    ks: Vec<u64>,
    json: bool,
    progress: bool,
    horizon: u64,
    max_q: u64,
    solver: twca_chains::SolverMode,
}

impl BatchArgs {
    const USAGE: &'static str = "twca batch [files...] [--gen N] [--seed S] [--profile P] \
                                 [--threads T] [--serial] [--k K1,K2,...] [--horizon H] \
                                 [--max-q Q] [--solver scheduling-points|iterative] [--json] \
                                 [--progress]";

    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut parsed = BatchArgs {
            files: Vec::new(),
            generate: 0,
            seed: 42,
            profile: None,
            threads: None,
            serial: false,
            ks: vec![1, 10, 100],
            json: false,
            progress: false,
            // Batch sweeps meet adversarial random systems: bound the
            // divergence search much tighter than the single-system
            // default (divergent fixed points crawl to the horizon).
            horizon: 2_000_000,
            max_q: 20_000,
            solver: twca_chains::SolverMode::default(),
        };
        let mut rest = args.iter();
        while let Some(arg) = rest.next() {
            let mut value_of = |flag: &str| {
                rest.next().ok_or_else(|| {
                    CliError::Usage(format!("{flag} needs a value; {}", Self::USAGE))
                })
            };
            match arg.as_str() {
                "--gen" => {
                    parsed.generate = value_of("--gen")?
                        .parse()
                        .map_err(|_| CliError::Usage("`--gen` expects a system count".into()))?;
                }
                "--seed" => {
                    parsed.seed = value_of("--seed")?
                        .parse()
                        .map_err(|_| CliError::Usage("`--seed` expects an integer".into()))?;
                }
                "--profile" => {
                    parsed.profile = Some(value_of("--profile")?.parse().map_err(CliError::Usage)?);
                }
                "--threads" => {
                    parsed.threads = Some(value_of("--threads")?.parse().map_err(|_| {
                        CliError::Usage("`--threads` expects a worker count".into())
                    })?);
                }
                "--k" => {
                    parsed.ks = value_of("--k")?
                        .split(',')
                        .map(|s| {
                            s.trim().parse().map_err(|_| {
                                CliError::Usage(format!("`{s}` is not a window length"))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                }
                "--horizon" => {
                    parsed.horizon = value_of("--horizon")?
                        .parse()
                        .map_err(|_| CliError::Usage("`--horizon` expects a time bound".into()))?;
                }
                "--max-q" => {
                    parsed.max_q = value_of("--max-q")?.parse().map_err(|_| {
                        CliError::Usage("`--max-q` expects an activation count".into())
                    })?;
                }
                "--solver" => parsed.solver = parse_solver(value_of("--solver")?)?,
                "--serial" => parsed.serial = true,
                "--json" => parsed.json = true,
                "--progress" => parsed.progress = true,
                flag if flag.starts_with("--") => {
                    return Err(CliError::Usage(format!(
                        "unknown batch flag `{flag}`; {}",
                        Self::USAGE
                    )));
                }
                file => parsed.files.push(file.to_owned()),
            }
        }
        if parsed.files.is_empty() && parsed.generate == 0 {
            return Err(CliError::Usage(format!(
                "batch needs input files or --gen; {}",
                Self::USAGE
            )));
        }
        Ok(parsed)
    }
}

/// `twca batch`: fan a whole set of systems out across cores through the
/// [`twca_engine::BatchEngine`], with shared busy-window memoization.
///
/// Inputs are system description files and/or `--gen N` reproducibly
/// generated random systems. Output is a per-system summary table, or a
/// JSON document with `--json`. `--serial` forces the single-threaded
/// reference path (bit-identical results, for comparison).
///
/// # Errors
///
/// Returns [`CliError`] for bad flags, unreadable files and parse
/// failures; per-chain analysis failures are reported inline.
pub fn cmd_batch(args: &[String]) -> Result<String, CliError> {
    use rand::SeedableRng as _;

    let parsed = BatchArgs::parse(args)?;
    let mut labels = Vec::new();
    let mut systems = Vec::new();
    for file in &parsed.files {
        labels.push(file.clone());
        systems.push(load(file)?);
    }
    if parsed.generate > 0 {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(parsed.seed);
        let profile = parsed.profile.unwrap_or(twca_gen::StressProfile::Baseline);
        for i in 0..parsed.generate {
            labels.push(format!("gen-{i}"));
            systems.push(
                twca_gen::random_stress_system(&mut rng, profile)
                    .expect("built-in profiles are valid"),
            );
        }
    }

    let options = twca_chains::AnalysisOptions {
        horizon: parsed.horizon,
        max_q: parsed.max_q,
        solver: parsed.solver,
        ..twca_chains::AnalysisOptions::default()
    };
    // One façade session owns the cache and options; the engine is a
    // thread fan-out over it.
    let session = Session::new().with_options(options);
    let mut engine =
        twca_engine::BatchEngine::from_session(session).with_ks(parsed.ks.iter().copied());
    if let Some(threads) = parsed.threads {
        engine = engine.with_threads(threads);
    }
    if parsed.serial {
        engine = engine.with_threads(1);
    }
    if parsed.progress {
        engine = engine.with_progress(|done, total| {
            eprintln!("batch: {done}/{total} systems analyzed");
        });
    }
    let batch = if parsed.serial {
        engine.run_serial(systems)
    } else {
        engine.run(systems)
    };

    if parsed.json {
        return Ok(twca_engine::batch_to_json(
            &batch,
            Some(engine.cache_stats()),
        ));
    }

    let mut out = String::new();
    for verdict in &batch {
        let _ = writeln!(out, "== {}", labels[verdict.index]);
        for chain in &verdict.chains {
            let wcl = chain
                .worst_case_latency
                .map_or("unbounded".to_owned(), |v| v.to_string());
            let mut dmms = String::new();
            for dmm in &chain.miss_models {
                let _ = write!(dmms, " dmm({})={}", dmm.k, dmm.bound);
            }
            if let Some(error) = &chain.error {
                let _ = write!(dmms, " error: {error}");
            }
            let _ = writeln!(
                out,
                "  {:<16} WCL {:>10}{}{}",
                chain.name,
                wcl,
                if chain.overload { " [overload]" } else { "" },
                dmms
            );
        }
    }
    let stats = engine.cache_stats();
    let _ = writeln!(
        out,
        "analyzed {} system(s) on {} thread(s); cache: {} hits / {} misses ({:.0}% hit rate, {} entries)",
        batch.len(),
        if parsed.serial { 1 } else { engine.effective_threads() },
        stats.hits,
        stats.misses,
        stats.hit_ratio() * 100.0,
        stats.entries
    );
    Ok(out)
}

/// Parsed flags of `twca serve`.
struct ServeArgs {
    file: Option<String>,
    budget: Option<u64>,
    horizon: Option<u64>,
    max_q: Option<u64>,
    solver: Option<twca_chains::SolverMode>,
    listen: Option<String>,
    workers: Option<usize>,
    queue: Option<usize>,
    deadline_ms: Option<u64>,
    cache_entries: Option<u64>,
    cache_bytes: Option<u64>,
    store_dir: Option<String>,
    read_timeout_ms: Option<u64>,
    idle_timeout_ms: Option<u64>,
    write_buffer: Option<usize>,
}

impl ServeArgs {
    const USAGE: &'static str = "twca serve [--file F] [--budget UNITS] [--horizon H] [--max-q Q] \
                                 [--solver scheduling-points|iterative] [--listen ADDR] \
                                 [--workers N] [--queue N] [--deadline-ms MS] \
                                 [--read-timeout MS] [--idle-timeout MS] [--write-buffer BYTES] \
                                 [--cache-entries N] [--cache-bytes B] [--store-dir DIR]";

    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut parsed = ServeArgs {
            file: None,
            budget: None,
            horizon: None,
            max_q: None,
            solver: None,
            listen: None,
            workers: None,
            queue: None,
            deadline_ms: None,
            cache_entries: None,
            cache_bytes: None,
            store_dir: None,
            read_timeout_ms: None,
            idle_timeout_ms: None,
            write_buffer: None,
        };
        let mut rest = args.iter();
        while let Some(arg) = rest.next() {
            let mut value_of = |flag: &str| {
                rest.next().ok_or_else(|| {
                    CliError::Usage(format!("{flag} needs a value; {}", Self::USAGE))
                })
            };
            match arg.as_str() {
                "--file" => parsed.file = Some(value_of("--file")?.clone()),
                "--budget" => {
                    parsed.budget =
                        Some(value_of("--budget")?.parse().map_err(|_| {
                            CliError::Usage("`--budget` expects a unit count".into())
                        })?);
                }
                "--horizon" => {
                    parsed.horizon =
                        Some(value_of("--horizon")?.parse().map_err(|_| {
                            CliError::Usage("`--horizon` expects a time bound".into())
                        })?);
                }
                "--max-q" => {
                    parsed.max_q = Some(value_of("--max-q")?.parse().map_err(|_| {
                        CliError::Usage("`--max-q` expects an activation count".into())
                    })?);
                }
                "--solver" => parsed.solver = Some(parse_solver(value_of("--solver")?)?),
                "--listen" => parsed.listen = Some(value_of("--listen")?.clone()),
                "--workers" => {
                    parsed.workers = Some(value_of("--workers")?.parse().map_err(|_| {
                        CliError::Usage("`--workers` expects a thread count".into())
                    })?);
                }
                "--queue" => {
                    parsed.queue = Some(value_of("--queue")?.parse().map_err(|_| {
                        CliError::Usage("`--queue` expects a queue capacity".into())
                    })?);
                }
                "--deadline-ms" => {
                    parsed.deadline_ms =
                        Some(value_of("--deadline-ms")?.parse().map_err(|_| {
                            CliError::Usage("`--deadline-ms` expects milliseconds".into())
                        })?);
                }
                "--cache-entries" => {
                    parsed.cache_entries =
                        Some(value_of("--cache-entries")?.parse().map_err(|_| {
                            CliError::Usage("`--cache-entries` expects an entry count".into())
                        })?);
                }
                "--cache-bytes" => {
                    parsed.cache_bytes =
                        Some(value_of("--cache-bytes")?.parse().map_err(|_| {
                            CliError::Usage("`--cache-bytes` expects a byte budget".into())
                        })?);
                }
                "--store-dir" => parsed.store_dir = Some(value_of("--store-dir")?.clone()),
                "--read-timeout" => {
                    parsed.read_timeout_ms =
                        Some(value_of("--read-timeout")?.parse().map_err(|_| {
                            CliError::Usage("`--read-timeout` expects milliseconds".into())
                        })?);
                }
                "--idle-timeout" => {
                    parsed.idle_timeout_ms =
                        Some(value_of("--idle-timeout")?.parse().map_err(|_| {
                            CliError::Usage("`--idle-timeout` expects milliseconds".into())
                        })?);
                }
                "--write-buffer" => {
                    parsed.write_buffer =
                        Some(value_of("--write-buffer")?.parse().map_err(|_| {
                            CliError::Usage("`--write-buffer` expects a byte budget".into())
                        })?);
                }
                flag => {
                    return Err(CliError::Usage(format!(
                        "unknown serve flag `{flag}`; {}",
                        Self::USAGE
                    )));
                }
            }
        }
        Ok(parsed)
    }

    fn session(&self) -> Session {
        let defaults = twca_chains::AnalysisOptions::default();
        let mut session = Session::new().with_options(twca_chains::AnalysisOptions {
            horizon: self.horizon.unwrap_or(defaults.horizon),
            max_q: self.max_q.unwrap_or(defaults.max_q),
            solver: self.solver.unwrap_or(defaults.solver),
            ..defaults
        });
        if let Some(budget) = self.budget {
            session = session.with_default_budget(budget);
        }
        if self.cache_entries.is_some() || self.cache_bytes.is_some() {
            session = session.with_cache(std::sync::Arc::new(
                twca_chains::AnalysisCache::with_capacity(twca_chains::CacheCapacity {
                    max_entries: self.cache_entries,
                    max_bytes: self.cache_bytes,
                }),
            ));
        }
        session
    }

    /// Opens the durable store behind `--store-dir`, if requested:
    /// recovery (snapshot + journal replay, torn tail repaired) runs
    /// here, before the server accepts a single request.
    fn durable_store(
        &self,
    ) -> Result<
        Option<(
            std::sync::Arc<twca_api::SystemStore>,
            twca_api::RecoveryReport,
        )>,
        CliError,
    > {
        let Some(dir) = &self.store_dir else {
            return Ok(None);
        };
        let io = std::sync::Arc::new(twca_api::DirIo::open(dir).map_err(twca_api::ApiError::from)?);
        let (store, report) =
            twca_api::SystemStore::durable(io, twca_api::PersistPolicy::default())?;
        Ok(Some((std::sync::Arc::new(store), report)))
    }

    fn service_config(&self) -> twca_service::ServiceConfig {
        let defaults = twca_service::ServiceConfig::default();
        twca_service::ServiceConfig {
            workers: self.workers.unwrap_or(defaults.workers),
            queue_capacity: self.queue.unwrap_or(defaults.queue_capacity),
            deadline: self.deadline_ms.map(std::time::Duration::from_millis),
            max_frame_bytes: defaults.max_frame_bytes,
            read_timeout: self.read_timeout_ms.map(std::time::Duration::from_millis),
            idle_timeout: self.idle_timeout_ms.map(std::time::Duration::from_millis),
            write_timeout: defaults.write_timeout,
            write_buffer_bytes: self.write_buffer.unwrap_or(defaults.write_buffer_bytes),
        }
    }
}

fn render_serve_summary(
    summary: &twca_api::ServeSummary,
    stats: twca_chains::CacheStats,
    persist: Option<(twca_api::PersistStats, twca_api::RecoveryReport)>,
) -> String {
    // The first line is load-bearing: scripts (and the smoke test) key
    // on its `served N request(s), M error(s)` prefix.
    let mut out = format!(
        "served {} request(s), {} error(s); cache: {} hits / {} misses \
         ({} entries, {} evicted, ~{} KiB resident)\n",
        summary.requests,
        summary.errors,
        stats.hits,
        stats.misses,
        stats.entries,
        stats.evictions,
        stats.resident_bytes_est / 1024
    );
    if summary.latency.count > 0 {
        let _ = writeln!(
            out,
            "latency: min {} µs / mean {} µs / max {} µs over {} timed request(s)",
            summary.latency.min_ns / 1_000,
            summary.latency.mean_ns() / 1_000,
            summary.latency.max_ns / 1_000,
            summary.latency.count
        );
    }
    if !summary.edge.is_empty() {
        let _ = writeln!(
            out,
            "edge: {} connection(s) open, queue depth peak {}; {} reaped, {} timeout(s), \
             {} reset(s), {} slow consumer(s)",
            summary.edge.open_connections,
            summary.edge.queue_depth_peak,
            summary.edge.reaped,
            summary.edge.timeouts,
            summary.edge.resets,
            summary.edge.slow_consumers
        );
    }
    if let Some((stats, recovery)) = persist {
        let _ = writeln!(
            out,
            "persist: {} journal append(s) ({} bytes, {} fsync(s)), {} snapshot(s); \
             recovered {} entr{} ({} replayed, {} skipped, {} torn byte(s) truncated)",
            stats.journal_appends,
            stats.journal_bytes,
            stats.journal_syncs,
            stats.snapshots_written,
            recovery.entries,
            if recovery.entries == 1 { "y" } else { "ies" },
            recovery.replayed,
            recovery.skipped,
            recovery.truncated_bytes
        );
    }
    out
}

/// `twca serve`: the long-lived JSON-Lines analysis loop over explicit
/// input/output streams — one request per line in, one response per
/// line out, in input order, all answered from one warm
/// [`Session`]. The binary wires this to stdin/stdout; tests to
/// buffers.
///
/// With `--listen ADDR` the same session instead backs a
/// [`twca_service::WorkerPool`] shared by a TCP front end and the stdio
/// lane: `--workers` sizes the pool, `--queue` bounds the pending
/// queue (overflow draws typed `overloaded` errors), `--deadline-ms`
/// cancels requests that outlive their deadline. End-of-input on the
/// stdio lane triggers a graceful drain of the whole server, so
/// holding stdin open (e.g. a FIFO) keeps the server up.
///
/// With `--store-dir DIR` the session's system store is durable:
/// every `store_put` is journaled to `DIR` before it is acknowledged,
/// recovery (snapshot + journal replay) runs before the server
/// accepts requests, and the drain flushes a fresh snapshot. The
/// drain summary grows a `persist:` line with the journal, snapshot
/// and recovery counters (also live in the `stats` wire query).
///
/// # Errors
///
/// Returns [`CliError`] for bad flags and stream I/O failures; parse
/// and analysis failures are streamed as JSON error responses instead.
pub fn cmd_serve(
    args: &[String],
    input: impl BufRead,
    output: impl Write,
) -> Result<String, CliError> {
    let parsed = ServeArgs::parse(args)?;
    let mut session = parsed.session();
    let recovery = match parsed.durable_store()? {
        None => None,
        Some((store, report)) => {
            eprintln!(
                "recovered store from {}: {} entr{} ({} journal record(s) replayed, \
                 {} skipped, {} torn byte(s) truncated)",
                parsed.store_dir.as_deref().unwrap_or("."),
                report.entries,
                if report.entries == 1 { "y" } else { "ies" },
                report.replayed,
                report.skipped,
                report.truncated_bytes
            );
            session = session.with_store(store);
            Some(report)
        }
    };
    // Held across the serve loop so the drain path can flush the
    // durable store and report its counters after the session moved
    // into the server.
    let store = session.store();
    // On drain: force a snapshot so a clean shutdown restarts from a
    // snapshot instead of a journal replay. A flush failure keeps the
    // journal intact (nothing acknowledged is lost), so warn and keep
    // the summary.
    let flush_on_drain = |store: &twca_api::SystemStore| {
        if recovery.is_some() {
            if let Err(error) = store.flush() {
                eprintln!("warning: flush on drain failed: {error}");
            }
        }
    };
    if let Some(addr) = &parsed.listen {
        let cache = session.cache();
        let config = parsed.service_config();
        let server = twca_service::TcpServer::start(addr.as_str(), session, &config)?;
        eprintln!(
            "listening on {} with {} worker(s), queue {}",
            server.local_addr(),
            config.workers,
            config.queue_capacity
        );
        // The stdio lane feeds the same pool; responses to it go to
        // real stdout (the generic `output` need not be Send). EOF on
        // the lane is the drain signal.
        match &parsed.file {
            Some(path) => {
                let file = std::fs::File::open(path)?;
                twca_service::serve_connection(
                    server.pool(),
                    std::io::BufReader::new(file),
                    Box::new(std::io::stdout()),
                    server.max_frame_bytes(),
                );
            }
            None => twca_service::serve_connection(
                server.pool(),
                input,
                Box::new(std::io::stdout()),
                server.max_frame_bytes(),
            ),
        }
        let summary = server.shutdown(std::time::Duration::from_secs(30));
        flush_on_drain(&store);
        let persist = recovery.map(|report| (store.persist_stats(), report));
        return Ok(render_serve_summary(&summary, cache.stats(), persist));
    }
    let summary = match &parsed.file {
        Some(path) => {
            let file = std::fs::File::open(path)?;
            twca_api::serve(&session, std::io::BufReader::new(file), output)?
        }
        None => twca_api::serve(&session, input, output)?,
    };
    flush_on_drain(&store);
    let stats = session.cache_stats();
    let persist = recovery.map(|report| (store.persist_stats(), report));
    Ok(render_serve_summary(&summary, stats, persist))
}

/// `twca loadgen`: drives the TCP server with a deterministic corpus —
/// `--streams` logical request streams of `--requests` requests each,
/// multiplexed over `--connections` sockets — and reports throughput
/// and p50/p95/p99 tail latency. `--expect-clean` fails (non-zero
/// exit) unless every request came back successful: no errors, no
/// `overloaded` rejections, no lost responses.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for bad flags, [`CliError::Io`] when
/// the server cannot be reached, and [`CliError::Verify`] with the
/// report when `--expect-clean` saw failures.
pub fn cmd_loadgen(args: &[String]) -> Result<String, CliError> {
    const USAGE: &str = "twca loadgen --connect ADDR [--streams K] [--requests N] \
                         [--connections C] [--mix chain|dist|mixed|store] [--seed S] \
                         [--retry N] [--reset-ppm P] [--server-stats] [--json] \
                         [--expect-clean]";
    let mut addr: Option<String> = None;
    let mut config = twca_service::LoadgenConfig::default();
    let mut json = false;
    let mut expect_clean = false;
    let mut rest = args.iter();
    while let Some(arg) = rest.next() {
        let mut value_of = |flag: &str| {
            rest.next()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value; {USAGE}")))
        };
        match arg.as_str() {
            "--connect" => addr = Some(value_of("--connect")?.clone()),
            "--streams" => {
                config.streams = value_of("--streams")?
                    .parse()
                    .map_err(|_| CliError::Usage("`--streams` expects a count".into()))?;
            }
            "--requests" => {
                config.requests_per_stream = value_of("--requests")?
                    .parse()
                    .map_err(|_| CliError::Usage("`--requests` expects a count".into()))?;
            }
            "--connections" => {
                config.connections = value_of("--connections")?
                    .parse()
                    .map_err(|_| CliError::Usage("`--connections` expects a count".into()))?;
            }
            "--mix" => {
                let name = value_of("--mix")?;
                config.mix = twca_service::RequestMix::parse(name).ok_or_else(|| {
                    CliError::Usage(format!(
                        "`--mix` must be chain, dist, mixed or store, not `{name}`"
                    ))
                })?;
            }
            "--seed" => {
                config.seed = value_of("--seed")?
                    .parse()
                    .map_err(|_| CliError::Usage("`--seed` expects an integer".into()))?;
            }
            "--retry" => {
                let attempts = value_of("--retry")?
                    .parse()
                    .map_err(|_| CliError::Usage("`--retry` expects an attempt count".into()))?;
                config.retry = Some(twca_service::RetryPolicy::with_attempts(attempts));
            }
            "--reset-ppm" => {
                config.reset_ppm = value_of("--reset-ppm")?.parse().map_err(|_| {
                    CliError::Usage("`--reset-ppm` expects parts-per-million".into())
                })?;
            }
            "--server-stats" => config.fetch_stats = true,
            "--json" => json = true,
            "--expect-clean" => expect_clean = true,
            flag => {
                return Err(CliError::Usage(format!(
                    "unknown loadgen flag `{flag}`; {USAGE}"
                )));
            }
        }
    }
    let addr = addr.ok_or_else(|| CliError::Usage(USAGE.into()))?;
    let report = twca_service::run_loadgen(addr.as_str(), &config)?;
    if expect_clean && report.ok != report.requests {
        return Err(CliError::Verify(format!(
            "loadgen expected a clean run but saw failures:\n{}",
            report.render()
        )));
    }
    if json {
        return Ok(format!("{}\n", report.to_json()));
    }
    Ok(report.render())
}

/// `twca chaos`: hurls seeded transport chaos at a *running* server
/// over real TCP — per schedule, a client whose write side injects
/// delays, partial writes, and mid-stream resets (plus occasional
/// abrupt early closes) — then verifies the edge stayed live and
/// truthful: every complete response is typed, no connection wedges
/// past its deadline, and a final clean probe on a fresh connection
/// still gets an ok answer.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for bad flags, [`CliError::Io`] when
/// the server cannot be reached at all, and [`CliError::Verify`]
/// (non-zero exit) when any liveness or typed-response invariant
/// breaks.
pub fn cmd_chaos(args: &[String]) -> Result<String, CliError> {
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::net::{Shutdown, TcpStream};
    use std::sync::Arc;
    use std::time::Duration;

    const USAGE: &str = "twca chaos --connect ADDR [--schedules N] [--seed S]";
    let mut addr: Option<String> = None;
    let mut schedules: u64 = 20;
    let mut seed: u64 = 0xC4A0;
    let mut rest = args.iter();
    while let Some(arg) = rest.next() {
        let mut value_of = |flag: &str| {
            rest.next()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value; {USAGE}")))
        };
        match arg.as_str() {
            "--connect" => addr = Some(value_of("--connect")?.clone()),
            "--schedules" => {
                schedules = value_of("--schedules")?
                    .parse()
                    .map_err(|_| CliError::Usage("`--schedules` expects a count".into()))?;
            }
            "--seed" => {
                seed = value_of("--seed")?
                    .parse()
                    .map_err(|_| CliError::Usage("`--seed` expects an integer".into()))?;
            }
            flag => {
                return Err(CliError::Usage(format!(
                    "unknown chaos flag `{flag}`; {USAGE}"
                )));
            }
        }
    }
    let addr = addr.ok_or_else(|| CliError::Usage(USAGE.into()))?;

    let request = |id: String| {
        format!(
            "{{\"id\": \"{id}\", \"system\": \"chain c periodic=100 deadline=100 \
             {{ task t prio=1 wcet=10 }}\"}}\n"
        )
    };
    let mut violations: Vec<String> = Vec::new();
    let tally = Arc::new(twca_service::ChaosTally::new());
    let mut early_closes = 0u64;
    for schedule in 0..schedules {
        let schedule_seed = seed.wrapping_add(schedule.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let stream = TcpStream::connect(addr.as_str())?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let reader = stream.try_clone()?;
        let mut writer = twca_service::ChaosWrite::new(
            stream.try_clone()?,
            Arc::new(twca_service::FaultPlan::fuzzed_write(schedule_seed, 32)),
            Arc::clone(&tally),
        );
        // Every 4th schedule hangs up abruptly mid-stream: the server
        // must absorb the reset and keep serving everyone else.
        let early_close = schedule % 4 == 3;
        let mut sent = 0usize;
        for index in 0..4usize {
            let line = request(format!("c{schedule}-{index}"));
            if writer.write_all(line.as_bytes()).is_err() {
                break; // an injected reset tore the stream; fine
            }
            sent += 1;
            if early_close && index == 1 {
                break;
            }
        }
        if early_close {
            early_closes += 1;
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        let _ = stream.shutdown(Shutdown::Write);
        let mut reader = BufReader::new(reader);
        let mut line = String::new();
        let mut answered = 0usize;
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {
                    if twca_api::Json::parse(&line)
                        .ok()
                        .and_then(|json| twca_api::AnalysisResponse::from_json(&json).ok())
                        .is_none()
                    {
                        violations.push(format!("schedule {schedule}: untyped response: {line:?}"));
                    }
                    answered += 1;
                }
                Err(e) => {
                    violations.push(format!(
                        "schedule {schedule}: the server wedged after {answered} of {sent} \
                         response(s): {e}"
                    ));
                    break;
                }
            }
        }
    }

    // The liveness probe: after all that, a fresh well-behaved client
    // still gets a prompt, typed, successful answer.
    let mut probe = TcpStream::connect(addr.as_str())?;
    probe.set_read_timeout(Some(Duration::from_secs(10)))?;
    probe.write_all(request("probe".into()).as_bytes())?;
    probe.shutdown(Shutdown::Write)?;
    let mut response = String::new();
    let mut ok = false;
    if BufReader::new(&mut probe).read_line(&mut response).is_ok() {
        ok = twca_api::Json::parse(&response)
            .ok()
            .and_then(|json| twca_api::AnalysisResponse::from_json(&json).ok())
            .is_some_and(|r| r.outcome.is_ok());
    }
    if !ok {
        violations.push(format!(
            "the post-chaos liveness probe failed: {response:?}"
        ));
    }

    let report = format!(
        "chaos: {schedules} schedule(s) against {addr}: {} delay(s), {} short write(s), \
         {} injected reset(s), {early_closes} early close(s); liveness probe {}\n",
        tally.delays(),
        tally.shorts(),
        tally.resets(),
        if ok { "ok" } else { "FAILED" }
    );
    if violations.is_empty() {
        Ok(report)
    } else {
        Err(CliError::Verify(format!(
            "{report}{} chaos violation(s), first: {}",
            violations.len(),
            violations[0]
        )))
    }
}

/// `twca dist <file> [--k K1,K2,...] [--path r/c,r/c,...] [--json]`:
/// loads a linked-resource document, runs the holistic analysis through
/// the façade, and reports per-site bounds (plus optional end-to-end
/// path bounds) — as a table, or as the wire-format response with
/// `--json`.
///
/// # Errors
///
/// Returns [`CliError`] for bad flags and unreadable files; malformed
/// documents surface as typed [`twca_api::ApiError`]s, never panics.
pub fn cmd_dist(args: &[String]) -> Result<String, CliError> {
    const USAGE: &str = "twca dist <file> [--k K1,K2,...] [--path r/c,r/c,...] [--json]";
    let mut file = None;
    let mut ks: Vec<u64> = vec![1, 10, 100];
    let mut path: Option<Vec<twca_api::SiteSpec>> = None;
    let mut json = false;
    let mut rest = args.iter();
    while let Some(arg) = rest.next() {
        let mut value_of = |flag: &str| {
            rest.next()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value; {USAGE}")))
        };
        match arg.as_str() {
            "--k" => {
                ks = value_of("--k")?
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse()
                            .map_err(|_| CliError::Usage(format!("`{t}` is not a window length")))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--path" => {
                path = Some(
                    value_of("--path")?
                        .split(',')
                        .map(|t| twca_api::SiteSpec::parse(t.trim()).map_err(CliError::Api))
                        .collect::<Result<_, _>>()?,
                );
            }
            "--json" => json = true,
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!(
                    "unknown dist flag `{flag}`; {USAGE}"
                )));
            }
            value if file.is_none() => file = Some(value.to_owned()),
            _ => return Err(CliError::Usage(format!("too many files; {USAGE}"))),
        }
    }
    let file = file.ok_or_else(|| CliError::Usage(USAGE.into()))?;
    let text = std::fs::read_to_string(&file)?;

    let mut request = AnalysisRequest::for_dist_text(text)
        .with_query(Query::Latency { chain: None })
        .with_query(Query::Dmm {
            chain: None,
            ks: ks.clone(),
        });
    if let Some(hops) = path {
        request = request.with_query(Query::Path { hops, ks });
    }
    let response = Session::new().analyze(&request);
    if json {
        return Ok(format!("{}\n", response.to_json()));
    }

    let outcomes = response.outcome.map_err(CliError::Api)?;
    let mut out = String::new();
    for outcome in &outcomes {
        match outcome {
            QueryOutcome::Latency(rows) => {
                let _ = writeln!(
                    out,
                    "{:<24} {:>10} {:>10} {:>10}",
                    "site", "WCL", "D", "verdict"
                );
                for row in rows {
                    let verdict = match (row.worst_case_latency, row.deadline) {
                        (Some(wcl), Some(d)) if wcl <= d => "schedulable",
                        (Some(_), Some(_)) => "weakly hard",
                        (None, _) => "unbounded",
                        _ if row.overload => "overload",
                        _ => "no deadline",
                    };
                    let _ = writeln!(
                        out,
                        "{:<24} {:>10} {:>10} {:>10}",
                        row.name,
                        row.worst_case_latency
                            .map_or("unbounded".into(), |v| v.to_string()),
                        row.deadline.map_or("-".into(), |v| v.to_string()),
                        verdict
                    );
                }
            }
            QueryOutcome::Dmm(rows) => {
                for row in rows {
                    let mut line = String::new();
                    for p in &row.points {
                        let _ = write!(line, " dmm({})={}", p.k, p.bound);
                    }
                    if let Some(error) = &row.error {
                        let _ = write!(line, " error: {error}");
                    }
                    let _ = writeln!(out, "{:<24}{}", row.name, line);
                }
            }
            QueryOutcome::Path(p) => {
                let _ = writeln!(
                    out,
                    "path {}: latency {} / deadline {}",
                    p.hops.join(" -> "),
                    p.latency.map_or("unbounded".into(), |v| v.to_string()),
                    p.composite_deadline.map_or("-".into(), |v| v.to_string()),
                );
                for point in &p.points {
                    let _ = writeln!(out, "  dmm({}) = {}", point.k, point.bound);
                }
            }
            _ => {}
        }
    }
    Ok(out)
}

/// Parsed flags of `twca fuzz`.
struct FuzzArgs {
    config: twca_verify::FuzzConfig,
}

impl FuzzArgs {
    const USAGE: &'static str = "twca fuzz [--seed S] [--iters N] [--budget SECS] \
                                 [--profile P1,P2,...] [--k K1,K2,...] [--horizon H] \
                                 [--corpus DIR] [--no-shrink]";

    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut config = twca_verify::FuzzConfig {
            seed: 7,
            iterations: 200,
            ..twca_verify::FuzzConfig::default()
        };
        let mut rest = args.iter();
        while let Some(arg) = rest.next() {
            let mut value_of = |flag: &str| {
                rest.next().ok_or_else(|| {
                    CliError::Usage(format!("{flag} needs a value; {}", Self::USAGE))
                })
            };
            match arg.as_str() {
                "--seed" => {
                    config.seed = value_of("--seed")?
                        .parse()
                        .map_err(|_| CliError::Usage("`--seed` expects an integer".into()))?;
                }
                "--iters" => {
                    config.iterations = value_of("--iters")?.parse().map_err(|_| {
                        CliError::Usage("`--iters` expects an iteration count".into())
                    })?;
                }
                "--budget" => {
                    let seconds: f64 = value_of("--budget")?.parse().map_err(|_| {
                        CliError::Usage("`--budget` expects seconds (fractions allowed)".into())
                    })?;
                    if !seconds.is_finite() || seconds < 0.0 {
                        return Err(CliError::Usage(
                            "`--budget` expects a finite, non-negative number of seconds".into(),
                        ));
                    }
                    config.time_budget = Some(std::time::Duration::from_secs_f64(seconds));
                }
                "--profile" => {
                    config.profiles = value_of("--profile")?
                        .split(',')
                        .map(|p| {
                            twca_verify::ScenarioProfile::parse(p.trim()).map_err(CliError::Usage)
                        })
                        .collect::<Result<_, _>>()?;
                }
                "--k" => {
                    config.verify.ks = value_of("--k")?
                        .split(',')
                        .map(|s| {
                            s.trim().parse().map_err(|_| {
                                CliError::Usage(format!("`{s}` is not a window length"))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                }
                "--horizon" => {
                    config.verify.horizon = value_of("--horizon")?.parse().map_err(|_| {
                        CliError::Usage("`--horizon` expects a simulation horizon".into())
                    })?;
                }
                "--corpus" => {
                    config.corpus_dir = Some(value_of("--corpus")?.into());
                }
                "--no-shrink" => config.shrink = false,
                flag => {
                    return Err(CliError::Usage(format!(
                        "unknown fuzz flag `{flag}`; {}",
                        Self::USAGE
                    )));
                }
            }
        }
        if config.profiles.is_empty() {
            return Err(CliError::Usage(
                "`--profile` needs at least one profile".into(),
            ));
        }
        Ok(FuzzArgs { config })
    }
}

/// `twca fuzz`: randomized conformance fuzzing through the
/// [`twca_verify`] oracle battery. Every generated scenario is checked
/// against all twelve oracles; failures are auto-shrunk to minimal
/// counterexamples and (with `--corpus`) persisted as regression
/// fixtures.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for bad flags and [`CliError::Verify`]
/// (non-zero exit) when any oracle fired, with the full report.
pub fn cmd_fuzz(args: &[String]) -> Result<String, CliError> {
    use twca_verify::OracleKind;

    let parsed = FuzzArgs::parse(args)?;
    let report = twca_verify::fuzz(&parsed.config);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "fuzz: seed {}, {} scenario(s) over {} profile(s) in {:.1}s",
        parsed.config.seed,
        report.iterations_run,
        report.per_profile.len(),
        report.elapsed.as_secs_f64()
    );
    for (name, count) in &report.per_profile {
        let _ = writeln!(out, "  {name:<24} {count} scenario(s)");
    }
    let oracle_names: Vec<&str> = OracleKind::ALL.iter().map(|o| o.name()).collect();
    let _ = writeln!(out, "oracles: {}", oracle_names.join(", "));

    if report.is_clean() {
        let _ = writeln!(out, "all oracles clean");
        return Ok(out);
    }
    for failure in &report.failures {
        let _ = writeln!(out, "FAILURE in scenario {}:", failure.label);
        for violation in &failure.violations {
            let _ = writeln!(out, "  {violation}");
        }
        let _ = writeln!(
            out,
            "shrunk counterexample ({} task(s)):",
            failure.shrunk.task_count()
        );
        for line in failure.shrunk.render().lines() {
            let _ = writeln!(out, "  {line}");
        }
        if let Some(path) = &failure.persisted {
            let _ = writeln!(out, "persisted to {}", path.display());
        }
        if let Some(error) = &failure.persist_error {
            let _ = writeln!(out, "WARNING: counterexample not persisted: {error}");
        }
    }
    Err(CliError::Verify(out))
}

/// The workload family `twca bench --suite` selects.
#[derive(Clone, Copy, PartialEq, Eq)]
enum BenchSuite {
    Core,
    Service,
    Delta,
    Persist,
}

/// Parsed flags of `twca bench`.
struct BenchCliArgs {
    config: twca_bench::runner::BenchConfig,
    json: bool,
    out: Option<String>,
    check: Option<String>,
    suite: BenchSuite,
}

impl BenchCliArgs {
    const USAGE: &'static str = "twca bench [--suite core|service|delta|persist] [--json] \
                                 [--out FILE] [--seed S] [--quick] [--check BASELINE.json]";

    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut parsed = BenchCliArgs {
            config: twca_bench::runner::BenchConfig::default(),
            json: false,
            out: None,
            check: None,
            suite: BenchSuite::Core,
        };
        let mut rest = args.iter();
        while let Some(arg) = rest.next() {
            let mut value_of = |flag: &str| {
                rest.next().ok_or_else(|| {
                    CliError::Usage(format!("{flag} needs a value; {}", Self::USAGE))
                })
            };
            match arg.as_str() {
                "--json" => parsed.json = true,
                "--quick" => parsed.config.quick = true,
                "--seed" => {
                    parsed.config.seed = value_of("--seed")?
                        .parse()
                        .map_err(|_| CliError::Usage("`--seed` expects an integer".into()))?;
                }
                "--out" => parsed.out = Some(value_of("--out")?.clone()),
                "--check" => parsed.check = Some(value_of("--check")?.clone()),
                "--suite" => {
                    parsed.suite = match value_of("--suite")?.as_str() {
                        "core" => BenchSuite::Core,
                        "service" => BenchSuite::Service,
                        "delta" => BenchSuite::Delta,
                        "persist" => BenchSuite::Persist,
                        suite => {
                            return Err(CliError::Usage(format!(
                                "`--suite` must be core, service, delta or persist, not `{suite}`"
                            )));
                        }
                    };
                }
                flag => {
                    return Err(CliError::Usage(format!(
                        "unknown bench flag `{flag}`; {}",
                        Self::USAGE
                    )));
                }
            }
        }
        Ok(parsed)
    }
}

/// `twca bench`: the in-process perf-trajectory runner
/// ([`twca_bench::runner`]) — best-of-N timings for the combination-engine
/// ablations (`ablation_combinations`, `overload_heavy/combinations`),
/// `table2_dmm` and `engine_scaling`, rendered as a table or as the
/// `BENCH_combinations.json` artifact with `--json`/`--out`.
/// `--suite service` instead runs the `service_saturation` workload —
/// an in-process TCP server saturated by 10 000 concurrent request
/// streams — whose requests/sec and p50/p95/p99 tail latency land in
/// `BENCH_service.json`. `--suite delta` measures memoized holistic
/// re-analysis after a one-task WCET edit on a 100-resource pipeline
/// against the cold full fixed point (`BENCH_delta.json`, ≥ 10x
/// contract). `--suite persist` measures durable-store `store_put`
/// journaling against the in-memory put plus cold recovery time
/// (`BENCH_persist.json`); journal append overhead is capped at 1.5×
/// the in-memory put.
/// `--check BASELINE.json` re-measures and fails (non-zero exit) when
/// any benchmark regresses more than 1.5× against the committed
/// baseline after machine-speed normalization, or when the
/// overload-heavy lazy-engine speedup falls below its contract.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for bad flags, [`CliError::Io`] for
/// unreadable/unwritable files, and [`CliError::Verify`] with the
/// regression list when `--check` fails.
pub fn cmd_bench(args: &[String]) -> Result<String, CliError> {
    use twca_bench::runner::{
        check_against, run_bench, run_delta_bench, run_persist_bench, run_service_bench,
        BenchReport,
    };

    let parsed = BenchCliArgs::parse(args)?;
    // Load the baseline before measuring anything: a missing or
    // malformed baseline must fail fast, not after seconds of timing.
    let baseline = match &parsed.check {
        None => None,
        Some(baseline_path) => {
            let text = std::fs::read_to_string(baseline_path)?;
            let value = twca_api::Json::parse(&text)
                .map_err(|e| CliError::Usage(format!("`{baseline_path}` is not JSON: {e}")))?;
            Some(BenchReport::from_json(&value).map_err(|e| {
                CliError::Usage(format!("`{baseline_path}` is not a bench report: {e}"))
            })?)
        }
    };
    let report = match parsed.suite {
        BenchSuite::Core => run_bench(&parsed.config),
        BenchSuite::Service => run_service_bench(&parsed.config),
        BenchSuite::Delta => run_delta_bench(&parsed.config),
        BenchSuite::Persist => run_persist_bench(&parsed.config),
    };
    let json = format!("{}\n", report.to_json());
    if let Some(path) = &parsed.out {
        std::fs::write(path, &json)?;
    }
    if let Some(baseline) = baseline {
        let regressions = check_against(&report, &baseline, 1.5);
        if !regressions.is_empty() {
            let mut out = String::from("performance regressions against the baseline:\n");
            for regression in &regressions {
                let _ = writeln!(out, "  {regression}");
            }
            out.push_str(&report.render());
            return Err(CliError::Verify(out));
        }
    }
    if parsed.json {
        return Ok(json);
    }
    Ok(report.render())
}

/// Dispatches a full argument vector (excluding the program name).
///
/// # Errors
///
/// Returns [`CliError`] for usage errors, unreadable files, parse
/// failures and analysis failures.
pub fn run(args: &[String]) -> Result<String, CliError> {
    const USAGE: &str = "twca <analyze|explain|dmm|simulate|sim|dot|gantt|report|synthesize|batch|\
                         dist|serve|loadgen|chaos|fuzz|bench> <file> [...]";
    let command = args.first().ok_or_else(|| CliError::Usage(USAGE.into()))?;
    if command == "batch" {
        return cmd_batch(&args[1..]);
    }
    if command == "sim" {
        return cmd_sim(&args[1..]);
    }
    if command == "fuzz" {
        return cmd_fuzz(&args[1..]);
    }
    if command == "bench" {
        return cmd_bench(&args[1..]);
    }
    if command == "dist" {
        return cmd_dist(&args[1..]);
    }
    if command == "serve" {
        // The streaming loop writes to stdout as responses are
        // produced; the returned summary goes to stderr in main.
        // Stdout must stay UNLOCKED here: in `--listen` mode the pool's
        // worker threads answer the stdio lane through their own
        // `std::io::stdout()` handle, and `Stdout`'s lock is reentrant
        // only on the owning thread — holding it across `cmd_serve`
        // deadlocks the drain.
        let stdin = std::io::stdin();
        let summary = cmd_serve(&args[1..], stdin.lock(), std::io::stdout())?;
        eprint!("{summary}");
        return Ok(String::new());
    }
    if command == "loadgen" {
        return cmd_loadgen(&args[1..]);
    }
    if command == "chaos" {
        return cmd_chaos(&args[1..]);
    }
    let path = args.get(1).ok_or_else(|| CliError::Usage(USAGE.into()))?;
    let system = load(path)?;
    match command.as_str() {
        "analyze" => cmd_analyze(&system),
        "explain" => {
            let chain = args
                .get(2)
                .ok_or_else(|| CliError::Usage("twca explain <file> <chain>".into()))?;
            cmd_explain(&system, chain)
        }
        "dmm" => {
            let chain = args
                .get(2)
                .ok_or_else(|| CliError::Usage("twca dmm <file> <chain> <k>...".into()))?;
            let ks: Vec<u64> = args[3..]
                .iter()
                .map(|s| {
                    s.parse()
                        .map_err(|_| CliError::Usage(format!("`{s}` is not a window length")))
                })
                .collect::<Result<_, _>>()?;
            if ks.is_empty() {
                return Err(CliError::Usage("twca dmm <file> <chain> <k>...".into()));
            }
            cmd_dmm(&system, chain, &ks)
        }
        "simulate" => {
            let horizon = match args.get(2) {
                Some(s) => s
                    .parse()
                    .map_err(|_| CliError::Usage(format!("`{s}` is not a horizon")))?,
                None => 100_000,
            };
            cmd_simulate(&system, horizon)
        }
        "dot" => cmd_dot(&system),
        "report" => cmd_report(&system),
        "gantt" => {
            let horizon = match args.get(2) {
                Some(s) => s
                    .parse()
                    .map_err(|_| CliError::Usage(format!("`{s}` is not a horizon")))?,
                None => 2_000,
            };
            cmd_gantt(&system, horizon)
        }
        "synthesize" => {
            let m: u64 = args
                .get(2)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| CliError::Usage("twca synthesize <file> <m> <k>".into()))?;
            let k: u64 = args
                .get(3)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| CliError::Usage("twca synthesize <file> <m> <k>".into()))?;
            cmd_synthesize(&system, m, k)
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`; {USAGE}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = "
chain control periodic=100 deadline=100 sync {
    task sense prio=5 wcet=10
    task act prio=1 wcet=25
}
chain recovery sporadic=1000 overload {
    task fix prio=3 wcet=40
}
";

    fn system() -> System {
        parse_system(EXAMPLE).unwrap()
    }

    fn write_example() -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("twca_cli_test_{}.twca", std::process::id()));
        std::fs::write(&path, EXAMPLE).unwrap();
        path
    }

    #[test]
    fn analyze_reports_all_chains() {
        let out = cmd_analyze(&system()).unwrap();
        assert!(out.contains("control"));
        assert!(out.contains("recovery"));
        assert!(out.contains("dmm(10)"));
    }

    #[test]
    fn explain_and_dot_render() {
        let s = system();
        let ex = cmd_explain(&s, "control").unwrap();
        assert!(ex.contains("busy window"));
        let dot = cmd_dot(&s).unwrap();
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn dmm_lists_requested_ks() {
        let out = cmd_dmm(&system(), "control", &[1, 5, 10]).unwrap();
        assert_eq!(out.lines().count(), 3);
        assert!(out.contains("dmm(5)"));
    }

    #[test]
    fn simulate_table_is_sound_looking() {
        let out = cmd_simulate(&system(), 50_000).unwrap();
        assert!(out.contains("control"));
        assert!(out.contains("WCL"));
    }

    #[test]
    fn sim_reports_rates_and_validates_flags() {
        let path =
            std::env::temp_dir().join(format!("twca_cli_sim_test_{}.twca", std::process::id()));
        std::fs::write(&path, EXAMPLE).unwrap();
        let p = path.to_string_lossy().to_string();
        let base = args(&[
            "sim",
            &p,
            "--runs",
            "6",
            "--horizon",
            "20000",
            "--seed",
            "9",
            "--threads",
            "2",
        ]);
        let out = run(&base).unwrap();
        assert!(out.contains("6 run(s), horizon 20000, seed 9"));
        assert!(out.contains("control"));
        assert!(out.contains("rate(ppm)"));
        // Only deadline chains appear by default.
        assert!(!out.contains("recovery"));

        // The classic engine renders the identical report.
        let mut classic = base.clone();
        classic.extend(args(&["--engine", "classic"]));
        assert_eq!(run(&classic).unwrap(), out);

        // --chain restricts the table; unknown names are typed errors.
        let mut one = base.clone();
        one.extend(args(&["--chain", "recovery"]));
        let table = run(&one).unwrap();
        assert!(table.contains("recovery") && !table.contains("control"));
        let mut ghost = base.clone();
        ghost.extend(args(&["--chain", "ghost"]));
        assert!(matches!(run(&ghost), Err(CliError::Api(_))));

        assert!(matches!(
            cmd_sim(&args(&[&p, "--engine", "turbo"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            cmd_sim(&args(&[&p, "--runs", "many"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(cmd_sim(&args(&[])), Err(CliError::Usage(_))));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn synthesize_produces_assignment() {
        let out = cmd_synthesize(&system(), 1, 10).unwrap();
        assert!(out.contains("priority"));
    }

    #[test]
    fn serve_cache_flags_bound_the_session_cache() {
        let parsed =
            ServeArgs::parse(&args(&["--cache-entries", "64", "--cache-bytes", "65536"])).unwrap();
        let cap = parsed.session().cache().capacity();
        assert_eq!(cap.max_entries, Some(64));
        assert_eq!(cap.max_bytes, Some(65536));

        // Without the flags the session keeps its default, unbounded cache.
        let cap = ServeArgs::parse(&[]).unwrap().session().cache().capacity();
        assert_eq!(cap.max_entries, None);
        assert_eq!(cap.max_bytes, None);

        assert!(matches!(
            ServeArgs::parse(&args(&["--cache-entries", "lots"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn serve_edge_flags_configure_the_service() {
        let parsed = ServeArgs::parse(&args(&[
            "--read-timeout",
            "1500",
            "--idle-timeout",
            "250",
            "--write-buffer",
            "8192",
        ]))
        .unwrap();
        let config = parsed.service_config();
        assert_eq!(
            config.read_timeout,
            Some(std::time::Duration::from_millis(1500))
        );
        assert_eq!(
            config.idle_timeout,
            Some(std::time::Duration::from_millis(250))
        );
        assert_eq!(config.write_buffer_bytes, 8192);

        // Without the flags, the defaults stand.
        let defaults = twca_service::ServiceConfig::default();
        let config = ServeArgs::parse(&[]).unwrap().service_config();
        assert_eq!(config.read_timeout, defaults.read_timeout);
        assert_eq!(config.write_buffer_bytes, defaults.write_buffer_bytes);

        assert!(matches!(
            ServeArgs::parse(&args(&["--read-timeout", "forever"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn loadgen_retry_flags_parse_and_require_a_server() {
        // Flag errors surface before any connection is attempted.
        assert!(matches!(
            cmd_loadgen(&args(&["--retry", "several"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            cmd_loadgen(&args(&["--reset-ppm", "half"])),
            Err(CliError::Usage(_))
        ));
        // The store mix parses; a missing --connect is still usage.
        assert!(matches!(
            cmd_loadgen(&args(&["--mix", "store", "--retry", "3", "--server-stats"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            cmd_loadgen(&args(&["--mix", "sabotage"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn chaos_hammers_a_live_server_and_the_probe_survives() {
        let config = twca_service::ServiceConfig {
            workers: 2,
            read_timeout: Some(std::time::Duration::from_secs(5)),
            idle_timeout: Some(std::time::Duration::from_secs(5)),
            ..twca_service::ServiceConfig::default()
        };
        let server =
            twca_service::TcpServer::start("127.0.0.1:0", Session::new(), &config).unwrap();
        let addr = server.local_addr().to_string();
        let out = cmd_chaos(&args(&[
            "--connect",
            &addr,
            "--schedules",
            "8",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert!(out.contains("8 schedule(s)"), "report broke: {out}");
        assert!(out.contains("liveness probe ok"), "probe failed: {out}");
        let summary = server.shutdown(std::time::Duration::from_secs(10));
        assert!(summary.requests > 0, "no chaos request was ever admitted");

        assert!(matches!(cmd_chaos(&[]), Err(CliError::Usage(_))));
        assert!(matches!(
            cmd_chaos(&args(&["--connect", "127.0.0.1:1", "--schedules", "nope"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn serve_store_dir_persists_puts_across_restarts() {
        let dir = std::env::temp_dir().join(format!("twca-cli-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let serve_args = args(&["--store-dir", dir.to_str().unwrap()]);

        // First process life: two versions of one entry, then drain.
        let input = concat!(
            r#"{"queries": [{"store_put": {"name": "plant", "system": "chain c periodic=100 deadline=100 { task t prio=1 wcet=10 }"}}]}"#,
            "\n",
            r#"{"queries": [{"store_put": {"name": "plant", "system": "chain c periodic=100 deadline=100 { task t prio=1 wcet=12 }"}}]}"#,
            "\n",
        );
        let mut out = Vec::new();
        let summary = cmd_serve(&serve_args, input.as_bytes(), &mut out).unwrap();
        assert!(
            summary.contains("persist: 2 journal append(s)"),
            "summary lost the persist line: {summary}"
        );
        assert!(String::from_utf8(out).unwrap().contains("\"version\": 2"));

        // Second life over the same directory: the drain snapshot (plus
        // empty journal) recovers, and analysis sees version 2.
        let input =
            r#"{"queries": [{"store_analyze": {"name": "plant", "ks": [1]}}]}"#.to_owned() + "\n";
        let mut out = Vec::new();
        let summary = cmd_serve(&serve_args, input.as_bytes(), &mut out).unwrap();
        assert!(
            summary.contains("recovered 1 entry"),
            "restart did not recover the entry: {summary}"
        );
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("\"version\": 2"), "history lost: {out}");

        // A store directory that cannot be created is a typed error.
        let bad = dir.join("store.journal").join("nested");
        assert!(matches!(
            cmd_serve(
                &args(&["--store-dir", bad.to_str().unwrap()]),
                &b""[..],
                Vec::new()
            ),
            Err(CliError::Api(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bursty_dsl_system_analyzes_end_to_end() {
        let system = parse_system(
            "
chain frames periodic=400 burst=4 inner=5 deadline=60 async {
    task rx prio=2 wcet=6
    task tx prio=1 wcet=10
}
chain diag sporadic=1500 overload {
    task dump prio=3 wcet=25
}
",
        )
        .unwrap();
        let out = cmd_analyze(&system).unwrap();
        assert!(out.contains("frames"));
        let report = cmd_report(&system).unwrap();
        assert!(report.contains("| frames |"));
    }

    #[test]
    fn gantt_renders_spans() {
        let out = cmd_gantt(&system(), 500).unwrap();
        assert!(out.contains("control#0 task 0"));
        assert!(out.lines().count() >= 4);
    }

    #[test]
    fn report_renders_markdown() {
        let out = cmd_report(&system()).unwrap();
        assert!(out.starts_with("# TWCA analysis report"));
        assert!(out.contains("| control |"));
        assert!(out.contains("dmm(10)"));
        assert!(out.contains("overload"));
    }

    #[test]
    fn unknown_chain_is_reported() {
        assert!(matches!(
            cmd_explain(&system(), "ghost"),
            Err(CliError::NoSuchChain(_))
        ));
    }

    #[test]
    fn run_dispatches_and_validates() {
        let path = write_example();
        let p = path.to_string_lossy().to_string();
        let out = run(&["analyze".into(), p.clone()]).unwrap();
        assert!(out.contains("control"));
        assert!(matches!(
            run(&["bogus".into(), p.clone()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&["analyze".into(), "/nonexistent/file".into()]),
            Err(CliError::Io(_))
        ));
        assert!(matches!(
            run(&["dmm".into(), p.clone(), "control".into()]),
            Err(CliError::Usage(_))
        ));
        let dmm = run(&[
            "dmm".into(),
            p.clone(),
            "control".into(),
            "3".into(),
            "7".into(),
        ])
        .unwrap();
        assert!(dmm.contains("dmm(7)"));
        std::fs::remove_file(path).ok();
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn batch_validates_flags() {
        assert!(matches!(cmd_batch(&args(&[])), Err(CliError::Usage(_))));
        assert!(matches!(
            cmd_batch(&args(&["--gen", "not-a-number"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            cmd_batch(&args(&["--bogus"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn batch_parallel_output_matches_serial() {
        let parallel = cmd_batch(&args(&[
            "--gen",
            "12",
            "--seed",
            "3",
            "--k",
            "1,10",
            "--threads",
            "4",
            "--json",
        ]))
        .unwrap();
        let serial = cmd_batch(&args(&[
            "--gen", "12", "--seed", "3", "--k", "1,10", "--serial", "--json",
        ]))
        .unwrap();
        assert_eq!(parallel, serial, "parallel JSON must be byte-identical");
        assert!(parallel.contains("\"systems\""));
        assert!(parallel.contains("\"cache\""));
    }

    #[test]
    fn batch_profile_changes_the_generated_workload() {
        let baseline =
            cmd_batch(&args(&["--gen", "2", "--seed", "5", "--k", "1", "--json"])).unwrap();
        let explicit = cmd_batch(&args(&[
            "--gen",
            "2",
            "--seed",
            "5",
            "--k",
            "1",
            "--profile",
            "baseline",
            "--json",
        ]))
        .unwrap();
        assert_eq!(baseline, explicit, "`baseline` is the default profile");
        let degenerate = cmd_batch(&args(&[
            "--gen",
            "2",
            "--seed",
            "5",
            "--k",
            "1",
            "--profile",
            "degenerate",
            "--json",
        ]))
        .unwrap();
        assert_ne!(baseline, degenerate);
        assert!(matches!(
            cmd_batch(&args(&["--gen", "1", "--profile", "bogus"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn batch_solver_flag_is_observably_inert() {
        let default_run = cmd_batch(&args(&[
            "--gen", "4", "--seed", "9", "--k", "1,10", "--json",
        ]))
        .unwrap();
        let iterative = cmd_batch(&args(&[
            "--gen",
            "4",
            "--seed",
            "9",
            "--k",
            "1,10",
            "--solver",
            "iterative",
            "--json",
        ]))
        .unwrap();
        assert_eq!(
            default_run, iterative,
            "the solvers must be byte-identical through the whole batch pipeline"
        );
        assert!(matches!(
            cmd_batch(&args(&["--gen", "1", "--solver", "quantum"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn fuzz_smoke_run_is_clean_and_reports_profiles() {
        let out = cmd_fuzz(&args(&[
            "--seed",
            "7",
            "--iters",
            "4",
            "--horizon",
            "3000",
            "--profile",
            "baseline,degenerate,dist-single",
        ]))
        .unwrap();
        assert!(out.contains("4 scenario(s) over 3 profile(s)"));
        assert!(out.contains("all oracles clean"));
        assert!(out.contains("sim-soundness"));
        assert!(out.contains("monotonicity"));
    }

    #[test]
    fn fuzz_validates_flags() {
        assert!(matches!(
            cmd_fuzz(&args(&["--iters", "not-a-number"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            cmd_fuzz(&args(&["--profile", "quantum"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            cmd_fuzz(&args(&["--bogus"])),
            Err(CliError::Usage(_))
        ));
        // Degenerate budgets are usage errors, never panics.
        for budget in ["-1", "nan", "inf"] {
            assert!(matches!(
                cmd_fuzz(&args(&["--budget", budget])),
                Err(CliError::Usage(_))
            ));
        }
    }

    #[test]
    fn bench_validates_flags() {
        assert!(matches!(
            cmd_bench(&args(&["--bogus"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            cmd_bench(&args(&["--seed", "not-a-number"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            cmd_bench(&args(&["--check"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            cmd_bench(&args(&["--check", "/nonexistent/baseline.json"])),
            Err(CliError::Io(_))
        ));
    }

    #[test]
    fn batch_analyzes_files_and_generated_systems_together() {
        let path = write_example();
        let p = path.to_string_lossy().to_string();
        let out = run(&args(&["batch", &p, "--gen", "2", "--k", "5"])).unwrap();
        assert!(out.contains(&p));
        assert!(out.contains("gen-1"));
        assert!(out.contains("control"));
        assert!(out.contains("dmm(5)"));
        assert!(out.contains("analyzed 3 system(s)"));
        std::fs::remove_file(path).ok();
    }
}
