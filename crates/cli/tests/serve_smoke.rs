//! Smoke test of the real `twca serve` binary: pipe three mixed
//! (chain + distributed) requests through stdin and check that the
//! streamed responses come back one per request, in input order, from
//! one warm session.

use std::io::Write as _;
use std::process::{Command, Stdio};

use twca_api::{AnalysisResponse, Json};

const CHAIN: &str = "chain c periodic=100 deadline=100 sync { task t prio=1 wcet=10 }";
const DIST: &str = "resource e0 { chain c periodic=100 deadline=100 { task t prio=1 wcet=10 } } \
                    resource e1 { chain d periodic=100 deadline=150 { task u prio=1 wcet=15 } } \
                    link e0/c -> e1/d";

#[test]
fn serve_streams_mixed_requests_in_input_order() {
    let requests = format!(
        "{}\n{}\n{}\n",
        format_args!(
            "{{\"id\": \"chain-1\", \"system\": \"{CHAIN}\", \
             \"queries\": [{{\"dmm\": {{\"ks\": [1, 10]}}}}]}}"
        ),
        format_args!(
            "{{\"id\": \"dist-2\", \"dist\": \"{DIST}\", \
             \"queries\": [{{\"latency\": {{}}}}, \
             {{\"path\": {{\"hops\": [\"e0/c\", \"e1/d\"], \"ks\": [10]}}}}]}}"
        ),
        format_args!("{{\"id\": \"chain-3\", \"system\": \"{CHAIN}\"}}"),
    );

    let mut child = Command::new(env!("CARGO_BIN_EXE_twca"))
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn twca serve");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(requests.as_bytes())
        .expect("write requests");
    let output = child.wait_with_output().expect("twca serve exits");
    assert!(
        output.status.success(),
        "serve exited with {:?}",
        output.status
    );

    let stdout = String::from_utf8(output.stdout).expect("UTF-8 responses");
    let responses: Vec<AnalysisResponse> = stdout
        .lines()
        .map(|line| AnalysisResponse::from_json(&Json::parse(line).expect("valid JSON line")))
        .collect::<Result<_, _>>()
        .expect("every line is a response");

    assert_eq!(responses.len(), 3, "one response per request");
    let ids: Vec<&str> = responses.iter().filter_map(|r| r.id.as_deref()).collect();
    assert_eq!(
        ids,
        ["chain-1", "dist-2", "chain-3"],
        "responses must arrive in input order"
    );
    for response in &responses {
        assert!(response.outcome.is_ok(), "all three requests analyze");
    }

    // The summary on stderr proves the single warm session: the third
    // request repeats the first's system, so the cache must have hits.
    let stderr = String::from_utf8(output.stderr).expect("UTF-8 summary");
    assert!(
        stderr.contains("served 3 request(s), 0 error(s)"),
        "unexpected summary: {stderr}"
    );
}
