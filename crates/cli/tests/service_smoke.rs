//! End-to-end smoke of the TCP service tier: boot the real `twca
//! serve --listen` binary on an ephemeral port, drive a mixed request
//! load through the real `twca loadgen` binary, and check that every
//! request is answered cleanly, that the stdio lane still works next
//! to the socket lane, and that the exit summary accounts for both.

use std::io::{BufRead, BufReader, Read, Write as _};
use std::process::{Command, Stdio};

use twca_api::{AnalysisResponse, Json};

const STREAMS: usize = 25;
const REQUESTS_PER_STREAM: usize = 4;

#[test]
fn loadgen_drives_a_live_server_cleanly() {
    let mut server = Command::new(env!("CARGO_BIN_EXE_twca"))
        .args(["serve", "--listen", "127.0.0.1:0", "--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn twca serve --listen");
    // Keep stdin open: EOF on the stdio lane is the drain signal.
    let mut stdin = server.stdin.take().expect("piped stdin");
    let mut stderr = BufReader::new(server.stderr.take().expect("piped stderr"));

    // The first stderr line announces the ephemeral port.
    let mut banner = String::new();
    stderr.read_line(&mut banner).expect("read listen banner");
    let addr = banner
        .strip_prefix("listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .to_owned();

    let loadgen = Command::new(env!("CARGO_BIN_EXE_twca"))
        .args([
            "loadgen",
            "--connect",
            &addr,
            "--streams",
            &STREAMS.to_string(),
            "--requests",
            &REQUESTS_PER_STREAM.to_string(),
            "--connections",
            "4",
            "--mix",
            "mixed",
            "--expect-clean",
        ])
        .output()
        .expect("run twca loadgen");
    assert!(
        loadgen.status.success(),
        "loadgen failed: {}{}",
        String::from_utf8_lossy(&loadgen.stdout),
        String::from_utf8_lossy(&loadgen.stderr)
    );

    // The stdio lane shares the same pool while the socket lane runs.
    writeln!(
        stdin,
        "{{\"id\": \"stdio-1\", \"system\": \
         \"chain c periodic=100 deadline=100 {{ task t prio=1 wcet=10 }}\"}}"
    )
    .expect("write stdio request");
    drop(stdin); // EOF: drain the server.

    let output = server.wait_with_output().expect("twca serve exits");
    assert!(
        output.status.success(),
        "serve exited with {:?}",
        output.status
    );
    let stdout = String::from_utf8(output.stdout).expect("UTF-8 stdio responses");
    let response =
        AnalysisResponse::from_json(&Json::parse(stdout.trim()).expect("one JSON response"))
            .expect("typed stdio response");
    assert_eq!(response.id.as_deref(), Some("stdio-1"));
    assert!(response.outcome.is_ok());

    let mut rest = String::new();
    stderr.read_to_string(&mut rest).expect("read summary");
    let total = STREAMS * REQUESTS_PER_STREAM + 1;
    assert!(
        rest.contains(&format!("served {total} request(s), 0 error(s)")),
        "summary must count both lanes: {rest}"
    );
    assert!(
        rest.contains("latency: min"),
        "summary must report latency percentiles: {rest}"
    );
}
