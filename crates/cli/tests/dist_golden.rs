//! Golden-file lock on `twca dist` output: per-site bounds and the
//! end-to-end path composition over the two-ECU pipeline fixture must
//! not drift.

use twca_cli::cmd_dist;

fn fixture_path() -> String {
    format!(
        "{}/tests/fixtures/pipeline.dist",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// Recorded from the PR 2 implementation; covers the latency table, the
/// dmm rows and the composed path section in one run.
#[test]
fn dist_table_output_matches_the_golden_file() {
    let expected = include_str!("fixtures/dist_pipeline_table.txt");
    let actual = cmd_dist(&args(&[
        &fixture_path(),
        "--k",
        "1,10",
        "--path",
        "ecu0/sigma_c,ecu1/act",
    ]))
    .expect("the pipeline fixture analyzes cleanly");
    assert_eq!(actual, expected, "`twca dist` table output drifted");
}

/// The JSON form goes through the shared wire serializer; lock it too.
#[test]
fn dist_json_output_matches_the_golden_file() {
    let expected = include_str!("fixtures/dist_pipeline_json.txt");
    let actual = cmd_dist(&args(&[&fixture_path(), "--k", "1,10", "--json"]))
        .expect("the pipeline fixture analyzes cleanly");
    assert_eq!(actual, expected, "`twca dist --json` output drifted");
}
