//! Golden-file lock on the batch JSON: the DTO-backed serializer must
//! reproduce the pre-façade hand-rolled output byte for byte.

use twca_cli::cmd_batch;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// The fixture was recorded from the PR 1 implementation (hand-rolled
/// JSON in `twca-engine`) with exactly these flags; the façade-backed
/// path must not change a single byte.
#[test]
fn batch_json_is_byte_identical_to_the_pre_facade_output() {
    let expected = include_str!("fixtures/batch_gen6_seed3.json");
    let actual = cmd_batch(&args(&[
        "--gen", "6", "--seed", "3", "--k", "1,10", "--json",
    ]))
    .expect("batch run succeeds");
    assert_eq!(actual, expected, "batch JSON drifted from the PR 1 bytes");
}

/// The serial path renders the same bytes (input-ordered results and a
/// schedule-independent cache section).
#[test]
fn serial_batch_json_matches_the_fixture_too() {
    let expected = include_str!("fixtures/batch_gen6_seed3.json");
    let actual = cmd_batch(&args(&[
        "--gen", "6", "--seed", "3", "--k", "1,10", "--serial", "--json",
    ]))
    .expect("batch run succeeds");
    assert_eq!(actual, expected);
}
