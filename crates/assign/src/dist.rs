//! Priority synthesis for *distributed* systems: search per-resource
//! priority assignments under which end-to-end path goals hold.
//!
//! The oracle is the holistic analysis of [`twca_dist`]; the search
//! reuses the same lexicographic scoring as the uniprocessor engines
//! ([`crate::AssignmentScore`]), applied to paths instead of chains.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use twca_chains::MkConstraint;
use twca_dist::{analyze, DistError, DistOptions, DistPath, DistributedSystem};
use twca_gen::random_priority_permutation;
use twca_model::Priority;

use crate::{AssignmentScore, SearchConfig};

/// One end-to-end goal: a linked path (as `(resource, chain)` name
/// pairs) and the `(m, k)` constraint its composite deadline must
/// satisfy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathGoal {
    hops: Vec<(String, String)>,
    constraint: MkConstraint,
}

impl PathGoal {
    /// Creates a path goal from `(resource, chain)` name pairs.
    pub fn new(
        hops: impl IntoIterator<Item = (impl Into<String>, impl Into<String>)>,
        constraint: MkConstraint,
    ) -> Self {
        PathGoal {
            hops: hops
                .into_iter()
                .map(|(r, c)| (r.into(), c.into()))
                .collect(),
            constraint,
        }
    }

    /// The hops, as `(resource, chain)` names.
    pub fn hops(&self) -> &[(String, String)] {
        &self.hops
    }

    /// The required constraint.
    pub fn constraint(&self) -> MkConstraint {
        self.constraint
    }

    fn resolve(&self, system: &DistributedSystem) -> Result<DistPath, DistError> {
        let mut sites = Vec::with_capacity(self.hops.len());
        for (resource, chain) in &self.hops {
            let site = system
                .site(resource, chain)
                .ok_or_else(|| DistError::UnknownChain {
                    resource: resource.clone(),
                    chain: chain.clone(),
                })?;
            sites.push(site);
        }
        DistPath::new(system, sites)
    }
}

/// A per-resource priority assignment, in resource order; each inner
/// vector follows [`twca_model::System::task_refs`] order.
pub type DistAssignment = Vec<Vec<Priority>>;

/// Outcome of a distributed synthesis run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistSearchOutcome {
    /// The best per-resource assignment found.
    pub best_priorities: DistAssignment,
    /// Its score.
    pub best_score: AssignmentScore,
    /// Number of assignments evaluated.
    pub evaluated: usize,
}

/// The current priorities of every resource.
fn current_assignment(system: &DistributedSystem) -> DistAssignment {
    system
        .resources()
        .iter()
        .map(|r| {
            let s = r.system();
            s.task_refs().map(|t| s.task(t).priority()).collect()
        })
        .collect()
}

/// Applies a per-resource assignment.
fn apply(system: &DistributedSystem, assignment: &DistAssignment) -> DistributedSystem {
    let mut index = 0usize;
    system
        .map_systems(|r| {
            let priorities = &assignment[index];
            index += 1;
            r.system().with_priorities(priorities)
        })
        .expect("priorities preserve chain structure")
}

/// Scores one concrete distributed system against the path goals.
///
/// Divergent or non-converging systems score every goal as violated
/// with saturated tie-breakers, so the search can still rank them.
pub fn evaluate_dist(
    system: &DistributedSystem,
    goals: &[PathGoal],
    options: DistOptions,
) -> AssignmentScore {
    let worst = AssignmentScore {
        violated_goals: goals.len(),
        total_miss_bound: u64::MAX / 4,
        total_latency: u64::MAX / 4,
    };
    let Ok(results) = analyze(system, options) else {
        return worst;
    };
    let mut violated = 0usize;
    let mut total_bound = 0u64;
    let mut total_latency = 0u64;
    for goal in goals {
        let Ok(path) = goal.resolve(system) else {
            violated += 1;
            continue;
        };
        match path.deadline_miss_model(&results, goal.constraint.k) {
            Ok(dmm) => {
                total_bound = total_bound.saturating_add(dmm);
                if !goal.constraint.admits(dmm) {
                    violated += 1;
                }
            }
            Err(_) => violated += 1,
        }
        match path.latency(&results) {
            Ok(latency) => total_latency = total_latency.saturating_add(latency),
            Err(_) => total_latency = total_latency.saturating_add(u64::MAX / 4),
        }
    }
    AssignmentScore {
        violated_goals: violated,
        total_miss_bound: total_bound,
        total_latency,
    }
}

/// Hill climbing over per-resource priority permutations: each step
/// swaps two priorities *within one resource* (cross-resource priorities
/// are incomparable under SPP), with random restarts.
///
/// The `options` field of `config` configures the per-resource chain
/// analysis inside the holistic oracle.
///
/// # Examples
///
/// ```
/// use twca_assign::{hill_climb_dist, PathGoal, SearchConfig};
/// use twca_chains::MkConstraint;
/// use twca_dist::DistributedSystemBuilder;
/// use twca_model::SystemBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ecu0 = SystemBuilder::new()
///     .chain("sense").periodic(100)?.deadline(100)
///     .task("s1", 1, 10).done()
///     .chain("local").periodic(100)?.deadline(100)
///     .task("l1", 2, 80).done()
///     .build()?;
/// let ecu1 = SystemBuilder::new()
///     .chain("act").periodic(100)?.deadline(100)
///     .task("a1", 1, 20).done()
///     .build()?;
/// let dist = DistributedSystemBuilder::new()
///     .resource("ecu0", ecu0)
///     .resource("ecu1", ecu1)
///     .link(("ecu0", "sense"), ("ecu1", "act"))
///     .build()?;
///
/// // As declared, `local` preempts `sense` (10 + 80 > 100 every other
/// // window is tight); ask the search for a (0, 10) end-to-end path.
/// let goals = vec![PathGoal::new(
///     [("ecu0", "sense"), ("ecu1", "act")],
///     MkConstraint::new(0, 10),
/// )];
/// let outcome = hill_climb_dist(&dist, &goals, &SearchConfig::default());
/// assert_eq!(outcome.best_score.violated_goals, 0);
/// # Ok(())
/// # }
/// ```
pub fn hill_climb_dist(
    system: &DistributedSystem,
    goals: &[PathGoal],
    config: &SearchConfig,
) -> DistSearchOutcome {
    let dist_options = DistOptions {
        chain_options: config.options,
        ..DistOptions::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let task_counts: Vec<usize> = system
        .resources()
        .iter()
        .map(|r| r.system().task_count())
        .collect();

    let mut best_priorities = current_assignment(system);
    let mut best_score = evaluate_dist(system, goals, dist_options);
    let mut evaluated = 1usize;
    let budget_per_restart = (config.evaluations / config.restarts.max(1)).max(2);

    for restart in 0..config.restarts.max(1) {
        let mut current = if restart == 0 {
            best_priorities.clone()
        } else {
            task_counts
                .iter()
                .map(|&n| random_priority_permutation(&mut rng, n))
                .collect()
        };
        let mut current_score = evaluate_dist(&apply(system, &current), goals, dist_options);
        evaluated += usize::from(restart != 0);
        if current_score < best_score {
            best_score = current_score;
            best_priorities = current.clone();
        }

        let mut steps = 0usize;
        while steps < budget_per_restart {
            // Swap two priorities within one random resource.
            let candidates: Vec<usize> = (0..task_counts.len())
                .filter(|&i| task_counts[i] >= 2)
                .collect();
            if candidates.is_empty() {
                break;
            }
            let resource = candidates[rng.gen_range(0..candidates.len())];
            let n = task_counts[resource];
            let (i, j) = {
                let i = rng.gen_range(0..n);
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                (i, j)
            };
            let mut candidate = current.clone();
            candidate[resource].swap(i, j);
            let score = evaluate_dist(&apply(system, &candidate), goals, dist_options);
            evaluated += 1;
            steps += 1;
            if score < current_score {
                current = candidate;
                current_score = score;
                if score < best_score {
                    best_score = score;
                    best_priorities = current.clone();
                }
            }
            if best_score.violated_goals == 0 && best_score.total_miss_bound == 0 {
                return DistSearchOutcome {
                    best_priorities,
                    best_score,
                    evaluated,
                };
            }
        }
    }
    DistSearchOutcome {
        best_priorities,
        best_score,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twca_dist::DistributedSystemBuilder;
    use twca_model::SystemBuilder;

    /// ecu0 runs a chain pair where the declared priorities starve the
    /// linked chain; a swap fixes it.
    fn contended() -> DistributedSystem {
        let ecu0 = SystemBuilder::new()
            .chain("sense")
            .periodic(100)
            .unwrap()
            .deadline(100)
            .task("s1", 1, 30)
            .done()
            .chain("local")
            .periodic(100)
            .unwrap()
            .deadline(200)
            .task("l1", 2, 75)
            .done()
            .build()
            .unwrap();
        let ecu1 = SystemBuilder::new()
            .chain("act")
            .periodic(100)
            .unwrap()
            .deadline(100)
            .task("a1", 1, 20)
            .done()
            .build()
            .unwrap();
        DistributedSystemBuilder::new()
            .resource("ecu0", ecu0)
            .resource("ecu1", ecu1)
            .link(("ecu0", "sense"), ("ecu1", "act"))
            .build()
            .unwrap()
    }

    fn goals() -> Vec<PathGoal> {
        vec![PathGoal::new(
            [("ecu0", "sense"), ("ecu1", "act")],
            MkConstraint::new(0, 10),
        )]
    }

    #[test]
    fn declared_assignment_violates_the_goal() {
        // sense (prio 1, C 30) is preempted by local (prio 2, C 75):
        // B(1) = 105 > 100 — the path goal fails as declared.
        let score = evaluate_dist(&contended(), &goals(), DistOptions::default());
        assert_eq!(score.violated_goals, 1);
    }

    #[test]
    fn hill_climb_repairs_the_assignment() {
        let outcome = hill_climb_dist(&contended(), &goals(), &SearchConfig::default());
        assert_eq!(outcome.best_score.violated_goals, 0);
        assert_eq!(outcome.best_score.total_miss_bound, 0);
        // The repaired system really satisfies the goal.
        let repaired = {
            let dist = contended();
            let mut index = 0;
            dist.map_systems(|r| {
                let p = &outcome.best_priorities[index];
                index += 1;
                r.system().with_priorities(p)
            })
            .unwrap()
        };
        let score = evaluate_dist(&repaired, &goals(), DistOptions::default());
        assert_eq!(score.violated_goals, 0);
    }

    #[test]
    fn unknown_path_counts_as_violated() {
        let goals = vec![PathGoal::new(
            [("ecu0", "ghost"), ("ecu1", "act")],
            MkConstraint::new(0, 10),
        )];
        let score = evaluate_dist(&contended(), &goals, DistOptions::default());
        assert_eq!(score.violated_goals, 1);
    }

    #[test]
    fn search_is_reproducible() {
        let a = hill_climb_dist(&contended(), &goals(), &SearchConfig::default());
        let b = hill_climb_dist(&contended(), &goals(), &SearchConfig::default());
        assert_eq!(a, b);
    }
}
