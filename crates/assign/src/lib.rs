//! Priority-assignment synthesis for weakly-hard task-chain systems.
//!
//! Experiment 2 of the DATE 2017 paper shows that the priority assignment
//! decides whether a chain is schedulable, weakly-hard bounded, or
//! hopeless. This crate closes the loop: it *searches* the assignment
//! space for priorities under which a set of weakly-hard goals holds,
//! using the analysis of [`twca_chains`] as the oracle.
//!
//! Two engines are provided:
//!
//! * [`random_search`] — independent uniform samples (the Experiment 2
//!   generator turned into an optimizer);
//! * [`hill_climb`] — local search by pairwise priority swaps from a
//!   random start, with restarts;
//! * [`hill_climb_dist`] — the same local search lifted to distributed
//!   systems ([`twca_dist`]) with end-to-end [`PathGoal`]s.
//!
//! Both optimize the lexicographic score
//! ([`AssignmentScore`]): first the number of violated goals, then the
//! summed miss bounds, then the summed latencies — so progress is made
//! even while goals are still violated.
//!
//! # Examples
//!
//! ```
//! use twca_assign::{hill_climb, Goal, SearchConfig};
//! use twca_chains::MkConstraint;
//! use twca_model::case_study;
//!
//! let system = case_study();
//! let goals = vec![
//!     Goal::new("sigma_c", MkConstraint::new(2, 10)),
//!     Goal::new("sigma_d", MkConstraint::new(2, 10)),
//! ];
//! let outcome = hill_climb(&system, &goals, &SearchConfig::default());
//! // The original assignment already satisfies these goals; the search
//! // must find one at least as good.
//! assert_eq!(outcome.best_score.violated_goals, 0);
//! ```

mod dist;

pub use dist::{evaluate_dist, hill_climb_dist, DistAssignment, DistSearchOutcome, PathGoal};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use twca_chains::{AnalysisOptions, ChainAnalysis, MkConstraint};
use twca_gen::random_priority_permutation;
use twca_model::{Priority, System};

/// One weakly-hard goal: a chain (by name) and the `(m, k)` constraint it
/// must satisfy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Goal {
    chain: String,
    constraint: MkConstraint,
}

impl Goal {
    /// Creates a goal.
    pub fn new(chain: impl Into<String>, constraint: MkConstraint) -> Self {
        Goal {
            chain: chain.into(),
            constraint,
        }
    }

    /// The target chain name.
    pub fn chain(&self) -> &str {
        &self.chain
    }

    /// The required constraint.
    pub fn constraint(&self) -> MkConstraint {
        self.constraint
    }
}

/// Lexicographic quality of an assignment (smaller is better).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct AssignmentScore {
    /// Number of goals whose constraint is violated (primary).
    pub violated_goals: usize,
    /// Sum of `dmm(k)` bounds over all goals (secondary).
    pub total_miss_bound: u64,
    /// Sum of worst-case latencies over all goal chains, saturated
    /// (tertiary tie-break; unbounded latencies count as `u64::MAX / 4`).
    pub total_latency: u64,
}

/// Search configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchConfig {
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Total assignment evaluations allowed.
    pub evaluations: usize,
    /// For [`hill_climb`]: restarts (each consumes part of the budget).
    pub restarts: usize,
    /// Analysis options used by the oracle.
    pub options: AnalysisOptions,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            seed: 2017,
            evaluations: 200,
            restarts: 4,
            options: AnalysisOptions::default(),
        }
    }
}

/// Outcome of a search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchOutcome {
    /// The best assignment found, in [`System::task_refs`] order.
    pub best_priorities: Vec<Priority>,
    /// Its score.
    pub best_score: AssignmentScore,
    /// Number of assignments evaluated.
    pub evaluated: usize,
}

/// Scores one concrete system against the goals.
pub fn evaluate(system: &System, goals: &[Goal], options: AnalysisOptions) -> AssignmentScore {
    let analysis = ChainAnalysis::new(system).with_options(options);
    let mut violated = 0usize;
    let mut total_bound = 0u64;
    let mut total_latency = 0u64;
    for goal in goals {
        let Some((id, _)) = system.chain_by_name(&goal.chain) else {
            violated += 1;
            continue;
        };
        match analysis.deadline_miss_model(id, goal.constraint.k) {
            Ok(dmm) => {
                total_bound = total_bound.saturating_add(dmm.bound);
                if !goal.constraint.admits(dmm.bound) {
                    violated += 1;
                }
            }
            Err(_) => violated += 1,
        }
        match analysis.try_worst_case_latency(id) {
            Ok(Some(r)) => total_latency = total_latency.saturating_add(r.worst_case_latency),
            _ => total_latency = total_latency.saturating_add(u64::MAX / 4),
        }
    }
    AssignmentScore {
        violated_goals: violated,
        total_miss_bound: total_bound,
        total_latency,
    }
}

/// Exhaustive search over *all* priority permutations — the
/// guaranteed-optimal baseline for small systems.
///
/// Uses Heap's algorithm to enumerate the `n!` permutations of the
/// priority levels `1..=n`.
///
/// # Panics
///
/// Panics if the system has more than `max_tasks` tasks (default guard
/// against factorial blow-up; 8 tasks = 40320 analyses).
pub fn exhaustive_search(
    system: &System,
    goals: &[Goal],
    max_tasks: usize,
    options: AnalysisOptions,
) -> SearchOutcome {
    let n = system.task_count();
    assert!(
        n <= max_tasks,
        "exhaustive search over {n} tasks exceeds the {max_tasks}-task guard"
    );
    let mut levels: Vec<u32> = (1..=n as u32).collect();
    let mut best_priorities: Vec<Priority> = levels.iter().map(|&l| Priority::new(l)).collect();
    let mut best_score = evaluate(&system.with_priorities(&best_priorities), goals, options);
    let mut evaluated = 1usize;

    // Heap's algorithm (iterative).
    let mut c = vec![0usize; n];
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                levels.swap(0, i);
            } else {
                levels.swap(c[i], i);
            }
            let candidate: Vec<Priority> = levels.iter().map(|&l| Priority::new(l)).collect();
            let score = evaluate(&system.with_priorities(&candidate), goals, options);
            evaluated += 1;
            if score < best_score {
                best_score = score;
                best_priorities = candidate;
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    SearchOutcome {
        best_priorities,
        best_score,
        evaluated,
    }
}

/// Pure random search over uniform priority permutations.
pub fn random_search(system: &System, goals: &[Goal], config: &SearchConfig) -> SearchOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let n = system.task_count();
    let mut best_priorities: Vec<Priority> = system
        .task_refs()
        .map(|r| system.task(r).priority())
        .collect();
    let mut best_score = evaluate(system, goals, config.options);
    let mut evaluated = 1usize;
    while evaluated < config.evaluations {
        let candidate = random_priority_permutation(&mut rng, n);
        let score = evaluate(&system.with_priorities(&candidate), goals, config.options);
        evaluated += 1;
        if score < best_score {
            best_score = score;
            best_priorities = candidate;
        }
        if best_score.violated_goals == 0 && best_score.total_miss_bound == 0 {
            break; // cannot improve the primary objectives further
        }
    }
    SearchOutcome {
        best_priorities,
        best_score,
        evaluated,
    }
}

/// Hill climbing by pairwise priority swaps with random restarts.
pub fn hill_climb(system: &System, goals: &[Goal], config: &SearchConfig) -> SearchOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let n = system.task_count();
    let budget_per_restart = (config.evaluations / config.restarts.max(1)).max(2);

    // Seed the incumbent with the system's own assignment.
    let mut best_priorities: Vec<Priority> = system
        .task_refs()
        .map(|r| system.task(r).priority())
        .collect();
    let mut best_score = evaluate(system, goals, config.options);
    let mut evaluated = 1usize;

    for restart in 0..config.restarts.max(1) {
        let mut current = if restart == 0 {
            best_priorities.clone()
        } else {
            random_priority_permutation(&mut rng, n)
        };
        let mut current_score = evaluate(&system.with_priorities(&current), goals, config.options);
        evaluated += 1;

        let mut local_budget = budget_per_restart;
        while local_budget > 0 {
            // Propose a random swap.
            let i = rng.gen_range(0..n);
            let mut j = rng.gen_range(0..n);
            while j == i && n > 1 {
                j = rng.gen_range(0..n);
            }
            current.swap(i, j);
            let score = evaluate(&system.with_priorities(&current), goals, config.options);
            evaluated += 1;
            local_budget -= 1;
            if score <= current_score {
                current_score = score; // accept (plateaus allowed)
            } else {
                current.swap(i, j); // revert
            }
            if current_score < best_score {
                best_score = current_score;
                best_priorities = current.clone();
            }
            if best_score.violated_goals == 0 && best_score.total_miss_bound == 0 {
                return SearchOutcome {
                    best_priorities,
                    best_score,
                    evaluated,
                };
            }
        }
    }
    SearchOutcome {
        best_priorities,
        best_score,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twca_model::case_study;

    fn goals() -> Vec<Goal> {
        vec![
            Goal::new("sigma_c", MkConstraint::new(0, 10)),
            Goal::new("sigma_d", MkConstraint::new(0, 10)),
        ]
    }

    #[test]
    fn evaluate_scores_the_original_assignment() {
        let s = case_study();
        let score = evaluate(&s, &goals(), AnalysisOptions::default());
        // σc violates (0, 10), σd satisfies it.
        assert_eq!(score.violated_goals, 1);
        assert!(score.total_miss_bound > 0);
        assert_eq!(score.total_latency, 331 + 175);
    }

    #[test]
    fn random_search_improves_or_keeps_score() {
        let s = case_study();
        let config = SearchConfig {
            evaluations: 60,
            ..SearchConfig::default()
        };
        let baseline = evaluate(&s, &goals(), config.options);
        let outcome = random_search(&s, &goals(), &config);
        assert!(outcome.best_score <= baseline);
        assert!(outcome.evaluated <= config.evaluations);
    }

    #[test]
    fn search_finds_fully_schedulable_assignment() {
        // Experiment 2 says ~2/3 of random assignments make σc
        // schedulable and ~1/3 σd; a short search should find one that
        // satisfies both.
        let s = case_study();
        let config = SearchConfig {
            evaluations: 150,
            ..SearchConfig::default()
        };
        let outcome = random_search(&s, &goals(), &config);
        assert_eq!(
            outcome.best_score.violated_goals, 0,
            "no fully schedulable assignment found in {} tries",
            outcome.evaluated
        );
        // Verify the returned assignment really achieves the score.
        let check = evaluate(
            &s.with_priorities(&outcome.best_priorities),
            &goals(),
            config.options,
        );
        assert_eq!(check, outcome.best_score);
    }

    #[test]
    fn hill_climb_matches_or_beats_its_seed() {
        let s = case_study();
        let config = SearchConfig {
            evaluations: 120,
            restarts: 3,
            ..SearchConfig::default()
        };
        let outcome = hill_climb(&s, &goals(), &config);
        let baseline = evaluate(&s, &goals(), config.options);
        assert!(outcome.best_score <= baseline);
    }

    /// A 5-task system small enough for exhaustive search.
    fn small_system() -> twca_model::System {
        use twca_model::SystemBuilder;
        SystemBuilder::new()
            .chain("p")
            .periodic(100)
            .unwrap()
            .deadline(100)
            .task("p1", 1, 15)
            .task("p2", 2, 20)
            .done()
            .chain("q")
            .periodic(150)
            .unwrap()
            .deadline(150)
            .task("q1", 3, 30)
            .task("q2", 4, 25)
            .done()
            .chain("isr")
            .sporadic(2_000)
            .unwrap()
            .overload()
            .task("i1", 5, 20)
            .done()
            .build()
            .unwrap()
    }

    #[test]
    fn exhaustive_enumerates_all_permutations() {
        let s = small_system();
        let goals = vec![
            Goal::new("p", MkConstraint::new(0, 10)),
            Goal::new("q", MkConstraint::new(0, 10)),
        ];
        let outcome = exhaustive_search(&s, &goals, 8, AnalysisOptions::default());
        assert_eq!(outcome.evaluated, 120); // 5!
    }

    #[test]
    fn heuristics_never_beat_exhaustive() {
        let s = small_system();
        let goals = vec![
            Goal::new("p", MkConstraint::new(0, 10)),
            Goal::new("q", MkConstraint::new(0, 10)),
        ];
        let opts = AnalysisOptions::default();
        let optimal = exhaustive_search(&s, &goals, 8, opts);
        let config = SearchConfig {
            evaluations: 200,
            ..SearchConfig::default()
        };
        let hc = hill_climb(&s, &goals, &config);
        let rs = random_search(&s, &goals, &config);
        assert!(optimal.best_score <= hc.best_score);
        assert!(optimal.best_score <= rs.best_score);
        // With 200 evaluations over a 120-permutation space, random
        // search must actually reach the optimum's primary objective.
        assert_eq!(
            rs.best_score.violated_goals,
            optimal.best_score.violated_goals
        );
    }

    #[test]
    #[should_panic(expected = "exceeds the")]
    fn exhaustive_guard_panics_on_large_systems() {
        let s = case_study(); // 13 tasks
        let _ = exhaustive_search(&s, &goals(), 8, AnalysisOptions::default());
    }

    #[test]
    fn unknown_goal_chain_counts_as_violated() {
        let s = case_study();
        let score = evaluate(
            &s,
            &[Goal::new("nope", MkConstraint::new(0, 1))],
            AnalysisOptions::default(),
        );
        assert_eq!(score.violated_goals, 1);
    }

    #[test]
    fn scores_order_lexicographically() {
        let a = AssignmentScore {
            violated_goals: 0,
            total_miss_bound: 100,
            total_latency: 100,
        };
        let b = AssignmentScore {
            violated_goals: 1,
            total_miss_bound: 0,
            total_latency: 0,
        };
        assert!(a < b);
    }
}
