//! Parallel batch-analysis engine for TWCA sweeps.
//!
//! Design-space studies (random priority assignments, generator sweeps,
//! sensitivity scans) analyze hundreds to millions of
//! [`twca_model::System`]s with the same pipeline: worst-case latencies
//! (Theorem 2), then deadline miss models over a set of window lengths
//! (Theorem 3). This crate turns that loop into a front end that
//!
//! * **fans out** across CPU cores with deterministic, input-ordered
//!   results — the parallel output is bit-identical to the serial one;
//! * **memoizes** the expensive sub-computations (busy-window fixed
//!   points, latency analyses, overload budgets, distance lookups) in a
//!   shared [`AnalysisCache`], so repeated work across similar systems
//!   and across `k`-values is done once;
//! * reports **progress** through a pluggable callback and exposes
//!   cache effectiveness via [`BatchEngine::cache_stats`].
//!
//! Since the `twca-api` façade, the engine is a **thin thread fan-out
//! over [`twca_api::Session`]**: each batch slot runs
//! [`twca_api::Session::system_outcome`] — the same pipeline behind
//! `twca serve`'s `full` queries — and the verdict types are the shared
//! wire DTOs. Everything enters through [`BatchEngine::run`] on an
//! iterator of systems.
//!
//! # Examples
//!
//! ```
//! use twca_engine::BatchEngine;
//! use twca_model::case_study;
//!
//! let engine = BatchEngine::new().with_ks([1, 10]);
//! let batch = engine.run([case_study(), case_study()]);
//! assert_eq!(batch.len(), 2);
//! // Table I/II for the industrial case study:
//! let sigma_c = batch[0].chain("sigma_c").unwrap();
//! assert_eq!(sigma_c.worst_case_latency, Some(331));
//! assert_eq!(sigma_c.miss_models[1].bound, 5); // dmm(10) = 5
//! // The second (identical) system was answered from the cache.
//! assert!(engine.cache_stats().hits > 0);
//! ```

#![warn(missing_docs)]

mod json;
mod report;

pub use json::batch_to_json;
pub use report::{ChainVerdict, SystemVerdict};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use twca_api::Session;
use twca_chains::AnalysisOptions;
pub use twca_chains::{AnalysisCache, CacheStats};
use twca_model::System;

/// Progress observer: called with `(completed, total)` after every
/// finished system.
pub type ProgressFn = dyn Fn(usize, usize) + Send + Sync;

/// The batch-analysis front end; see the [module docs](self).
///
/// An engine owns one [`AnalysisCache`] that every run (serial or
/// parallel) shares; clone-cheap handles to the same cache can be
/// obtained with [`BatchEngine::cache`].
pub struct BatchEngine {
    threads: Option<usize>,
    ks: Vec<u64>,
    session: Session,
    progress: Option<Box<ProgressFn>>,
}

impl Default for BatchEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchEngine {
    /// An engine with default options, `dmm` windows `[1, 10, 100]`, a
    /// fresh cache, and one worker per available core.
    pub fn new() -> Self {
        BatchEngine::from_session(Session::new())
    }

    /// An engine fanning out over an existing [`Session`] (sharing its
    /// cache and options).
    pub fn from_session(session: Session) -> Self {
        BatchEngine {
            threads: None,
            ks: vec![1, 10, 100],
            session,
            progress: None,
        }
    }

    /// Sets the number of worker threads (`1` forces the serial path).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Replaces the per-chain analysis options.
    #[must_use]
    pub fn with_options(mut self, options: AnalysisOptions) -> Self {
        self.session = self.session.with_options(options);
        self
    }

    /// Replaces the miss-model window lengths evaluated per chain.
    #[must_use]
    pub fn with_ks(mut self, ks: impl IntoIterator<Item = u64>) -> Self {
        self.ks = ks.into_iter().collect();
        self
    }

    /// Shares an existing cache (e.g. across engines or sessions).
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<AnalysisCache>) -> Self {
        self.session = self.session.with_cache(cache);
        self
    }

    /// Installs a progress observer.
    #[must_use]
    pub fn with_progress(
        mut self,
        progress: impl Fn(usize, usize) + Send + Sync + 'static,
    ) -> Self {
        self.progress = Some(Box::new(progress));
        self
    }

    /// The underlying session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The shared cache handle.
    pub fn cache(&self) -> Arc<AnalysisCache> {
        self.session.cache()
    }

    /// Hit/miss counters of the shared cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.session.cache_stats()
    }

    /// Worker count the next [`BatchEngine::run`] will use.
    pub fn effective_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// Analyzes every system, fanning out across
    /// [`BatchEngine::effective_threads`] workers.
    ///
    /// Results come back **in input order** and are bit-identical to
    /// [`BatchEngine::run_serial`] on the same input: each verdict is a
    /// pure function of its system, and the shared cache only ever
    /// returns values equal to what recomputation would produce.
    pub fn run(&self, systems: impl IntoIterator<Item = System>) -> Vec<SystemVerdict> {
        let jobs: Vec<System> = systems.into_iter().collect();
        let threads = self.effective_threads().min(jobs.len().max(1));
        if threads <= 1 {
            return self.run_serial(jobs);
        }

        let total = jobs.len();
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<SystemVerdict>>> =
            (0..total).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    let verdict = self.analyze_one(index, &jobs[index]);
                    *slots[index].lock().expect("result slot poisoned") = Some(verdict);
                    let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if let Some(progress) = &self.progress {
                        progress(completed, total);
                    }
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every index was claimed by a worker")
            })
            .collect()
    }

    /// Analyzes every system on the calling thread, still going through
    /// the shared cache. Reference implementation for equivalence tests
    /// and baseline benchmarks.
    pub fn run_serial(&self, systems: impl IntoIterator<Item = System>) -> Vec<SystemVerdict> {
        let jobs: Vec<System> = systems.into_iter().collect();
        let total = jobs.len();
        jobs.iter()
            .enumerate()
            .map(|(index, system)| {
                let verdict = self.analyze_one(index, system);
                if let Some(progress) = &self.progress {
                    progress(index + 1, total);
                }
                verdict
            })
            .collect()
    }

    /// The per-system pipeline, delegated to the façade: latency
    /// analysis per chain, then a `k`-sweep of the miss model for every
    /// deadline chain (see [`Session::system_outcome`]).
    fn analyze_one(&self, index: usize, system: &System) -> SystemVerdict {
        self.session.system_outcome(index, system, &self.ks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twca_model::case_study;

    #[test]
    fn parallel_equals_serial_on_copies_of_the_case_study() {
        let systems: Vec<System> = (0..8).map(|_| case_study()).collect();
        let engine = BatchEngine::new().with_ks([1, 3, 10, 76]).with_threads(4);
        let parallel = engine.run(systems.clone());
        let serial = BatchEngine::new()
            .with_ks([1, 3, 10, 76])
            .with_threads(1)
            .run_serial(systems);
        assert_eq!(parallel, serial);
        assert_eq!(parallel.len(), 8);
        assert_eq!(
            parallel[7].chain("sigma_c").unwrap().miss_models[3].bound,
            23
        );
    }

    #[test]
    fn cache_is_shared_across_systems() {
        let engine = BatchEngine::new().with_ks([10]);
        let _ = engine.run((0..4).map(|_| case_study()));
        let stats = engine.cache_stats();
        assert!(stats.hits > 0, "identical systems must share cache entries");
        assert!(stats.entries > 0);
    }

    #[test]
    fn progress_reports_every_system() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&calls);
        let engine = BatchEngine::new()
            .with_ks([1])
            .with_threads(2)
            .with_progress(move |_done, total| {
                assert_eq!(total, 5);
                seen.fetch_add(1, Ordering::Relaxed);
            });
        let _ = engine.run((0..5).map(|_| case_study()));
        assert_eq!(calls.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn chains_without_deadline_have_no_miss_models() {
        let engine = BatchEngine::new();
        let batch = engine.run([case_study()]);
        let sigma_a = batch[0].chain("sigma_a").unwrap();
        assert!(sigma_a.miss_models.is_empty());
        assert!(sigma_a.overload);
    }
}
