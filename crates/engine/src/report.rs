//! Batch result records.

use twca_chains::DmmResult;
use twca_curves::Time;

/// The analysis outcome of one chain within a batch system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainVerdict {
    /// Chain name.
    pub name: String,
    /// Declared end-to-end deadline.
    pub deadline: Option<Time>,
    /// Whether the chain is a rare overload source.
    pub overload: bool,
    /// Worst-case latency with overload included (Theorem 2); `None`
    /// when the busy window diverges.
    pub worst_case_latency: Option<Time>,
    /// Worst-case latency of the typical (overload-free) system.
    pub typical_latency: Option<Time>,
    /// Miss models at the engine's window lengths, in `ks` order; empty
    /// for chains without a deadline.
    pub miss_models: Vec<DmmResult>,
    /// Analysis error, if the miss-model preparation failed.
    pub error: Option<String>,
}

impl ChainVerdict {
    /// Whether the chain provably never misses its deadline.
    pub fn schedulable(&self) -> Option<bool> {
        Some(self.worst_case_latency? <= self.deadline?)
    }
}

/// The analysis outcome of one system in a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemVerdict {
    /// Position of the system in the batch input.
    pub index: usize,
    /// Per-chain outcomes, in chain order.
    pub chains: Vec<ChainVerdict>,
}

impl SystemVerdict {
    /// Looks up a chain outcome by name.
    pub fn chain(&self, name: &str) -> Option<&ChainVerdict> {
        self.chains.iter().find(|c| c.name == name)
    }
}
