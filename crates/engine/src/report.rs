//! Batch result records.
//!
//! Since the `twca-api` façade these are aliases of the shared DTOs:
//! a batch verdict **is** the wire-level outcome, so the batch JSON
//! and the streaming `twca serve` responses cannot drift apart.

/// The analysis outcome of one chain within a batch system.
pub type ChainVerdict = twca_api::ChainOutcome;

/// The analysis outcome of one system in a batch.
pub type SystemVerdict = twca_api::SystemOutcome;
