//! Hand-rolled JSON rendering of batch results (the workspace carries
//! no serde runtime; see `vendor/README.md`).

use crate::report::SystemVerdict;
use twca_chains::CacheStats;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn opt(value: Option<u64>) -> String {
    value.map_or_else(|| "null".to_owned(), |v| v.to_string())
}

/// Renders a batch (and the cache counters of the run) as one JSON
/// document, stable across runs and thread counts: the `systems`
/// section is a pure function of the input, and the optional `cache`
/// section carries only the entry count — the one cache counter that
/// is schedule-independent (racing workers may double-count a miss,
/// but the key set is fixed). Hit/miss diagnostics are available via
/// [`CacheStats`] for human-facing output instead.
///
/// # Examples
///
/// ```
/// use twca_engine::{batch_to_json, BatchEngine};
/// use twca_model::case_study;
///
/// let engine = BatchEngine::new().with_ks([10]);
/// let batch = engine.run([case_study()]);
/// let json = batch_to_json(&batch, Some(engine.cache_stats()));
/// assert!(json.contains("\"name\": \"sigma_c\""));
/// assert!(json.contains("\"bound\": 5"));
/// ```
pub fn batch_to_json(batch: &[SystemVerdict], cache: Option<CacheStats>) -> String {
    let mut out = String::from("{\n  \"systems\": [\n");
    for (i, system) in batch.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"index\": {}, \"chains\": [\n",
            system.index
        ));
        for (j, chain) in system.chains.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"name\": \"{}\", \"overload\": {}, \"deadline\": {}, \"wcl\": {}, \"typical_wcl\": {}, \"dmm\": [",
                escape(&chain.name),
                chain.overload,
                opt(chain.deadline),
                opt(chain.worst_case_latency),
                opt(chain.typical_latency),
            ));
            for (m, dmm) in chain.miss_models.iter().enumerate() {
                out.push_str(&format!(
                    "{{\"k\": {}, \"bound\": {}, \"informative\": {}}}",
                    dmm.k, dmm.bound, dmm.informative
                ));
                if m + 1 < chain.miss_models.len() {
                    out.push_str(", ");
                }
            }
            out.push(']');
            if let Some(error) = &chain.error {
                out.push_str(&format!(", \"error\": \"{}\"", escape(error)));
            }
            out.push('}');
            out.push_str(if j + 1 < system.chains.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("    ]}");
        out.push_str(if i + 1 < batch.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
    if let Some(stats) = cache {
        // Only the entry count is deterministic across schedules (two
        // workers racing on one key both record a miss, but the key set
        // is fixed); hit/miss counters stay out of the document so
        // parallel and serial runs render byte-identically.
        out.push_str(&format!(
            ",\n  \"cache\": {{\"entries\": {}}}",
            stats.entries
        ));
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_handles_control_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_batch_renders() {
        let json = batch_to_json(&[], None);
        assert!(json.starts_with('{'));
        assert!(json.contains("\"systems\": ["));
    }
}
