//! JSON rendering of batch results.
//!
//! The per-chain objects are rendered by the shared DTO serializer
//! ([`twca_api::ChainOutcome::to_json`]) — the same bytes `twca serve`
//! streams — wrapped in the batch document's stable two-space-indent
//! scaffolding. The output is byte-identical to the pre-façade
//! hand-rolled renderer (locked by a golden-file test in `twca-cli`).

use crate::report::SystemVerdict;
use twca_chains::CacheStats;

/// Renders a batch (and the cache counters of the run) as one JSON
/// document, stable across runs and thread counts: the `systems`
/// section is a pure function of the input, and the optional `cache`
/// section carries only the entry count — the one cache counter that
/// is schedule-independent (racing workers may double-count a miss,
/// but the key set is fixed). Hit/miss diagnostics are available via
/// [`CacheStats`] for human-facing output instead.
///
/// # Examples
///
/// ```
/// use twca_engine::{batch_to_json, BatchEngine};
/// use twca_model::case_study;
///
/// let engine = BatchEngine::new().with_ks([10]);
/// let batch = engine.run([case_study()]);
/// let json = batch_to_json(&batch, Some(engine.cache_stats()));
/// assert!(json.contains("\"name\": \"sigma_c\""));
/// assert!(json.contains("\"bound\": 5"));
/// ```
pub fn batch_to_json(batch: &[SystemVerdict], cache: Option<CacheStats>) -> String {
    let mut out = String::from("{\n  \"systems\": [\n");
    for (i, system) in batch.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"index\": {}, \"chains\": [\n",
            system.index
        ));
        for (j, chain) in system.chains.iter().enumerate() {
            out.push_str("      ");
            out.push_str(&chain.to_json().to_string());
            out.push_str(if j + 1 < system.chains.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("    ]}");
        out.push_str(if i + 1 < batch.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
    if let Some(stats) = cache {
        // Only the entry count is deterministic across schedules (two
        // workers racing on one key both record a miss, but the key set
        // is fixed); hit/miss counters stay out of the document so
        // parallel and serial runs render byte-identically.
        out.push_str(&format!(
            ",\n  \"cache\": {{\"entries\": {}}}",
            stats.entries
        ));
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use twca_api::{ChainOutcome, DmmPoint, SystemOutcome};

    #[test]
    fn empty_batch_renders() {
        let json = batch_to_json(&[], None);
        assert!(json.starts_with('{'));
        assert!(json.contains("\"systems\": ["));
    }

    #[test]
    fn chain_lines_match_the_legacy_hand_rolled_format() {
        let batch = [SystemOutcome {
            index: 0,
            chains: vec![ChainOutcome {
                name: "c".into(),
                deadline: Some(100),
                overload: false,
                worst_case_latency: Some(35),
                typical_latency: None,
                miss_models: vec![DmmPoint {
                    k: 10,
                    bound: 0,
                    informative: true,
                }],
                error: Some("why \"quoted\"".into()),
            }],
        }];
        let json = batch_to_json(&batch, None);
        assert!(json.contains(
            "      {\"name\": \"c\", \"overload\": false, \"deadline\": 100, \"wcl\": 35, \
             \"typical_wcl\": null, \"dmm\": [{\"k\": 10, \"bound\": 0, \"informative\": true}], \
             \"error\": \"why \\\"quoted\\\"\"}\n"
        ));
    }
}
