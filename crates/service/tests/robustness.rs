//! Satellite 4: the malformed/truncated/oversized frame battery driven
//! through the real socket path. Every hostile frame must draw exactly
//! one typed error response — no panics, no dropped connections — and
//! a valid request after the battery must still be answered.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use twca_api::{AnalysisResponse, Json, Session};
use twca_service::{FrameFuzzer, ServiceConfig, TcpServer};

#[test]
fn the_socket_survives_a_malformed_frame_battery() {
    let config = ServiceConfig {
        workers: 2,
        max_frame_bytes: 4096,
        ..ServiceConfig::default()
    };
    let server = TcpServer::start("127.0.0.1:0", Session::new(), &config).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let mut fuzzer = FrameFuzzer::new(99);
    let mut sent = 0usize;
    // Interleave reading with writing so neither side's socket buffer
    // can fill up and deadlock the pipeline.
    let drain = |reader: &mut BufReader<TcpStream>, upto: &mut usize, sent: usize| {
        let mut line = String::new();
        let mut errors = 0;
        while *upto < sent {
            line.clear();
            if reader.read_line(&mut line).unwrap() == 0 {
                panic!("connection died after {upto} responses");
            }
            let response = AnalysisResponse::from_json(&Json::parse(&line).unwrap())
                .unwrap_or_else(|e| panic!("untyped response {line:?}: {e}"));
            assert!(response.outcome.is_err(), "hostile frame accepted: {line}");
            errors += 1;
            *upto += 1;
        }
        errors
    };
    let mut answered = 0usize;
    for batch in 0..10 {
        for frame in fuzzer.frames(30) {
            stream.write_all(&frame).unwrap();
            stream.write_all(b"\n").unwrap();
            sent += 1;
        }
        if batch % 2 == 1 {
            let big = fuzzer.oversized(config.max_frame_bytes);
            stream.write_all(&big).unwrap();
            stream.write_all(b"\n").unwrap();
            sent += 1;
        }
        drain(&mut reader, &mut answered, sent);
    }
    assert_eq!(answered, sent);

    // The stream must still serve a valid request after the battery.
    writeln!(
        stream,
        "{{\"id\": \"alive\", \"system\": \
         \"chain c periodic=100 deadline=100 {{ task t prio=1 wcet=10 }}\"}}"
    )
    .unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let response = AnalysisResponse::from_json(&Json::parse(&line).unwrap()).unwrap();
    assert_eq!(response.id.as_deref(), Some("alive"));
    assert!(response.outcome.is_ok());

    let summary = server.shutdown(Duration::from_secs(10));
    assert_eq!(summary.requests, sent + 1);
    assert_eq!(summary.errors, sent);
}
