//! Satellite 4: the malformed/truncated/oversized frame battery driven
//! through the real socket path. Every hostile frame must draw exactly
//! one typed error response — no panics, no dropped connections — and
//! a valid request after the battery must still be answered.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use twca_api::{AnalysisResponse, Json, Session};
use twca_service::{FrameFuzzer, ServiceConfig, TcpServer};

#[test]
fn the_socket_survives_a_malformed_frame_battery() {
    let config = ServiceConfig {
        workers: 2,
        max_frame_bytes: 4096,
        ..ServiceConfig::default()
    };
    let server = TcpServer::start("127.0.0.1:0", Session::new(), &config).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let mut fuzzer = FrameFuzzer::new(99);
    let mut sent = 0usize;
    // Interleave reading with writing so neither side's socket buffer
    // can fill up and deadlock the pipeline.
    let drain = |reader: &mut BufReader<TcpStream>, upto: &mut usize, sent: usize| {
        let mut line = String::new();
        let mut errors = 0;
        while *upto < sent {
            line.clear();
            if reader.read_line(&mut line).unwrap() == 0 {
                panic!("connection died after {upto} responses");
            }
            let response = AnalysisResponse::from_json(&Json::parse(&line).unwrap())
                .unwrap_or_else(|e| panic!("untyped response {line:?}: {e}"));
            assert!(response.outcome.is_err(), "hostile frame accepted: {line}");
            errors += 1;
            *upto += 1;
        }
        errors
    };
    let mut answered = 0usize;
    for batch in 0..10 {
        for frame in fuzzer.frames(30) {
            stream.write_all(&frame).unwrap();
            stream.write_all(b"\n").unwrap();
            sent += 1;
        }
        if batch % 2 == 1 {
            let big = fuzzer.oversized(config.max_frame_bytes);
            stream.write_all(&big).unwrap();
            stream.write_all(b"\n").unwrap();
            sent += 1;
        }
        drain(&mut reader, &mut answered, sent);
    }
    assert_eq!(answered, sent);

    // The stream must still serve a valid request after the battery.
    writeln!(
        stream,
        "{{\"id\": \"alive\", \"system\": \
         \"chain c periodic=100 deadline=100 {{ task t prio=1 wcet=10 }}\"}}"
    )
    .unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let response = AnalysisResponse::from_json(&Json::parse(&line).unwrap()).unwrap();
    assert_eq!(response.id.as_deref(), Some("alive"));
    assert!(response.outcome.is_ok());

    let summary = server.shutdown(Duration::from_secs(10));
    assert_eq!(summary.requests, sent + 1);
    assert_eq!(summary.errors, sent);
}

/// PR 9 satellite: a client that dies mid-`store_put` — half a request
/// line, no newline, then a dropped socket — must leave the durable
/// journal consistent: nothing of the torn request is journaled,
/// acknowledged puts keep their versions, and a reopen of the store
/// directory replays exactly the acknowledged history.
#[test]
fn a_rude_disconnect_mid_store_put_keeps_the_durable_journal_consistent() {
    use std::sync::Arc;
    use twca_api::{DirIo, PersistPolicy, SystemStore};

    let dir = std::env::temp_dir().join(format!("twca-rude-put-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let open_store = || {
        SystemStore::durable(
            Arc::new(DirIo::open(&dir).expect("store dir opens")),
            PersistPolicy::default(),
        )
        .expect("durable store opens")
    };
    let (store, _) = open_store();
    let session = Session::new().with_store(Arc::new(store));
    let config = ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    };
    let server = TcpServer::start("127.0.0.1:0", session, &config).unwrap();

    let put = |wcet: u64| {
        format!(
            "{{\"queries\": [{{\"store_put\": {{\"name\": \"plant\", \"system\": \
             \"chain c periodic=100 deadline=100 {{ task t prio=1 wcet={wcet} }}\"}}}}]}}"
        )
    };
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    writeln!(stream, "{}", put(10)).unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"version\": 1"), "first put refused: {line}");

    // The rude client: half a store_put, never a newline, then gone.
    let torn = put(99);
    let mut rude = TcpStream::connect(server.local_addr()).unwrap();
    rude.write_all(&torn.as_bytes()[..torn.len() / 2]).unwrap();
    drop(rude);

    // The surviving connection still puts; the torn request claimed no
    // version and journaled nothing.
    line.clear();
    writeln!(stream, "{}", put(12)).unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("\"version\": 2"),
        "second put refused: {line}"
    );
    stream.shutdown(Shutdown::Write).unwrap();
    let _ = server.shutdown(Duration::from_secs(10));

    // Reopen the directory: exactly the two acknowledged puts replay —
    // no torn bytes, no trace of wcet=99.
    let (reopened, report) = open_store();
    assert_eq!(report.replayed, 2);
    assert_eq!(report.truncated_bytes, 0);
    let dump = reopened.export();
    assert_eq!(dump.len(), 1);
    let (name, version, body) = &dump[0];
    assert_eq!((name.as_str(), *version), ("plant", 2));
    match body {
        twca_api::StoredBody::Uni(system) => {
            let wcets: Vec<u64> = system.chains()[0]
                .tasks()
                .iter()
                .map(|t| t.wcet())
                .collect();
            assert_eq!(
                wcets,
                vec![12],
                "recovered body is not the acknowledged one"
            );
        }
        other => panic!("recovered body has the wrong shape: {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// PR 10 satellite: the slow-loris client — one byte every few tens of
/// milliseconds, never a newline — must be reaped at the idle timeout
/// while a concurrent well-behaved client on the same pool keeps
/// receiving its responses in order.
#[test]
fn a_slow_loris_is_reaped_while_honest_clients_keep_flowing() {
    use std::time::Instant;

    let config = ServiceConfig {
        workers: 2,
        read_timeout: Some(Duration::from_secs(2)),
        idle_timeout: Some(Duration::from_millis(250)),
        ..ServiceConfig::default()
    };
    let server = TcpServer::start("127.0.0.1:0", Session::new(), &config).unwrap();
    let addr = server.local_addr();

    // The loris: drip one byte of a would-be request every 30 ms. Each
    // byte resets any byte-silence clock, so only the completed-frame
    // (idle) clock can catch it.
    let loris = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(20)))
            .unwrap();
        let started = Instant::now();
        let body = b"{\"id\": \"loris\", \"system\": \"chain";
        let mut buf = [0u8; 64];
        // Drip bytes while watching the read side: a reaped connection
        // shows as EOF (the server's half-close) or a reset — writes
        // into a half-closed socket can keep succeeding, so they are
        // not the signal.
        for chunk in body.iter().cycle() {
            if stream.write_all(std::slice::from_ref(chunk)).is_err() {
                break;
            }
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(_) => break,
            }
            std::thread::sleep(Duration::from_millis(10));
            assert!(
                started.elapsed() <= Duration::from_secs(8),
                "the loris was never reaped"
            );
        }
        started.elapsed()
    });

    // Meanwhile an honest client gets every response, in order.
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for i in 0..10 {
        writeln!(
            stream,
            "{{\"id\": \"ok{i}\", \"system\": \
             \"chain c periodic=100 deadline=100 {{ task t prio=1 wcet=10 }}\"}}"
        )
        .unwrap();
        // Spread the writes across the loris's lifetime so the pool
        // serves both clients concurrently.
        std::thread::sleep(Duration::from_millis(40));
    }
    stream.shutdown(Shutdown::Write).unwrap();
    let mut ids = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        let response = AnalysisResponse::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert!(response.outcome.is_ok(), "honest request failed: {line}");
        ids.push(response.id.unwrap());
    }
    let expected: Vec<String> = (0..10).map(|i| format!("ok{i}")).collect();
    assert_eq!(ids, expected, "honest responses out of order or missing");

    let reaped_after = loris.join().unwrap();
    assert!(
        reaped_after < Duration::from_secs(8),
        "loris outlived the idle timeout: {reaped_after:?}"
    );

    let counters = server.pool().counters();
    assert!(
        counters.edge().reaped >= 1,
        "the reap was counted: {:?}",
        counters.edge()
    );
    let summary = server.shutdown(Duration::from_secs(10));
    assert!(
        summary.edge.reaped >= 1,
        "the drain summary carries edge counters"
    );
    assert_eq!(summary.requests, 10, "only honest requests were admitted");
}
