//! Satellite 3: K parallel connections against one shared-cache pool
//! must produce responses bit-identical to a serial single-session
//! replay, and a mid-connection disconnect must never poison other
//! connections.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use twca_api::{respond_line, Session};
use twca_service::loadgen::request_for;
use twca_service::{RequestMix, ServiceConfig, TcpServer};

const CONNECTIONS: usize = 6;
const PER_CONNECTION: usize = 8;

fn drive(addr: std::net::SocketAddr, conn: usize) -> (Vec<String>, Vec<String>) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut requests = Vec::new();
    for index in 0..PER_CONNECTION {
        let line = request_for(RequestMix::Mixed, 3, conn, index)
            .to_json()
            .to_string();
        writeln!(stream, "{line}").unwrap();
        requests.push(line);
    }
    stream.shutdown(Shutdown::Write).unwrap();
    let mut responses = Vec::new();
    let mut buf = String::new();
    loop {
        buf.clear();
        if reader.read_line(&mut buf).unwrap() == 0 {
            break;
        }
        responses.push(buf.trim_end().to_owned());
    }
    (requests, responses)
}

#[test]
fn parallel_pool_responses_match_serial_replay_bit_for_bit() {
    let server = TcpServer::start(
        "127.0.0.1:0",
        Session::new(),
        &ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let handles: Vec<_> = (0..CONNECTIONS)
        .map(|conn| std::thread::spawn(move || drive(addr, conn)))
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let summary = server.shutdown(Duration::from_secs(10));
    assert_eq!(summary.requests, CONNECTIONS * PER_CONNECTION);
    assert_eq!(summary.errors, 0);

    // Replay the same requests serially on one fresh session: every
    // pooled response must be byte-identical, independent of which
    // worker answered and how warm the shared cache was.
    let serial = Session::new();
    for (requests, responses) in results {
        assert_eq!(requests.len(), responses.len());
        for (request, response) in requests.iter().zip(&responses) {
            let expected = respond_line(&serial, request).to_json().to_string();
            assert_eq!(response, &expected);
        }
    }
}

#[test]
fn mid_connection_disconnect_never_poisons_other_connections() {
    let server = TcpServer::start(
        "127.0.0.1:0",
        Session::new(),
        &ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Rude clients: pipeline requests, then slam the connection shut
    // without reading a single response (close-with-unread-data sends
    // RST on most stacks, so server writes fail hard).
    let rude: Vec<_> = (0..3)
        .map(|conn| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                for index in 0..PER_CONNECTION {
                    let line = request_for(RequestMix::Chain, 5, conn, index)
                        .to_json()
                        .to_string();
                    if writeln!(stream, "{line}").is_err() {
                        break;
                    }
                }
                drop(stream);
            })
        })
        .collect();

    // A healthy client runs concurrently and must see every one of its
    // responses, in order, bit-identical to a serial replay.
    let (requests, responses) = drive(addr, 9);
    for handle in rude {
        handle.join().unwrap();
    }
    assert_eq!(responses.len(), requests.len());
    let serial = Session::new();
    for (request, response) in requests.iter().zip(&responses) {
        let expected = respond_line(&serial, request).to_json().to_string();
        assert_eq!(response, &expected);
    }
    let _ = server.shutdown(Duration::from_secs(10));
}
