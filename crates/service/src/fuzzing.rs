//! Deterministic malformed-frame generator for wire-robustness
//! testing: the `service-robustness` oracle and the service's own
//! tests feed these frames through the socket path and assert typed
//! error responses, no panics, and stream survival.

use twca_api::{AnalysisRequest, Query};

/// A deterministic generator of malformed, truncated, and oversized
/// wire frames. Frames never contain a newline (the frame separator)
/// and are never blank (blank lines are skipped by the server, so they
/// would produce no response to assert on).
#[derive(Debug, Clone)]
pub struct FrameFuzzer {
    state: u64,
}

impl FrameFuzzer {
    /// A generator seeded for reproducibility.
    #[must_use]
    pub fn new(seed: u64) -> FrameFuzzer {
        FrameFuzzer {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    fn next(&mut self) -> u64 {
        // xorshift64*: tiny, deterministic, dependency-free.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    /// A syntactically valid request line to truncate.
    fn valid_line(&mut self) -> String {
        let period = 50 + 10 * self.pick(8) as u64;
        AnalysisRequest::for_system(format!(
            "chain c periodic={period} deadline={period} {{ task t prio=1 wcet=5 }}"
        ))
        .with_id(format!("fz{}", self.pick(1000)))
        .with_query(Query::Dmm {
            chain: None,
            ks: vec![1, 5],
        })
        .to_json()
        .to_string()
    }

    /// One malformed frame. Every frame draws exactly one typed error
    /// response from a correct server — never a panic, never a dropped
    /// connection.
    pub fn frame(&mut self) -> Vec<u8> {
        match self.pick(8) {
            // Not JSON at all.
            0 => {
                let junk = [
                    "hello",
                    "{",
                    "}{",
                    "[1, 2",
                    "\"open string",
                    "nan",
                    "{]}",
                    "@@@@",
                ];
                junk[self.pick(junk.len())].as_bytes().to_vec()
            }
            // Valid JSON, structurally invalid request.
            1 => {
                let bad = [
                    r#"{"queries": []}"#,
                    r#"{"system": 42}"#,
                    r#"{"system": "x", "dist": "y"}"#,
                    r#"{"system": "x", "queries": [{"bogus": {}}]}"#,
                    r#"{"system": "x", "options": {"budget": "lots"}}"#,
                    r#"{"system": "x", "id": 7}"#,
                    r"[1, 2, 3]",
                    r#"{"resources": "nope"}"#,
                ];
                bad[self.pick(bad.len())].as_bytes().to_vec()
            }
            // Unsupported schema version.
            2 => format!("{{\"v\": {}, \"system\": \"x\"}}", 2 + self.pick(100)).into_bytes(),
            // A valid request truncated mid-frame: any strict prefix of
            // a single-line JSON object is invalid JSON.
            3 => {
                let line = self.valid_line().into_bytes();
                let cut = 1 + self.pick(line.len() - 1);
                line[..cut].to_vec()
            }
            // Invalid UTF-8.
            4 => {
                let mut frame = vec![0xFF, 0xFE, 0x80];
                frame.extend_from_slice(b"{\"system\"");
                frame.push(0xC0);
                frame
            }
            // Control bytes and NULs.
            5 => b"{\"system\": \"x\x00y\x01\"}".to_vec(),
            // DSL text that does not parse.
            6 => {
                let bad = [
                    r#"{"system": "chain broken {"}"#,
                    r#"{"system": "chain c periodic=0 { task t prio=1 wcet=1 }"}"#,
                    r#"{"dist": "resource r { chain"}"#,
                ];
                bad[self.pick(bad.len())].as_bytes().to_vec()
            }
            // Unknown selectors on a well-formed system.
            _ => {
                let bad = [
                    r#"{"system": "chain c periodic=10 { task t prio=1 wcet=1 }", "queries": [{"latency": {"chain": "ghost"}}]}"#,
                    r#"{"system": "chain c periodic=10 { task t prio=1 wcet=1 }", "queries": [{"witness": {"chain": "c"}}]}"#,
                    r#"{"system": "chain c periodic=10 { task t prio=1 wcet=1 }", "queries": [{"path": {"hops": ["a/b"], "ks": [1]}}]}"#,
                ];
                bad[self.pick(bad.len())].as_bytes().to_vec()
            }
        }
    }

    /// `count` malformed frames.
    pub fn frames(&mut self, count: usize) -> Vec<Vec<u8>> {
        (0..count).map(|_| self.frame()).collect()
    }

    /// One frame strictly larger than `limit` bytes (newline-free), to
    /// exercise the oversized-frame rejection.
    pub fn oversized(&mut self, limit: usize) -> Vec<u8> {
        let mut frame = Vec::with_capacity(limit + 16);
        frame.extend_from_slice(b"{\"system\": \"");
        while frame.len() <= limit + 8 {
            frame.push(b'a' + (self.pick(26) as u8));
        }
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_newline_free_and_non_blank() {
        let mut fuzzer = FrameFuzzer::new(7);
        for frame in fuzzer.frames(500) {
            assert!(!frame.contains(&b'\n'));
            assert!(
                frame.iter().any(|b| !b.is_ascii_whitespace()),
                "blank frames draw no response"
            );
        }
        let big = fuzzer.oversized(100);
        assert!(big.len() > 100);
        assert!(!big.contains(&b'\n'));
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = FrameFuzzer::new(42).frames(100);
        let b = FrameFuzzer::new(42).frames(100);
        assert_eq!(a, b);
        let c = FrameFuzzer::new(43).frames(100);
        assert_ne!(a, c);
    }

    #[test]
    fn every_frame_is_rejected_by_a_direct_session() {
        use twca_api::{respond_line, Session};
        let session = Session::new();
        let mut fuzzer = FrameFuzzer::new(11);
        for frame in fuzzer.frames(300) {
            let line = String::from_utf8_lossy(&frame).into_owned();
            let response = respond_line(&session, &line);
            assert!(
                response.outcome.is_err(),
                "fuzz frames must be invalid: {line}"
            );
        }
    }
}
