//! The load generator behind `twca loadgen` and the
//! `service_saturation` bench: N logical request streams multiplexed
//! over C TCP connections, fully pipelined, with per-request latency
//! sampling.
//!
//! One OS thread per *connection* (not per stream) keeps 10k+
//! concurrent streams practical on small machines: each connection
//! carries its share of streams round-robin, a writer thread keeps the
//! pipeline full, and the reader thread matches responses to send
//! timestamps by order — the server guarantees per-connection response
//! ordering, so no id bookkeeping is needed.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use twca_api::{
    AnalysisRequest, AnalysisResponse, Json, LinkSpec, Query, QueryOutcome, SiteSpec, StatsOutcome,
    Target,
};

use crate::retry::RetryPolicy;

/// What kind of requests a run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestMix {
    /// Uniprocessor chain-system requests only.
    Chain,
    /// Distributed linked-resource requests only.
    Dist,
    /// Alternating chain and distributed requests.
    Mixed,
    /// Store writes: every request is a `store_put` carrying a
    /// deterministic dedup id, so the whole corpus is safely
    /// retryable and exercises the at-most-once ledger.
    Store,
}

impl RequestMix {
    /// Parses the CLI/wire name.
    #[must_use]
    pub fn parse(name: &str) -> Option<RequestMix> {
        Some(match name {
            "chain" => RequestMix::Chain,
            "dist" => RequestMix::Dist,
            "mixed" => RequestMix::Mixed,
            "store" => RequestMix::Store,
            _ => return None,
        })
    }
}

/// Knobs of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Logical request streams.
    pub streams: usize,
    /// Requests sent per stream.
    pub requests_per_stream: usize,
    /// TCP connections the streams are multiplexed over.
    pub connections: usize,
    /// Request kinds.
    pub mix: RequestMix,
    /// Seed of the deterministic request corpus.
    pub seed: u64,
    /// Retry transport failures with exponential backoff. `None`
    /// keeps the fully pipelined fire-and-forget path (the bench
    /// shape); `Some` switches to windowed driving where unanswered
    /// requests are retried over a fresh connection — `store_put`s
    /// only because the corpus gives every one a dedup id.
    pub retry: Option<RetryPolicy>,
    /// Client-side fault injection: probability (parts per million)
    /// that a request's connection is torn down right after sending
    /// it, deterministic in `(seed, stream, round)`. Requires `retry`
    /// to recover; `0` disables.
    pub reset_ppm: u32,
    /// Fetch the server's `stats` outcome (open connections, queue
    /// depth peak, reap/timeout/reset counts) over a fresh connection
    /// after the timed run and attach it to the report.
    pub fetch_stats: bool,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            streams: 100,
            requests_per_stream: 10,
            connections: 8,
            mix: RequestMix::Mixed,
            seed: 42,
            retry: None,
            reset_ppm: 0,
            fetch_stats: false,
        }
    }
}

/// The deterministic request for `(stream, index)` under `mix` and
/// `seed`. A small parameter space (the same few systems recur across
/// streams) makes the run exercise the service tier — sharding,
/// queueing, cache sharing — rather than raw analysis throughput.
#[must_use]
pub fn request_for(mix: RequestMix, seed: u64, stream: usize, index: usize) -> AnalysisRequest {
    let variant = (seed as usize)
        .wrapping_add(stream.wrapping_mul(31))
        .wrapping_add(index.wrapping_mul(7));
    let id = format!("s{stream}-r{index}");
    if mix == RequestMix::Store {
        let period = 60 + 20 * (variant % 4) as u64;
        let wcet = 5 + (variant % 3) as u64;
        return AnalysisRequest {
            id: Some(id),
            target: Target::Service,
            queries: vec![Query::StorePut {
                name: format!("sys-{stream}"),
                system: Some(format!(
                    "chain c periodic={period} deadline={period} sync \
                     {{ task a prio=2 wcet={wcet} task b prio=1 wcet=10 }}"
                )),
                dist: None,
                // The dedup id is what makes a retried put safe: the
                // store answers a replay from its ledger instead of
                // double-applying.
                dedup: Some(format!("dd-{seed}-{stream}-{index}")),
            }],
            options: twca_api::RequestOptions::default(),
        };
    }
    let chain = match mix {
        RequestMix::Chain | RequestMix::Store => true,
        RequestMix::Dist => false,
        RequestMix::Mixed => (stream + index).is_multiple_of(2),
    };
    if chain {
        let period = 60 + 20 * (variant % 4) as u64;
        let wcet = 5 + (variant % 3) as u64;
        let request = AnalysisRequest::for_system(format!(
            "chain c periodic={period} deadline={period} sync {{ \
             task a prio=2 wcet={wcet} task b prio=1 wcet=10 }}\n\
             chain burst sporadic=900 overload {{ task x prio=3 wcet=15 }}"
        ))
        .with_id(id);
        match variant % 3 {
            0 => request.with_query(Query::Latency { chain: None }),
            1 => request.with_query(Query::Dmm {
                chain: Some("c".into()),
                ks: vec![1, 5, 10],
            }),
            _ => request.with_query(Query::WeaklyHard {
                chain: Some("c".into()),
                m: 2,
                k: 10,
            }),
        }
    } else {
        let period = 80 + 20 * (variant % 3) as u64;
        AnalysisRequest {
            id: Some(id),
            target: Target::Distributed {
                resources: vec![
                    (
                        "e0".into(),
                        format!(
                            "chain feed periodic={period} deadline={period} sync \
                             {{ task f prio=1 wcet=12 }}"
                        ),
                    ),
                    (
                        "e1".into(),
                        "chain act periodic=200 deadline=200 sync { task a prio=1 wcet=20 }".into(),
                    ),
                ],
                links: vec![LinkSpec {
                    from: SiteSpec {
                        resource: "e0".into(),
                        chain: "feed".into(),
                    },
                    to: SiteSpec {
                        resource: "e1".into(),
                        chain: "act".into(),
                    },
                }],
            },
            queries: vec![Query::Latency { chain: None }],
            options: twca_api::RequestOptions::default(),
        }
    }
}

/// The outcome of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests sent (and responses received).
    pub requests: u64,
    /// Successful responses.
    pub ok: u64,
    /// Error responses other than `overloaded`.
    pub errors: u64,
    /// Typed `overloaded` rejections.
    pub rejected: u64,
    /// Responses that never arrived (server died mid-run, or the
    /// retry budget ran out).
    pub lost: u64,
    /// Retry attempts beyond each request's first send.
    pub retries: u64,
    /// `store_put` responses answered from the dedup ledger (a
    /// retried put whose first attempt had landed).
    pub deduped: u64,
    /// Client-side connection teardowns injected via `reset_ppm`.
    pub injected_resets: u64,
    /// The server's `stats` outcome, when `fetch_stats` asked for it
    /// (fetched after the timed run, over a fresh connection).
    pub server_stats: Option<StatsOutcome>,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    latencies_ns: Vec<u64>,
}

impl LoadgenReport {
    /// Sustained request rate over the whole run.
    #[must_use]
    pub fn requests_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / secs
    }

    /// The `q`-quantile (0 < q ≤ 1) of per-request latency in
    /// nanoseconds, by the nearest-rank rule `rank = ⌈q·n⌉`; 0 when
    /// nothing completed.
    #[must_use]
    pub fn percentile_ns(&self, q: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let n = self.latencies_ns.len() as u64;
        // Integer basis points: floating-point `q * n` can land a hair
        // above an exact rank (0.99 × 100 = 99.000…01) and its ceil
        // then indexes one past the intended sample.
        let bp = (q * 10_000.0).round() as u64;
        let rank = bp.saturating_mul(n).div_ceil(10_000).clamp(1, n) as usize;
        self.latencies_ns[rank - 1]
    }

    /// Renders the human-readable report.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "{} request(s) in {:.3}s — {:.0} req/s\n\
             ok {} · errors {} · rejected {} · lost {}\n\
             latency p50 {} µs · p95 {} µs · p99 {} µs\n",
            self.requests,
            self.elapsed.as_secs_f64(),
            self.requests_per_sec(),
            self.ok,
            self.errors,
            self.rejected,
            self.lost,
            self.percentile_ns(0.50) / 1_000,
            self.percentile_ns(0.95) / 1_000,
            self.percentile_ns(0.99) / 1_000,
        );
        if self.retries + self.deduped + self.injected_resets > 0 {
            let _ = writeln!(
                out,
                "retries {} · deduped {} · injected resets {}",
                self.retries, self.deduped, self.injected_resets
            );
        }
        if let Some(stats) = &self.server_stats {
            let _ = writeln!(
                out,
                "server: open connections {} · queue depth peak {} · reaped {} \
                 · timeouts {} · resets {} · slow consumers {}",
                stats.open_connections,
                stats.queue_depth_peak,
                stats.reaped,
                stats.timeouts,
                stats.resets,
                stats.slow_consumers,
            );
        }
        out
    }

    /// Serializes the report for `--json` consumers.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("requests".into(), Json::UInt(self.requests)),
            ("ok".into(), Json::UInt(self.ok)),
            ("errors".into(), Json::UInt(self.errors)),
            ("rejected".into(), Json::UInt(self.rejected)),
            ("lost".into(), Json::UInt(self.lost)),
            ("retries".into(), Json::UInt(self.retries)),
            ("deduped".into(), Json::UInt(self.deduped)),
            ("injected_resets".into(), Json::UInt(self.injected_resets)),
            (
                "elapsed_ns".into(),
                Json::UInt(self.elapsed.as_nanos().min(u128::from(u64::MAX)) as u64),
            ),
            (
                "requests_per_sec".into(),
                Json::UInt(self.requests_per_sec() as u64),
            ),
            ("p50_ns".into(), Json::UInt(self.percentile_ns(0.50))),
            ("p95_ns".into(), Json::UInt(self.percentile_ns(0.95))),
            ("p99_ns".into(), Json::UInt(self.percentile_ns(0.99))),
        ];
        if let Some(stats) = &self.server_stats {
            fields.push((
                "server_stats".into(),
                Json::Object(vec![
                    (
                        "open_connections".into(),
                        Json::UInt(stats.open_connections),
                    ),
                    (
                        "queue_depth_peak".into(),
                        Json::UInt(stats.queue_depth_peak),
                    ),
                    ("reaped".into(), Json::UInt(stats.reaped)),
                    ("timeouts".into(), Json::UInt(stats.timeouts)),
                    ("resets".into(), Json::UInt(stats.resets)),
                    ("slow_consumers".into(), Json::UInt(stats.slow_consumers)),
                ]),
            ));
        }
        Json::Object(fields)
    }
}

#[derive(Default)]
struct ConnTally {
    ok: u64,
    errors: u64,
    rejected: u64,
    lost: u64,
    retries: u64,
    deduped: u64,
    injected_resets: u64,
    latencies_ns: Vec<u64>,
}

/// Drives `config` against the server at `addr`.
///
/// # Errors
///
/// Connection-establishment failures (on the retry path, only once
/// the retry budget is spent); mid-run losses are reported in the
/// `lost` counter instead of aborting the run.
pub fn run_loadgen(
    addr: impl ToSocketAddrs + Clone,
    config: &LoadgenConfig,
) -> std::io::Result<LoadgenReport> {
    let connections = config.connections.clamp(1, config.streams.max(1));
    let addrs: Vec<std::net::SocketAddr> = addr.to_socket_addrs()?.collect();
    let started = Instant::now();
    let mut handles = Vec::with_capacity(connections);
    for conn_index in 0..connections {
        let streams: Vec<usize> = (0..config.streams)
            .filter(|s| s % connections == conn_index)
            .collect();
        if streams.is_empty() {
            continue;
        }
        let config = config.clone();
        if config.retry.is_some() || config.reset_ppm > 0 {
            let addrs = addrs.clone();
            handles.push(std::thread::spawn(move || {
                drive_connection_retry(&addrs[..], &streams, &config)
            }));
        } else {
            let stream = TcpStream::connect(&addrs[..])?;
            stream.set_nodelay(true)?;
            handles.push(std::thread::spawn(move || {
                drive_connection(stream, &streams, &config)
            }));
        }
    }
    let mut total = ConnTally::default();
    for handle in handles {
        let tally = handle.join().unwrap_or_default();
        total.ok += tally.ok;
        total.errors += tally.errors;
        total.rejected += tally.rejected;
        total.lost += tally.lost;
        total.retries += tally.retries;
        total.deduped += tally.deduped;
        total.injected_resets += tally.injected_resets;
        total.latencies_ns.extend(tally.latencies_ns);
    }
    total.latencies_ns.sort_unstable();
    let elapsed = started.elapsed();
    // Fetched outside the timed window so the extra round trip never
    // skews the latency picture.
    let server_stats = if config.fetch_stats {
        fetch_server_stats(&addrs[..])
    } else {
        None
    };
    Ok(LoadgenReport {
        requests: (config.streams * config.requests_per_stream) as u64,
        ok: total.ok,
        errors: total.errors,
        rejected: total.rejected,
        lost: total.lost,
        retries: total.retries,
        deduped: total.deduped,
        injected_resets: total.injected_resets,
        server_stats,
        elapsed,
        latencies_ns: total.latencies_ns,
    })
}

/// One `stats` round trip over a fresh connection; `None` on any
/// failure (the report is best-effort observability, not a gate).
fn fetch_server_stats(addrs: &[std::net::SocketAddr]) -> Option<StatsOutcome> {
    let mut stream = TcpStream::connect(addrs).ok()?;
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    writeln!(stream, "{{\"queries\": [{{\"stats\": {{}}}}]}}").ok()?;
    stream.shutdown(Shutdown::Write).ok()?;
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let response = AnalysisResponse::from_json(&Json::parse(&line).ok()?).ok()?;
    match response.outcome.ok()?.into_iter().next()? {
        QueryOutcome::Stats(stats) => Some(stats),
        _ => None,
    }
}

fn drive_connection(stream: TcpStream, streams: &[usize], config: &LoadgenConfig) -> ConnTally {
    let total = streams.len() * config.requests_per_stream;
    let sent: Arc<Mutex<VecDeque<Instant>>> = Arc::new(Mutex::new(VecDeque::new()));
    let writer_sent = Arc::clone(&sent);
    let Ok(mut write_half) = stream.try_clone() else {
        return ConnTally {
            lost: total as u64,
            ..ConnTally::default()
        };
    };
    let my_streams = streams.to_vec();
    let mix = config.mix;
    let seed = config.seed;
    let rounds = config.requests_per_stream;
    let writer = std::thread::spawn(move || {
        let mut line = String::new();
        for round in 0..rounds {
            for &s in &my_streams {
                line.clear();
                line.push_str(&request_for(mix, seed, s, round).to_json().to_string());
                line.push('\n');
                writer_sent
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push_back(Instant::now());
                if write_half.write_all(line.as_bytes()).is_err() {
                    return;
                }
            }
        }
        // Half-close so the server's reader sees EOF once the pipeline
        // is drained.
        let _ = write_half.shutdown(Shutdown::Write);
    });

    let mut tally = ConnTally {
        latencies_ns: Vec::with_capacity(total),
        ..ConnTally::default()
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    for _ in 0..total {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let received = Instant::now();
        let sent_at = sent
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop_front();
        if let Some(sent_at) = sent_at {
            let ns = received
                .saturating_duration_since(sent_at)
                .as_nanos()
                .min(u128::from(u64::MAX)) as u64;
            tally.latencies_ns.push(ns);
        }
        match classify(&line) {
            Outcome::Ok { deduped } => {
                tally.ok += 1;
                tally.deduped += u64::from(deduped);
            }
            Outcome::Rejected => tally.rejected += 1,
            Outcome::Error => tally.errors += 1,
        }
    }
    let _ = writer.join();
    let answered = tally.ok + tally.errors + tally.rejected;
    tally.lost = (total as u64).saturating_sub(answered);
    tally
}

/// How many requests the retry driver keeps in flight per connection:
/// enough pipelining to stay busy, small enough that a mid-window
/// teardown re-sends little.
const RETRY_WINDOW: usize = 16;

/// One not-yet-answered request on the retry path.
struct PendingRequest {
    stream: usize,
    round: usize,
    attempt: u32,
}

/// Whether a request is safe to re-send after a transport failure
/// that may or may not have swallowed its answer: every query must be
/// idempotent, and a `store_put` counts only when it carries a dedup
/// id the store applies at most once.
fn retryable(request: &AnalysisRequest) -> bool {
    request.queries.iter().all(|q| match q {
        Query::StorePut { dedup, .. } => dedup.is_some(),
        _ => true,
    })
}

/// Deterministic per-request coin for client-side reset injection.
fn injects_reset(config: &LoadgenConfig, stream: usize, round: usize) -> bool {
    if config.reset_ppm == 0 {
        return false;
    }
    let mut x = config
        .seed
        .wrapping_add((stream as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((round as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (x ^ (x >> 31)) % 1_000_000 < u64::from(config.reset_ppm)
}

/// The windowed retry driver: requests go out in bounded windows, the
/// window's responses are read back, and anything unanswered when the
/// transport fails is re-sent over a fresh connection after an
/// exponential backoff — requests that are not [`retryable`] (or
/// whose budget runs out) are counted lost instead.
#[allow(clippy::too_many_lines)] // one window pipeline reads better unsplit
fn drive_connection_retry(
    addrs: &[std::net::SocketAddr],
    streams: &[usize],
    config: &LoadgenConfig,
) -> ConnTally {
    let policy = config.retry.unwrap_or(RetryPolicy {
        attempts: 1,
        ..RetryPolicy::default()
    });
    let mut queue: VecDeque<PendingRequest> = VecDeque::new();
    for round in 0..config.requests_per_stream {
        for &stream in streams {
            queue.push_back(PendingRequest {
                stream,
                round,
                attempt: 0,
            });
        }
    }
    let mut tally = ConnTally {
        latencies_ns: Vec::with_capacity(queue.len()),
        ..ConnTally::default()
    };
    let backoff_seed = config.seed ^ streams.first().copied().unwrap_or(0) as u64;
    let mut connect_failures = 0u32;
    let mut conn: Option<(TcpStream, BufReader<TcpStream>)> = None;
    while !queue.is_empty() {
        // (Re)establish the transport, backing off on failure.
        if conn.is_none() {
            let Ok(stream) = TcpStream::connect(addrs) else {
                connect_failures += 1;
                if !policy.allows(connect_failures) {
                    tally.lost += queue.len() as u64;
                    return tally;
                }
                std::thread::sleep(policy.backoff(backoff_seed, connect_failures));
                continue;
            };
            let _ = stream.set_nodelay(true);
            let Ok(read_half) = stream.try_clone() else {
                continue;
            };
            conn = Some((stream, BufReader::new(read_half)));
            connect_failures = 0;
        }
        let Some((stream, reader)) = conn.as_mut() else {
            continue;
        };
        // Send one window, noting a scheduled mid-window teardown.
        let window: Vec<PendingRequest> = {
            let take = queue.len().min(RETRY_WINDOW);
            queue.drain(..take).collect()
        };
        let mut teardown = false;
        let mut wrote = 0usize;
        let mut sent_at: Vec<Instant> = Vec::with_capacity(window.len());
        for pending in &window {
            let line = request_for(config.mix, config.seed, pending.stream, pending.round)
                .to_json()
                .to_string();
            sent_at.push(Instant::now());
            if writeln!(stream, "{line}").is_err() {
                teardown = true;
                break;
            }
            wrote += 1;
            if pending.attempt == 0 && injects_reset(config, pending.stream, pending.round) {
                tally.injected_resets += 1;
                let _ = stream.shutdown(Shutdown::Both);
                teardown = true;
                break;
            }
        }
        // Read back what the server managed to answer.
        let mut answered = 0usize;
        let mut line = String::new();
        while answered < wrote {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => {
                    teardown = true;
                    break;
                }
                Ok(_) => {}
            }
            let ns = Instant::now()
                .saturating_duration_since(sent_at[answered])
                .as_nanos()
                .min(u128::from(u64::MAX)) as u64;
            tally.latencies_ns.push(ns);
            match classify(&line) {
                Outcome::Ok { deduped } => {
                    tally.ok += 1;
                    tally.deduped += u64::from(deduped);
                }
                Outcome::Rejected => tally.rejected += 1,
                Outcome::Error => tally.errors += 1,
            }
            answered += 1;
        }
        // Requeue (or write off) the unanswered tail.
        let mut max_backoff = Duration::ZERO;
        for pending in window.into_iter().skip(answered) {
            let request = request_for(config.mix, config.seed, pending.stream, pending.round);
            let next_attempt = pending.attempt + 1;
            if retryable(&request) && policy.allows(next_attempt) {
                tally.retries += 1;
                max_backoff = max_backoff.max(policy.backoff(backoff_seed, next_attempt));
                queue.push_back(PendingRequest {
                    attempt: next_attempt,
                    ..pending
                });
            } else {
                tally.lost += 1;
            }
        }
        if teardown {
            conn = None;
            if !max_backoff.is_zero() {
                std::thread::sleep(max_backoff);
            }
        }
    }
    if let Some((stream, mut reader)) = conn {
        // Drain the half-close handshake so the server sees a clean
        // EOF rather than a reset.
        let _ = stream.shutdown(Shutdown::Write);
        let mut rest = String::new();
        let _ = reader.read_to_string(&mut rest);
    }
    tally
}

enum Outcome {
    Ok {
        /// Whether a `store_put` outcome was answered from the dedup
        /// ledger.
        deduped: bool,
    },
    Rejected,
    Error,
}

fn classify(line: &str) -> Outcome {
    match Json::parse(line) {
        Err(_) => Outcome::Error,
        Ok(value) => match value.get("error") {
            None => {
                let deduped = value
                    .get("ok")
                    .and_then(|outcomes| match outcomes {
                        Json::Array(items) => Some(items),
                        _ => None,
                    })
                    .is_some_and(|items| {
                        items.iter().any(|o| {
                            o.get("store_put")
                                .and_then(|p| p.get("deduped"))
                                .and_then(Json::as_bool)
                                == Some(true)
                        })
                    });
                Outcome::Ok { deduped }
            }
            Some(error) => match error.get("kind").and_then(Json::as_str) {
                Some("overloaded") => Outcome::Rejected,
                _ => Outcome::Error,
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ServiceConfig;
    use crate::server::TcpServer;
    use twca_api::Session;

    #[test]
    fn corpus_is_deterministic_and_valid() {
        for mix in [
            RequestMix::Chain,
            RequestMix::Dist,
            RequestMix::Mixed,
            RequestMix::Store,
        ] {
            for stream in 0..4 {
                for index in 0..4 {
                    let a = request_for(mix, 42, stream, index);
                    let b = request_for(mix, 42, stream, index);
                    assert_eq!(a, b);
                    let wire = a.to_json().to_string();
                    let reparsed =
                        AnalysisRequest::from_json(&Json::parse(&wire).unwrap()).unwrap();
                    assert_eq!(a, reparsed);
                }
            }
        }
    }

    #[test]
    fn loadgen_round_trip_is_clean() {
        let server =
            TcpServer::start("127.0.0.1:0", Session::new(), &ServiceConfig::default()).unwrap();
        let config = LoadgenConfig {
            streams: 20,
            requests_per_stream: 3,
            connections: 4,
            mix: RequestMix::Mixed,
            seed: 7,
            ..LoadgenConfig::default()
        };
        let report = run_loadgen(server.local_addr(), &config).unwrap();
        assert_eq!(report.requests, 60);
        assert_eq!(report.ok, 60);
        assert_eq!(report.errors + report.rejected + report.lost, 0);
        assert!(report.percentile_ns(0.5) <= report.percentile_ns(0.99));
        let summary = server.shutdown(std::time::Duration::from_secs(5));
        assert_eq!(summary.requests, 60);
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn percentiles_come_from_the_sorted_tail() {
        let report = LoadgenReport {
            requests: 4,
            ok: 4,
            errors: 0,
            rejected: 0,
            lost: 0,
            retries: 0,
            deduped: 0,
            injected_resets: 0,
            server_stats: None,
            elapsed: Duration::from_secs(1),
            latencies_ns: vec![10, 20, 30, 100],
        };
        assert_eq!(report.percentile_ns(0.50), 20);
        assert_eq!(report.percentile_ns(0.99), 100);
        assert_eq!(report.requests_per_sec() as u64, 4);
    }

    fn report_with(latencies_ns: Vec<u64>) -> LoadgenReport {
        LoadgenReport {
            requests: latencies_ns.len() as u64,
            ok: latencies_ns.len() as u64,
            errors: 0,
            rejected: 0,
            lost: 0,
            retries: 0,
            deduped: 0,
            injected_resets: 0,
            server_stats: None,
            elapsed: Duration::from_secs(1),
            latencies_ns,
        }
    }

    /// Nearest-rank on small sample counts: `rank = ⌈q·n⌉` exactly,
    /// never one past it (the old float ceil indexed past the intended
    /// rank whenever `q·n` was representable a hair above an integer).
    #[test]
    fn small_sample_percentiles_use_exact_nearest_rank() {
        // 1 sample: every quantile is that sample.
        let one = report_with(vec![7]);
        for q in [0.01, 0.50, 0.95, 0.99, 1.0] {
            assert_eq!(one.percentile_ns(q), 7, "q={q}");
        }

        // 2 samples: ranks split at q = 0.5.
        let two = report_with(vec![10, 20]);
        assert_eq!(two.percentile_ns(0.50), 10);
        assert_eq!(two.percentile_ns(0.95), 20);
        assert_eq!(two.percentile_ns(0.99), 20);

        // 99 samples 1..=99: ⌈q·99⌉ directly names the value.
        let ninety_nine = report_with((1..=99).collect());
        assert_eq!(ninety_nine.percentile_ns(0.50), 50);
        assert_eq!(ninety_nine.percentile_ns(0.95), 95); // ⌈94.05⌉
        assert_eq!(ninety_nine.percentile_ns(0.99), 99); // ⌈98.01⌉

        // 100 samples 1..=100: q·n is an exact integer — the rank must
        // be q·n itself, not one past it.
        let hundred = report_with((1..=100).collect());
        assert_eq!(hundred.percentile_ns(0.95), 95);
        assert_eq!(hundred.percentile_ns(0.99), 99);
        assert_eq!(hundred.percentile_ns(1.0), 100);
    }

    #[test]
    fn retry_recovers_every_request_under_injected_resets() {
        let server =
            TcpServer::start("127.0.0.1:0", Session::new(), &ServiceConfig::default()).unwrap();
        let config = LoadgenConfig {
            streams: 12,
            requests_per_stream: 4,
            connections: 3,
            mix: RequestMix::Store,
            seed: 11,
            retry: Some(RetryPolicy {
                attempts: 6,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(20),
            }),
            // ~15% of requests tear their connection down right after
            // sending — with 48 requests this injects essentially
            // always; the run must still end clean.
            reset_ppm: 150_000,
            fetch_stats: true,
        };
        let report = run_loadgen(server.local_addr(), &config).unwrap();
        assert_eq!(report.requests, 48);
        assert_eq!(report.ok, 48, "retry must recover every request");
        assert_eq!(report.errors + report.rejected + report.lost, 0);
        assert!(
            report.injected_resets > 0,
            "a 15% ppm rate over 48 requests injects"
        );
        assert!(
            report.retries >= report.injected_resets,
            "every teardown forces at least its own request to retry"
        );
        let stats = report.server_stats.expect("fetch_stats was on");
        assert!(
            stats.resets > 0,
            "the server counted the injected teardowns: {stats:?}"
        );
        let rendered = report.render();
        assert!(rendered.contains("retries"), "{rendered}");
        assert!(rendered.contains("open connections"), "{rendered}");
        let _ = server.shutdown(Duration::from_secs(5));
    }

    #[test]
    fn retried_store_puts_are_deduplicated_not_double_applied() {
        // Force the worst case deterministically: send a put, tear the
        // connection down before reading the ack, then retry the same
        // dedup id. The store must answer the replay from its ledger.
        let server =
            TcpServer::start("127.0.0.1:0", Session::new(), &ServiceConfig::default()).unwrap();
        let request = request_for(RequestMix::Store, 5, 0, 0)
            .to_json()
            .to_string();
        {
            let mut stream = TcpStream::connect(server.local_addr()).unwrap();
            writeln!(stream, "{request}").unwrap();
            // Wait for the ack so the put has definitely applied, then
            // drop the connection as if the ack never arrived.
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(!line.contains("\"deduped\": true"), "{line}");
        }
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        writeln!(stream, "{request}").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let Outcome::Ok { deduped } = classify(&line) else {
            panic!("retried put failed: {line}");
        };
        assert!(deduped, "the replayed put came from the ledger: {line}");
        let _ = server.shutdown(Duration::from_secs(5));
    }
}
