//! The load generator behind `twca loadgen` and the
//! `service_saturation` bench: N logical request streams multiplexed
//! over C TCP connections, fully pipelined, with per-request latency
//! sampling.
//!
//! One OS thread per *connection* (not per stream) keeps 10k+
//! concurrent streams practical on small machines: each connection
//! carries its share of streams round-robin, a writer thread keeps the
//! pipeline full, and the reader thread matches responses to send
//! timestamps by order — the server guarantees per-connection response
//! ordering, so no id bookkeeping is needed.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use twca_api::{AnalysisRequest, Json, LinkSpec, Query, SiteSpec, Target};

/// What kind of requests a run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestMix {
    /// Uniprocessor chain-system requests only.
    Chain,
    /// Distributed linked-resource requests only.
    Dist,
    /// Alternating chain and distributed requests.
    Mixed,
}

impl RequestMix {
    /// Parses the CLI/wire name.
    #[must_use]
    pub fn parse(name: &str) -> Option<RequestMix> {
        Some(match name {
            "chain" => RequestMix::Chain,
            "dist" => RequestMix::Dist,
            "mixed" => RequestMix::Mixed,
            _ => return None,
        })
    }
}

/// Knobs of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Logical request streams.
    pub streams: usize,
    /// Requests sent per stream.
    pub requests_per_stream: usize,
    /// TCP connections the streams are multiplexed over.
    pub connections: usize,
    /// Request kinds.
    pub mix: RequestMix,
    /// Seed of the deterministic request corpus.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            streams: 100,
            requests_per_stream: 10,
            connections: 8,
            mix: RequestMix::Mixed,
            seed: 42,
        }
    }
}

/// The deterministic request for `(stream, index)` under `mix` and
/// `seed`. A small parameter space (the same few systems recur across
/// streams) makes the run exercise the service tier — sharding,
/// queueing, cache sharing — rather than raw analysis throughput.
#[must_use]
pub fn request_for(mix: RequestMix, seed: u64, stream: usize, index: usize) -> AnalysisRequest {
    let variant = (seed as usize)
        .wrapping_add(stream.wrapping_mul(31))
        .wrapping_add(index.wrapping_mul(7));
    let chain = match mix {
        RequestMix::Chain => true,
        RequestMix::Dist => false,
        RequestMix::Mixed => (stream + index).is_multiple_of(2),
    };
    let id = format!("s{stream}-r{index}");
    if chain {
        let period = 60 + 20 * (variant % 4) as u64;
        let wcet = 5 + (variant % 3) as u64;
        let request = AnalysisRequest::for_system(format!(
            "chain c periodic={period} deadline={period} sync {{ \
             task a prio=2 wcet={wcet} task b prio=1 wcet=10 }}\n\
             chain burst sporadic=900 overload {{ task x prio=3 wcet=15 }}"
        ))
        .with_id(id);
        match variant % 3 {
            0 => request.with_query(Query::Latency { chain: None }),
            1 => request.with_query(Query::Dmm {
                chain: Some("c".into()),
                ks: vec![1, 5, 10],
            }),
            _ => request.with_query(Query::WeaklyHard {
                chain: Some("c".into()),
                m: 2,
                k: 10,
            }),
        }
    } else {
        let period = 80 + 20 * (variant % 3) as u64;
        AnalysisRequest {
            id: Some(id),
            target: Target::Distributed {
                resources: vec![
                    (
                        "e0".into(),
                        format!(
                            "chain feed periodic={period} deadline={period} sync \
                             {{ task f prio=1 wcet=12 }}"
                        ),
                    ),
                    (
                        "e1".into(),
                        "chain act periodic=200 deadline=200 sync { task a prio=1 wcet=20 }".into(),
                    ),
                ],
                links: vec![LinkSpec {
                    from: SiteSpec {
                        resource: "e0".into(),
                        chain: "feed".into(),
                    },
                    to: SiteSpec {
                        resource: "e1".into(),
                        chain: "act".into(),
                    },
                }],
            },
            queries: vec![Query::Latency { chain: None }],
            options: twca_api::RequestOptions::default(),
        }
    }
}

/// The outcome of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests sent (and responses received).
    pub requests: u64,
    /// Successful responses.
    pub ok: u64,
    /// Error responses other than `overloaded`.
    pub errors: u64,
    /// Typed `overloaded` rejections.
    pub rejected: u64,
    /// Responses that never arrived (server died mid-run).
    pub lost: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    latencies_ns: Vec<u64>,
}

impl LoadgenReport {
    /// Sustained request rate over the whole run.
    #[must_use]
    pub fn requests_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / secs
    }

    /// The `q`-quantile (0 < q ≤ 1) of per-request latency in
    /// nanoseconds, by the nearest-rank rule `rank = ⌈q·n⌉`; 0 when
    /// nothing completed.
    #[must_use]
    pub fn percentile_ns(&self, q: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let n = self.latencies_ns.len() as u64;
        // Integer basis points: floating-point `q * n` can land a hair
        // above an exact rank (0.99 × 100 = 99.000…01) and its ceil
        // then indexes one past the intended sample.
        let bp = (q * 10_000.0).round() as u64;
        let rank = bp.saturating_mul(n).div_ceil(10_000).clamp(1, n) as usize;
        self.latencies_ns[rank - 1]
    }

    /// Renders the human-readable report.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{} request(s) in {:.3}s — {:.0} req/s\n\
             ok {} · errors {} · rejected {} · lost {}\n\
             latency p50 {} µs · p95 {} µs · p99 {} µs\n",
            self.requests,
            self.elapsed.as_secs_f64(),
            self.requests_per_sec(),
            self.ok,
            self.errors,
            self.rejected,
            self.lost,
            self.percentile_ns(0.50) / 1_000,
            self.percentile_ns(0.95) / 1_000,
            self.percentile_ns(0.99) / 1_000,
        )
    }

    /// Serializes the report for `--json` consumers.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("requests".into(), Json::UInt(self.requests)),
            ("ok".into(), Json::UInt(self.ok)),
            ("errors".into(), Json::UInt(self.errors)),
            ("rejected".into(), Json::UInt(self.rejected)),
            ("lost".into(), Json::UInt(self.lost)),
            (
                "elapsed_ns".into(),
                Json::UInt(self.elapsed.as_nanos().min(u128::from(u64::MAX)) as u64),
            ),
            (
                "requests_per_sec".into(),
                Json::UInt(self.requests_per_sec() as u64),
            ),
            ("p50_ns".into(), Json::UInt(self.percentile_ns(0.50))),
            ("p95_ns".into(), Json::UInt(self.percentile_ns(0.95))),
            ("p99_ns".into(), Json::UInt(self.percentile_ns(0.99))),
        ])
    }
}

struct ConnTally {
    ok: u64,
    errors: u64,
    rejected: u64,
    lost: u64,
    latencies_ns: Vec<u64>,
}

/// Drives `config` against the server at `addr`.
///
/// # Errors
///
/// Connection-establishment failures; mid-run losses are reported in
/// the `lost` counter instead of aborting the run.
pub fn run_loadgen(
    addr: impl ToSocketAddrs + Clone,
    config: &LoadgenConfig,
) -> std::io::Result<LoadgenReport> {
    let connections = config.connections.clamp(1, config.streams.max(1));
    let started = Instant::now();
    let mut handles = Vec::with_capacity(connections);
    for conn_index in 0..connections {
        let streams: Vec<usize> = (0..config.streams)
            .filter(|s| s % connections == conn_index)
            .collect();
        if streams.is_empty() {
            continue;
        }
        let stream = TcpStream::connect(addr.clone())?;
        stream.set_nodelay(true)?;
        let config = config.clone();
        handles.push(std::thread::spawn(move || {
            drive_connection(stream, &streams, &config)
        }));
    }
    let mut ok = 0;
    let mut errors = 0;
    let mut rejected = 0;
    let mut lost = 0;
    let mut latencies_ns = Vec::new();
    for handle in handles {
        let tally = handle.join().unwrap_or(ConnTally {
            ok: 0,
            errors: 0,
            rejected: 0,
            lost: 0,
            latencies_ns: Vec::new(),
        });
        ok += tally.ok;
        errors += tally.errors;
        rejected += tally.rejected;
        lost += tally.lost;
        latencies_ns.extend(tally.latencies_ns);
    }
    latencies_ns.sort_unstable();
    Ok(LoadgenReport {
        requests: (config.streams * config.requests_per_stream) as u64,
        ok,
        errors,
        rejected,
        lost,
        elapsed: started.elapsed(),
        latencies_ns,
    })
}

fn drive_connection(stream: TcpStream, streams: &[usize], config: &LoadgenConfig) -> ConnTally {
    let total = streams.len() * config.requests_per_stream;
    let sent: Arc<Mutex<VecDeque<Instant>>> = Arc::new(Mutex::new(VecDeque::new()));
    let writer_sent = Arc::clone(&sent);
    let Ok(mut write_half) = stream.try_clone() else {
        return ConnTally {
            ok: 0,
            errors: 0,
            rejected: 0,
            lost: total as u64,
            latencies_ns: Vec::new(),
        };
    };
    let my_streams = streams.to_vec();
    let mix = config.mix;
    let seed = config.seed;
    let rounds = config.requests_per_stream;
    let writer = std::thread::spawn(move || {
        let mut line = String::new();
        for round in 0..rounds {
            for &s in &my_streams {
                line.clear();
                line.push_str(&request_for(mix, seed, s, round).to_json().to_string());
                line.push('\n');
                writer_sent
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push_back(Instant::now());
                if write_half.write_all(line.as_bytes()).is_err() {
                    return;
                }
            }
        }
        // Half-close so the server's reader sees EOF once the pipeline
        // is drained.
        let _ = write_half.shutdown(Shutdown::Write);
    });

    let mut tally = ConnTally {
        ok: 0,
        errors: 0,
        rejected: 0,
        lost: 0,
        latencies_ns: Vec::with_capacity(total),
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    for _ in 0..total {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let received = Instant::now();
        let sent_at = sent
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop_front();
        if let Some(sent_at) = sent_at {
            let ns = received
                .saturating_duration_since(sent_at)
                .as_nanos()
                .min(u128::from(u64::MAX)) as u64;
            tally.latencies_ns.push(ns);
        }
        match classify(&line) {
            Outcome::Ok => tally.ok += 1,
            Outcome::Rejected => tally.rejected += 1,
            Outcome::Error => tally.errors += 1,
        }
    }
    let _ = writer.join();
    let answered = tally.ok + tally.errors + tally.rejected;
    tally.lost = (total as u64).saturating_sub(answered);
    tally
}

enum Outcome {
    Ok,
    Rejected,
    Error,
}

fn classify(line: &str) -> Outcome {
    match Json::parse(line) {
        Err(_) => Outcome::Error,
        Ok(value) => match value.get("error") {
            None => Outcome::Ok,
            Some(error) => match error.get("kind").and_then(Json::as_str) {
                Some("overloaded") => Outcome::Rejected,
                _ => Outcome::Error,
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ServiceConfig;
    use crate::server::TcpServer;
    use twca_api::Session;

    #[test]
    fn corpus_is_deterministic_and_valid() {
        for mix in [RequestMix::Chain, RequestMix::Dist, RequestMix::Mixed] {
            for stream in 0..4 {
                for index in 0..4 {
                    let a = request_for(mix, 42, stream, index);
                    let b = request_for(mix, 42, stream, index);
                    assert_eq!(a, b);
                    let wire = a.to_json().to_string();
                    let reparsed =
                        AnalysisRequest::from_json(&Json::parse(&wire).unwrap()).unwrap();
                    assert_eq!(a, reparsed);
                }
            }
        }
    }

    #[test]
    fn loadgen_round_trip_is_clean() {
        let server =
            TcpServer::start("127.0.0.1:0", Session::new(), &ServiceConfig::default()).unwrap();
        let config = LoadgenConfig {
            streams: 20,
            requests_per_stream: 3,
            connections: 4,
            mix: RequestMix::Mixed,
            seed: 7,
        };
        let report = run_loadgen(server.local_addr(), &config).unwrap();
        assert_eq!(report.requests, 60);
        assert_eq!(report.ok, 60);
        assert_eq!(report.errors + report.rejected + report.lost, 0);
        assert!(report.percentile_ns(0.5) <= report.percentile_ns(0.99));
        let summary = server.shutdown(std::time::Duration::from_secs(5));
        assert_eq!(summary.requests, 60);
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn percentiles_come_from_the_sorted_tail() {
        let report = LoadgenReport {
            requests: 4,
            ok: 4,
            errors: 0,
            rejected: 0,
            lost: 0,
            elapsed: Duration::from_secs(1),
            latencies_ns: vec![10, 20, 30, 100],
        };
        assert_eq!(report.percentile_ns(0.50), 20);
        assert_eq!(report.percentile_ns(0.99), 100);
        assert_eq!(report.requests_per_sec() as u64, 4);
    }

    fn report_with(latencies_ns: Vec<u64>) -> LoadgenReport {
        LoadgenReport {
            requests: latencies_ns.len() as u64,
            ok: latencies_ns.len() as u64,
            errors: 0,
            rejected: 0,
            lost: 0,
            elapsed: Duration::from_secs(1),
            latencies_ns,
        }
    }

    /// Nearest-rank on small sample counts: `rank = ⌈q·n⌉` exactly,
    /// never one past it (the old float ceil indexed past the intended
    /// rank whenever `q·n` was representable a hair above an integer).
    #[test]
    fn small_sample_percentiles_use_exact_nearest_rank() {
        // 1 sample: every quantile is that sample.
        let one = report_with(vec![7]);
        for q in [0.01, 0.50, 0.95, 0.99, 1.0] {
            assert_eq!(one.percentile_ns(q), 7, "q={q}");
        }

        // 2 samples: ranks split at q = 0.5.
        let two = report_with(vec![10, 20]);
        assert_eq!(two.percentile_ns(0.50), 10);
        assert_eq!(two.percentile_ns(0.95), 20);
        assert_eq!(two.percentile_ns(0.99), 20);

        // 99 samples 1..=99: ⌈q·99⌉ directly names the value.
        let ninety_nine = report_with((1..=99).collect());
        assert_eq!(ninety_nine.percentile_ns(0.50), 50);
        assert_eq!(ninety_nine.percentile_ns(0.95), 95); // ⌈94.05⌉
        assert_eq!(ninety_nine.percentile_ns(0.99), 99); // ⌈98.01⌉

        // 100 samples 1..=100: q·n is an exact integer — the rank must
        // be q·n itself, not one past it.
        let hundred = report_with((1..=100).collect());
        assert_eq!(hundred.percentile_ns(0.95), 95);
        assert_eq!(hundred.percentile_ns(0.99), 99);
        assert_eq!(hundred.percentile_ns(1.0), 100);
    }
}
