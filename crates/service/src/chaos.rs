//! The fault-injectable transport seam.
//!
//! [`ChaosRead`] / [`ChaosWrite`] wrap any byte stream and replay a
//! seeded, schedulable [`FaultPlan`] against it: delayed and stalled
//! operations, short reads / partial writes, mid-frame resets, and
//! single-bit corruption. The wrappers are byte-transparent when the
//! plan is empty — [`FaultPlan::none`] makes them a pure pass-through
//! — so the same code path serves production traffic and chaos runs.
//!
//! Every *injected* fault is counted in a shared [`ChaosTally`], which
//! is what lets the `chaos-liveness` oracle reconcile the server's
//! connection counters against the plan: a reset that was scheduled
//! but never reached (the stream ended first) is not in the tally and
//! must not be in the server's counters either.

use std::collections::BTreeMap;
use std::io::{Error, ErrorKind, Read, Result, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One scheduled fault, applied to a single read or write call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Sleep briefly before performing the operation.
    Delay(Duration),
    /// Sleep long enough to look like a hung peer, then proceed.
    Stall(Duration),
    /// Truncate the operation to at most this many bytes (≥ 1): a
    /// short read or a partial write. Splits multi-byte UTF-8
    /// sequences and frames across calls.
    Short(usize),
    /// Fail the operation with `ConnectionReset`; every later call on
    /// this wrapper fails too (the peer is gone).
    Reset,
    /// Flip one bit (0–7) of the first byte moved by the operation.
    Corrupt(u8),
}

/// A seeded schedule of faults keyed by operation index: the `n`-th
/// read (or write) through a wrapper hits the fault planned for `n`.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: BTreeMap<u64, FaultKind>,
}

/// A tiny xorshift64* generator, seeded deterministically; the service
/// crate stays dependency-free.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Whitens a user seed into a non-zero xorshift state (splitmix64
/// finalizer); adjacent seeds must not collide (`42 | 1 == 43 | 1`).
fn mix_seed(seed: u64) -> u64 {
    let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (x ^ (x >> 31)) | 1
}

impl FaultPlan {
    /// The empty plan: wrappers carrying it are byte-transparent.
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules `fault` for operation number `op` (builder-style).
    #[must_use]
    pub fn with(mut self, op: u64, fault: FaultKind) -> FaultPlan {
        self.faults.insert(op, fault);
        self
    }

    /// A fuzzed schedule for a read-side wrapper: over the first `ops`
    /// operations, roughly 3% delays, 1% stalls, 8% short reads, 1%
    /// corrupted bytes, and 0.7% resets, all deterministic in `seed`.
    #[must_use]
    pub fn fuzzed_read(seed: u64, ops: u64) -> FaultPlan {
        let mut state = mix_seed(seed);
        let mut plan = FaultPlan::none();
        for op in 0..ops {
            let roll = xorshift(&mut state) % 1000;
            let fault = match roll {
                0..=29 => FaultKind::Delay(Duration::from_micros(50 + xorshift(&mut state) % 450)),
                30..=39 => FaultKind::Stall(Duration::from_millis(1 + xorshift(&mut state) % 7)),
                40..=119 => FaultKind::Short(1 + (xorshift(&mut state) % 3) as usize),
                120..=129 => FaultKind::Corrupt((xorshift(&mut state) % 8) as u8),
                130..=136 => FaultKind::Reset,
                _ => continue,
            };
            plan.faults.insert(op, fault);
        }
        plan
    }

    /// A fuzzed schedule for a write-side wrapper: delays, partial
    /// writes, and rare resets — no corruption, so an injected fault
    /// can tear or kill a response stream but never forge one.
    #[must_use]
    pub fn fuzzed_write(seed: u64, ops: u64) -> FaultPlan {
        // Decorrelate from the read plan of the same seed.
        let mut state = mix_seed(seed ^ 0xC3A5_C85C_97CB_3127);
        let mut plan = FaultPlan::none();
        for op in 0..ops {
            let roll = xorshift(&mut state) % 1000;
            let fault = match roll {
                0..=29 => FaultKind::Delay(Duration::from_micros(50 + xorshift(&mut state) % 450)),
                30..=109 => FaultKind::Short(1 + (xorshift(&mut state) % 3) as usize),
                110..=112 => FaultKind::Reset,
                _ => continue,
            };
            plan.faults.insert(op, fault);
        }
        plan
    }

    /// Whether the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault scheduled for operation `op`, if any.
    #[must_use]
    pub fn fault_at(&self, op: u64) -> Option<FaultKind> {
        self.faults.get(&op).copied()
    }
}

/// Counts of faults actually injected (a scheduled fault past the end
/// of the stream never fires and is never counted). Shared between
/// the read and write halves of a chaotic connection.
#[derive(Debug, Default)]
pub struct ChaosTally {
    delays: AtomicU64,
    stalls: AtomicU64,
    shorts: AtomicU64,
    resets: AtomicU64,
    corrupted: AtomicU64,
}

impl ChaosTally {
    /// A fresh all-zero tally.
    #[must_use]
    pub fn new() -> ChaosTally {
        ChaosTally::default()
    }

    /// Injected delays + stalls.
    pub fn delays(&self) -> u64 {
        self.delays.load(Ordering::Relaxed) + self.stalls.load(Ordering::Relaxed)
    }

    /// Injected short reads / partial writes.
    pub fn shorts(&self) -> u64 {
        self.shorts.load(Ordering::Relaxed)
    }

    /// Injected resets.
    pub fn resets(&self) -> u64 {
        self.resets.load(Ordering::Relaxed)
    }

    /// Injected corrupted bytes.
    pub fn corrupted(&self) -> u64 {
        self.corrupted.load(Ordering::Relaxed)
    }
}

/// The read half of a chaotic stream; see the module docs.
#[derive(Debug)]
pub struct ChaosRead<R> {
    inner: R,
    plan: Arc<FaultPlan>,
    tally: Arc<ChaosTally>,
    op: u64,
    dead: bool,
}

impl<R: Read> ChaosRead<R> {
    /// Wraps `inner` under `plan`, counting injections into `tally`.
    pub fn new(inner: R, plan: Arc<FaultPlan>, tally: Arc<ChaosTally>) -> ChaosRead<R> {
        ChaosRead {
            inner,
            plan,
            tally,
            op: 0,
            dead: false,
        }
    }
}

impl<R: Read> Read for ChaosRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        if self.dead {
            return Err(Error::new(ErrorKind::ConnectionReset, "injected reset"));
        }
        let op = self.op;
        self.op += 1;
        match self.plan.fault_at(op) {
            None => self.inner.read(buf),
            Some(FaultKind::Delay(d)) => {
                self.tally.delays.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(d);
                self.inner.read(buf)
            }
            Some(FaultKind::Stall(d)) => {
                self.tally.stalls.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(d);
                self.inner.read(buf)
            }
            Some(FaultKind::Short(max)) => {
                let cap = buf.len().min(max.max(1));
                if cap > 0 {
                    self.tally.shorts.fetch_add(1, Ordering::Relaxed);
                }
                self.inner.read(&mut buf[..cap])
            }
            Some(FaultKind::Reset) => {
                self.dead = true;
                self.tally.resets.fetch_add(1, Ordering::Relaxed);
                Err(Error::new(ErrorKind::ConnectionReset, "injected reset"))
            }
            Some(FaultKind::Corrupt(bit)) => {
                let n = self.inner.read(buf)?;
                if n > 0 {
                    self.tally.corrupted.fetch_add(1, Ordering::Relaxed);
                    buf[0] ^= 1 << (bit % 8);
                }
                Ok(n)
            }
        }
    }
}

/// The write half of a chaotic stream; see the module docs.
#[derive(Debug)]
pub struct ChaosWrite<W> {
    inner: W,
    plan: Arc<FaultPlan>,
    tally: Arc<ChaosTally>,
    op: u64,
    dead: bool,
}

impl<W: Write> ChaosWrite<W> {
    /// Wraps `inner` under `plan`, counting injections into `tally`.
    pub fn new(inner: W, plan: Arc<FaultPlan>, tally: Arc<ChaosTally>) -> ChaosWrite<W> {
        ChaosWrite {
            inner,
            plan,
            tally,
            op: 0,
            dead: false,
        }
    }
}

impl<W: Write> Write for ChaosWrite<W> {
    fn write(&mut self, buf: &[u8]) -> Result<usize> {
        if self.dead {
            return Err(Error::new(ErrorKind::ConnectionReset, "injected reset"));
        }
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        let op = self.op;
        self.op += 1;
        match self.plan.fault_at(op) {
            None => self.inner.write(buf),
            Some(FaultKind::Delay(d)) => {
                self.tally.delays.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(d);
                self.inner.write(buf)
            }
            Some(FaultKind::Stall(d)) => {
                self.tally.stalls.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(d);
                self.inner.write(buf)
            }
            Some(FaultKind::Short(max)) => {
                self.tally.shorts.fetch_add(1, Ordering::Relaxed);
                self.inner.write(&buf[..buf.len().min(max.max(1))])
            }
            Some(FaultKind::Reset) => {
                self.dead = true;
                self.tally.resets.fetch_add(1, Ordering::Relaxed);
                Err(Error::new(ErrorKind::ConnectionReset, "injected reset"))
            }
            Some(FaultKind::Corrupt(bit)) => {
                self.tally.corrupted.fetch_add(1, Ordering::Relaxed);
                let mut flipped = buf.to_vec();
                flipped[0] ^= 1 << (bit % 8);
                // All-or-nothing on the corrupted copy keeps the op
                // accounting simple: one op, one (corrupted) write.
                self.inner.write_all(&flipped)?;
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Cursor};

    #[test]
    fn an_empty_plan_is_byte_transparent() {
        let input = b"hello chaotic world\nsecond line\n".to_vec();
        let tally = Arc::new(ChaosTally::new());
        let mut reader = ChaosRead::new(
            Cursor::new(input.clone()),
            Arc::new(FaultPlan::none()),
            Arc::clone(&tally),
        );
        let mut out = Vec::new();
        reader.read_to_end(&mut out).unwrap();
        assert_eq!(out, input);

        let mut sink = Vec::new();
        {
            let mut writer =
                ChaosWrite::new(&mut sink, Arc::new(FaultPlan::none()), Arc::clone(&tally));
            writer.write_all(&input).unwrap();
            writer.flush().unwrap();
        }
        assert_eq!(sink, input);
        assert_eq!(
            (
                tally.delays(),
                tally.shorts(),
                tally.resets(),
                tally.corrupted()
            ),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn short_reads_split_multibyte_sequences_without_losing_bytes() {
        // Every read capped at 1 byte: any multi-byte UTF-8 sequence
        // is split across calls, but a buffered consumer still sees
        // the exact byte stream.
        let text = "αβγ → done\n";
        let mut plan = FaultPlan::none();
        for op in 0..64 {
            plan = plan.with(op, FaultKind::Short(1));
        }
        let tally = Arc::new(ChaosTally::new());
        let reader = ChaosRead::new(Cursor::new(text.as_bytes()), Arc::new(plan), tally);
        let mut lines = BufReader::new(reader).lines();
        assert_eq!(lines.next().unwrap().unwrap(), "αβγ → done");
    }

    #[test]
    fn resets_are_sticky_and_counted_once_per_injection() {
        let plan = FaultPlan::none().with(1, FaultKind::Reset);
        let tally = Arc::new(ChaosTally::new());
        let mut reader = ChaosRead::new(
            Cursor::new(b"abcdef".to_vec()),
            Arc::new(plan),
            Arc::clone(&tally),
        );
        let mut buf = [0u8; 2];
        assert_eq!(reader.read(&mut buf).unwrap(), 2);
        let err = reader.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::ConnectionReset);
        let err = reader.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::ConnectionReset);
        assert_eq!(tally.resets(), 1);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let plan = FaultPlan::none().with(0, FaultKind::Corrupt(3));
        let tally = Arc::new(ChaosTally::new());
        let mut sink = Vec::new();
        {
            let mut writer = ChaosWrite::new(&mut sink, Arc::new(plan), Arc::clone(&tally));
            writer.write_all(b"AB").unwrap();
        }
        assert_eq!(sink, vec![b'A' ^ 0b1000, b'B']);
        assert_eq!(tally.corrupted(), 1);
    }

    #[test]
    fn fuzzed_plans_are_deterministic_in_the_seed() {
        let a = FaultPlan::fuzzed_read(42, 100);
        let b = FaultPlan::fuzzed_read(42, 100);
        for op in 0..100 {
            assert_eq!(a.fault_at(op), b.fault_at(op));
        }
        assert!(
            (0..100).any(|op| a.fault_at(op).is_some()),
            "a 100-op fuzzed plan schedules something"
        );
        let c = FaultPlan::fuzzed_read(43, 100);
        assert!(
            (0..100).any(|op| a.fault_at(op) != c.fault_at(op)),
            "different seeds give different plans"
        );
    }

    #[test]
    fn scheduled_faults_past_the_stream_end_never_tally() {
        let plan = FaultPlan::none().with(50, FaultKind::Reset);
        let tally = Arc::new(ChaosTally::new());
        let mut reader = ChaosRead::new(
            Cursor::new(b"xy".to_vec()),
            Arc::new(plan),
            Arc::clone(&tally),
        );
        let mut out = Vec::new();
        reader.read_to_end(&mut out).unwrap();
        assert_eq!(tally.resets(), 0);
    }
}
