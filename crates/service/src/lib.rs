//! The service tier: a multi-worker analysis server over the
//! [`twca_api`] wire protocol.
//!
//! The crate turns a single shared-cache [`twca_api::Session`] into a
//! network service:
//!
//! - [`frame`] — bounded, resumable line-delimited framing (hostile
//!   peers cannot force unbounded buffering; timeouts mid-frame lose
//!   no bytes),
//! - [`pool`] — the worker pool: bounded admission queue with typed
//!   `overloaded` rejection, per-request deadlines raised through
//!   [`twca_api::CancelToken`]s, ordered per-connection response
//!   delivery (synchronous or buffered behind a writer thread with a
//!   slow-consumer bound), graceful drain,
//! - [`server`] — the TCP listener plus a stdio lane feeding the same
//!   pool, with read/idle timeouts and slow-loris reaping,
//! - [`chaos`] — seeded transport fault injection ([`FaultPlan`],
//!   [`ChaosRead`]/[`ChaosWrite`]) behind the `chaos-liveness` oracle
//!   and `twca chaos`,
//! - [`retry`] — client-side retry with exponential backoff and
//!   deterministic jitter,
//! - [`loadgen`] — the deterministic load generator behind
//!   `twca loadgen` and the `service_saturation` bench,
//! - [`fuzzing`] — the malformed-frame generator behind the
//!   `service-robustness` oracle.
//!
//! Everything is `std`-only: the listener is [`std::net::TcpListener`],
//! workers are plain OS threads, and frames are the same line-delimited
//! JSON the stdio server already speaks.

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::missing_panics_doc)]
#![allow(clippy::module_name_repetitions)]
#![allow(clippy::cast_precision_loss)]
#![allow(clippy::cast_possible_truncation)]
#![allow(clippy::cast_sign_loss)]

pub mod chaos;
pub mod frame;
pub mod fuzzing;
pub mod loadgen;
pub mod pool;
pub mod retry;
pub mod server;

pub use chaos::{ChaosRead, ChaosTally, ChaosWrite, FaultKind, FaultPlan};
pub use frame::{Frame, FrameReader, FrameStep};
pub use fuzzing::FrameFuzzer;
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport, RequestMix};
pub use pool::{Connection, ServiceConfig, WorkerPool};
pub use retry::RetryPolicy;
pub use server::{serve_connection, serve_lane, LaneEnd, LaneOptions, TcpServer};
