//! The service tier: a multi-worker analysis server over the
//! [`twca_api`] wire protocol.
//!
//! The crate turns a single shared-cache [`twca_api::Session`] into a
//! network service:
//!
//! - [`frame`] — bounded line-delimited framing (hostile peers cannot
//!   force unbounded buffering),
//! - [`pool`] — the worker pool: bounded admission queue with typed
//!   `overloaded` rejection, per-request deadlines raised through
//!   [`twca_api::CancelToken`]s, ordered per-connection response
//!   delivery, graceful drain,
//! - [`server`] — the TCP listener plus a stdio lane feeding the same
//!   pool,
//! - [`loadgen`] — the deterministic load generator behind
//!   `twca loadgen` and the `service_saturation` bench,
//! - [`fuzzing`] — the malformed-frame generator behind the
//!   `service-robustness` oracle.
//!
//! Everything is `std`-only: the listener is [`std::net::TcpListener`],
//! workers are plain OS threads, and frames are the same line-delimited
//! JSON the stdio server already speaks.

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::missing_panics_doc)]
#![allow(clippy::module_name_repetitions)]
#![allow(clippy::cast_precision_loss)]
#![allow(clippy::cast_possible_truncation)]
#![allow(clippy::cast_sign_loss)]

pub mod frame;
pub mod fuzzing;
pub mod loadgen;
pub mod pool;
pub mod server;

pub use frame::{Frame, FrameReader};
pub use fuzzing::FrameFuzzer;
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport, RequestMix};
pub use pool::{Connection, ServiceConfig, WorkerPool};
pub use server::{serve_connection, TcpServer};
