//! The wire framing layer: bounded line-delimited frames.
//!
//! The service speaks the same JSON-Lines protocol as [`twca_api::serve`],
//! but a network front end cannot trust its peers: a frame longer than
//! the configured cap is discarded *without buffering it* — the reader
//! skips to the next newline and reports how many bytes it dropped, so
//! a hostile client cannot make the server allocate unbounded memory.
//! Invalid UTF-8 is reported in-band with the offset of the first bad
//! byte, so a garbage frame becomes a typed error response rather than
//! a dead connection or a silently mangled request.
//!
//! The reader is *resumable*: partial-frame state lives in the struct,
//! not the call, so an I/O timeout (or any transient error) surfaced
//! mid-frame loses nothing — the next call picks the frame up where
//! the bytes stopped. That is what lets a server arm socket read
//! timeouts for slow-loris reaping without corrupting honest traffic,
//! and what keeps multi-byte UTF-8 sequences split across short reads
//! intact.

use std::io::BufRead;

/// One frame read off a connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete, valid-UTF-8 line (without its newline).
    Line(String),
    /// A line longer than the cap; its bytes were discarded.
    Oversized {
        /// How many bytes the frame carried (excluding the newline).
        bytes: usize,
    },
    /// A line that is not valid UTF-8; its bytes were discarded.
    Invalid {
        /// Byte offset of the first invalid byte within the frame.
        offset: usize,
        /// How many bytes the frame carried (excluding the newline).
        bytes: usize,
    },
}

/// One step of the frame reader: at most one underlying read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameStep {
    /// A frame completed on this step.
    Frame(Frame),
    /// Bytes were consumed (or the read was interrupted) but no frame
    /// completed yet; call again.
    NeedMore,
    /// End of input, nothing pending.
    Eof,
}

/// A bounded, resumable line reader over any [`BufRead`] source.
#[derive(Debug)]
pub struct FrameReader<R> {
    input: R,
    max_frame_bytes: usize,
    /// Bytes of the in-progress frame, capped at `max_frame_bytes`.
    buf: Vec<u8>,
    /// Bytes of the in-progress frame including any discarded
    /// oversized tail.
    total: usize,
    /// Whether a frame is in progress (distinguishes EOF from a final
    /// unterminated line; an empty in-progress frame counts).
    pending: bool,
}

impl<R: BufRead> FrameReader<R> {
    /// Wraps `input`, capping frames at `max_frame_bytes` bytes.
    pub fn new(input: R, max_frame_bytes: usize) -> FrameReader<R> {
        FrameReader {
            input,
            max_frame_bytes,
            buf: Vec::new(),
            total: 0,
            pending: false,
        }
    }

    /// Performs at most one underlying read and reports what happened.
    /// Timeout-driven front ends loop on this instead of
    /// [`FrameReader::next_frame`] so they can check wall-clock
    /// deadlines between reads even while a frame is trickling in.
    ///
    /// # Errors
    ///
    /// I/O errors of the underlying reader. The partial frame survives
    /// the error: a caller that treats `WouldBlock`/`TimedOut` as a
    /// deadline tick may simply call `step` again and no byte is lost.
    pub fn step(&mut self) -> std::io::Result<FrameStep> {
        let available = match self.input.fill_buf() {
            Ok(available) => available,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                return Ok(FrameStep::NeedMore)
            }
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            if !self.pending {
                return Ok(FrameStep::Eof);
            }
            return Ok(FrameStep::Frame(self.take_frame()));
        }
        self.pending = true;
        let (chunk, done) = match available.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos, true),
            None => (available.len(), false),
        };
        // Buffer only up to the cap; oversized tails are dropped on
        // the floor but still counted.
        let room = self.max_frame_bytes.saturating_sub(self.buf.len());
        self.buf.extend_from_slice(&available[..chunk.min(room)]);
        self.total += chunk;
        self.input.consume(chunk + usize::from(done));
        if done {
            return Ok(FrameStep::Frame(self.take_frame()));
        }
        Ok(FrameStep::NeedMore)
    }

    /// Completes the pending frame and resets the in-progress state.
    fn take_frame(&mut self) -> Frame {
        let total = std::mem::take(&mut self.total);
        let bytes = std::mem::take(&mut self.buf);
        self.pending = false;
        if total > self.max_frame_bytes {
            return Frame::Oversized { bytes: total };
        }
        match String::from_utf8(bytes) {
            Ok(line) => Frame::Line(line),
            Err(e) => Frame::Invalid {
                offset: e.utf8_error().valid_up_to(),
                bytes: total,
            },
        }
    }

    /// Reads the next frame; `None` at end of input.
    ///
    /// # Errors
    ///
    /// Only I/O errors of the underlying reader; frame content never
    /// fails (oversized and non-UTF-8 frames are reported in-band).
    pub fn next_frame(&mut self) -> std::io::Result<Option<Frame>> {
        loop {
            match self.step()? {
                FrameStep::Frame(frame) => return Ok(Some(frame)),
                FrameStep::Eof => return Ok(None),
                FrameStep::NeedMore => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Read};

    fn frames(input: &[u8], cap: usize) -> Vec<Frame> {
        let mut reader = FrameReader::new(input, cap);
        let mut out = Vec::new();
        while let Some(frame) = reader.next_frame().unwrap() {
            out.push(frame);
        }
        out
    }

    #[test]
    fn plain_lines_round_trip() {
        assert_eq!(
            frames(b"a\nbb\n\nccc", 10),
            vec![
                Frame::Line("a".into()),
                Frame::Line("bb".into()),
                Frame::Line(String::new()),
                Frame::Line("ccc".into()),
            ]
        );
    }

    #[test]
    fn oversized_frames_are_discarded_not_buffered() {
        let mut input = vec![b'x'; 1000];
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        assert_eq!(
            frames(&input, 8),
            vec![Frame::Oversized { bytes: 1000 }, Frame::Line("ok".into())]
        );
    }

    #[test]
    fn exactly_at_the_cap_is_still_a_line() {
        assert_eq!(
            frames(b"12345678\n", 8),
            vec![Frame::Line("12345678".into())]
        );
        assert_eq!(
            frames(b"123456789\n", 8),
            vec![Frame::Oversized { bytes: 9 }]
        );
    }

    #[test]
    fn invalid_utf8_reports_the_offending_offset() {
        assert_eq!(
            frames(b"ok\xff\xfe{\n", 10),
            vec![Frame::Invalid {
                offset: 2,
                bytes: 5
            }]
        );
        // A frame that *starts* bad reports offset 0.
        assert_eq!(
            frames(b"\xffx\n", 10),
            vec![Frame::Invalid {
                offset: 0,
                bytes: 2
            }]
        );
    }

    /// Yields its bytes one at a time, so every multi-byte UTF-8
    /// sequence is guaranteed to split across reads.
    struct Dribble<'a>(&'a [u8]);

    impl Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn multibyte_utf8_split_across_reads_reassembles() {
        let text = "αβγ → δ\nsecond ✓\n";
        let reader = BufReader::with_capacity(1, Dribble(text.as_bytes()));
        let mut frames = FrameReader::new(reader, 64);
        assert_eq!(
            frames.next_frame().unwrap(),
            Some(Frame::Line("αβγ → δ".into()))
        );
        assert_eq!(
            frames.next_frame().unwrap(),
            Some(Frame::Line("second ✓".into()))
        );
        assert_eq!(frames.next_frame().unwrap(), None);
    }

    /// Fails every other read with a timeout, delivering one byte in
    /// between — the shape of a socket with a read timeout armed
    /// against a dripping client.
    struct FlakyTimeout<'a> {
        data: &'a [u8],
        tick: bool,
    }

    impl Read for FlakyTimeout<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.tick = !self.tick;
            if self.tick {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "injected timeout",
                ));
            }
            if self.data.is_empty() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.data[0];
            self.data = &self.data[1..];
            Ok(1)
        }
    }

    #[test]
    fn timeouts_mid_frame_lose_no_bytes() {
        let reader = BufReader::with_capacity(
            1,
            FlakyTimeout {
                data: "resumed ✓\n".as_bytes(),
                tick: false,
            },
        );
        let mut frames = FrameReader::new(reader, 64);
        let mut timeouts = 0;
        let frame = loop {
            match frames.step() {
                Ok(FrameStep::Frame(frame)) => break frame,
                Ok(FrameStep::NeedMore) => {}
                Ok(FrameStep::Eof) => panic!("EOF before the frame completed"),
                Err(e) if e.kind() == std::io::ErrorKind::TimedOut => timeouts += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        assert_eq!(frame, Frame::Line("resumed ✓".into()));
        assert!(timeouts > 0, "the flaky reader injected timeouts");
    }

    #[test]
    fn a_never_terminated_oversized_frame_stays_bounded() {
        // 1 MiB of garbage against an 8-byte cap: the reader's buffer
        // must not grow past the cap even though `total` counts on.
        let junk = vec![b'j'; 1 << 20];
        let mut reader = FrameReader::new(&junk[..], 8);
        assert_eq!(
            reader.next_frame().unwrap(),
            Some(Frame::Oversized { bytes: 1 << 20 })
        );
        assert!(reader.buf.capacity() <= 64, "buffer stayed near the cap");
    }
}
