//! The wire framing layer: bounded line-delimited frames.
//!
//! The service speaks the same JSON-Lines protocol as [`twca_api::serve`],
//! but a network front end cannot trust its peers: a frame longer than
//! the configured cap is discarded *without buffering it* — the reader
//! skips to the next newline and reports how many bytes it dropped, so
//! a hostile client cannot make the server allocate unbounded memory.
//! Invalid UTF-8 is converted lossily instead of erroring, so a garbage
//! frame becomes a JSON parse error response rather than a dead
//! connection.

use std::io::BufRead;

/// One frame read off a connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (without its newline), lossily decoded.
    Line(String),
    /// A line longer than the cap; its bytes were discarded.
    Oversized {
        /// How many bytes the frame carried (excluding the newline).
        bytes: usize,
    },
}

/// A bounded line reader over any [`BufRead`] source.
#[derive(Debug)]
pub struct FrameReader<R> {
    input: R,
    max_frame_bytes: usize,
}

impl<R: BufRead> FrameReader<R> {
    /// Wraps `input`, capping frames at `max_frame_bytes` bytes.
    pub fn new(input: R, max_frame_bytes: usize) -> FrameReader<R> {
        FrameReader {
            input,
            max_frame_bytes,
        }
    }

    /// Reads the next frame; `None` at end of input.
    ///
    /// # Errors
    ///
    /// Only I/O errors of the underlying reader; frame content never
    /// fails (oversized and non-UTF-8 frames are reported in-band).
    pub fn next_frame(&mut self) -> std::io::Result<Option<Frame>> {
        let mut buf: Vec<u8> = Vec::new();
        let mut total = 0usize;
        let mut saw_input = false;
        loop {
            let available = self.input.fill_buf()?;
            if available.is_empty() {
                if !saw_input {
                    return Ok(None);
                }
                break;
            }
            saw_input = true;
            let (chunk, done) = match available.iter().position(|&b| b == b'\n') {
                Some(pos) => (pos, true),
                None => (available.len(), false),
            };
            // Buffer only up to the cap; oversized tails are dropped on
            // the floor but still counted.
            let room = self.max_frame_bytes.saturating_sub(buf.len());
            buf.extend_from_slice(&available[..chunk.min(room)]);
            total += chunk;
            self.input.consume(chunk + usize::from(done));
            if done {
                break;
            }
        }
        if total > self.max_frame_bytes {
            return Ok(Some(Frame::Oversized { bytes: total }));
        }
        Ok(Some(Frame::Line(
            String::from_utf8_lossy(&buf).into_owned(),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(input: &[u8], cap: usize) -> Vec<Frame> {
        let mut reader = FrameReader::new(input, cap);
        let mut out = Vec::new();
        while let Some(frame) = reader.next_frame().unwrap() {
            out.push(frame);
        }
        out
    }

    #[test]
    fn plain_lines_round_trip() {
        assert_eq!(
            frames(b"a\nbb\n\nccc", 10),
            vec![
                Frame::Line("a".into()),
                Frame::Line("bb".into()),
                Frame::Line(String::new()),
                Frame::Line("ccc".into()),
            ]
        );
    }

    #[test]
    fn oversized_frames_are_discarded_not_buffered() {
        let mut input = vec![b'x'; 1000];
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        assert_eq!(
            frames(&input, 8),
            vec![Frame::Oversized { bytes: 1000 }, Frame::Line("ok".into())]
        );
    }

    #[test]
    fn exactly_at_the_cap_is_still_a_line() {
        assert_eq!(
            frames(b"12345678\n", 8),
            vec![Frame::Line("12345678".into())]
        );
        assert_eq!(
            frames(b"123456789\n", 8),
            vec![Frame::Oversized { bytes: 9 }]
        );
    }

    #[test]
    fn invalid_utf8_degrades_lossily() {
        let out = frames(b"\xff\xfe{\n", 10);
        let Frame::Line(text) = &out[0] else {
            panic!("expected a line");
        };
        assert!(text.contains('\u{FFFD}'));
    }
}
