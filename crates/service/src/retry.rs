//! Client-side retry with exponential backoff and deterministic
//! jitter.
//!
//! The policy is *safe by construction* at its call sites: idempotent
//! queries retry freely, while `store_put` retries only when the
//! client supplied a dedup id the store honors at most once — a
//! retried put whose first attempt actually landed (the transport
//! swallowed the ack) is answered from the dedup ledger instead of
//! double-applying. The jitter is a pure function of `(seed, attempt)`
//! so a seeded load run replays byte-identically.

use std::time::Duration;

/// An exponential-backoff retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` disables retry).
    pub attempts: u32,
    /// Backoff before the first retry; doubles per further retry.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(20),
            cap: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// A policy with `attempts` total attempts and the default
    /// base/cap.
    #[must_use]
    pub fn with_attempts(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            attempts,
            ..RetryPolicy::default()
        }
    }

    /// Whether attempt number `attempt` (0-based; `0` is the first
    /// try) is still within the budget.
    #[must_use]
    pub fn allows(&self, attempt: u32) -> bool {
        attempt < self.attempts
    }

    /// The backoff to sleep before (1-based) retry number `retry`,
    /// with deterministic jitter in the 50–100% band of the
    /// exponential step: `base * 2^(retry-1)`, capped, then scaled by
    /// a jitter drawn from `(seed, retry)`. Returns zero for
    /// `retry == 0` (the first attempt never waits).
    #[must_use]
    pub fn backoff(&self, seed: u64, retry: u32) -> Duration {
        if retry == 0 {
            return Duration::ZERO;
        }
        let step = self
            .base
            .saturating_mul(1u32 << (retry - 1).min(20))
            .min(self.cap);
        // splitmix64 over (seed, retry): full-period, dependency-free.
        let mut x = seed
            .wrapping_add(u64::from(retry).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        // Jitter in [1/2, 1): spreads synchronized retry storms while
        // keeping the exponential envelope.
        let frac = 0.5 + (x >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
        step.mul_f64(frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_in_the_seed() {
        let policy = RetryPolicy::default();
        for retry in 1..6 {
            assert_eq!(policy.backoff(42, retry), policy.backoff(42, retry));
        }
        assert_ne!(policy.backoff(1, 3), policy.backoff(2, 3), "seeds differ");
    }

    #[test]
    fn backoff_grows_exponentially_and_respects_the_cap() {
        let policy = RetryPolicy {
            attempts: 10,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
        };
        assert_eq!(policy.backoff(7, 0), Duration::ZERO);
        for retry in 1..10 {
            let b = policy.backoff(7, retry);
            let step = Duration::from_millis(10 * (1u64 << (retry - 1)).min(10));
            assert!(b <= step.min(Duration::from_millis(100)), "{retry}: {b:?}");
            assert!(
                b >= step.min(Duration::from_millis(100)) / 2,
                "{retry}: {b:?} under half the envelope"
            );
        }
    }

    #[test]
    fn attempts_budget_counts_the_first_try() {
        let policy = RetryPolicy::with_attempts(1);
        assert!(policy.allows(0));
        assert!(!policy.allows(1), "one attempt means no retry");
    }
}
