//! The front ends: a TCP listener and a stdio lane, both feeding the
//! same [`WorkerPool`].
//!
//! Shutdown semantics: [`TcpServer::shutdown`] first stops accepting,
//! then gives connected clients a grace period to finish their input
//! streams, then half-closes stragglers' read sides (their queued work
//! is still answered — the write halves stay open until the pool has
//! drained). Nothing admitted is ever silently dropped.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use twca_api::{ApiError, ServeSummary, Session};

use crate::frame::{Frame, FrameReader, FrameStep};
use crate::pool::{Connection, ServiceConfig, WorkerPool};

/// Per-lane serving knobs; the subset of [`ServiceConfig`] a single
/// read loop enforces.
#[derive(Debug, Clone)]
pub struct LaneOptions {
    /// Largest accepted frame in bytes.
    pub max_frame_bytes: usize,
    /// Longest tolerated byte-silence; requires the underlying stream
    /// to surface `WouldBlock`/`TimedOut` (e.g. a socket read
    /// timeout), which the lane treats as deadline ticks.
    pub read_timeout: Option<Duration>,
    /// Longest tolerated wall time since the last *completed* frame —
    /// the slow-loris defense: a byte-dripping client keeps resetting
    /// any byte-silence clock but never completes a frame.
    pub idle_timeout: Option<Duration>,
}

impl LaneOptions {
    /// Timeout-free options at the given frame cap (the stdio shape).
    #[must_use]
    pub fn unlimited(max_frame_bytes: usize) -> LaneOptions {
        LaneOptions {
            max_frame_bytes,
            read_timeout: None,
            idle_timeout: None,
        }
    }
}

/// Why a lane's read loop ended. Whatever the reason, everything the
/// lane admitted has been answered by the time [`serve_lane`] returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneEnd {
    /// The input was exhausted cleanly.
    Eof,
    /// The lane died first: the client stopped reading responses, or
    /// the write side failed, or a slow-consumer kill.
    ClientGone,
    /// The idle timeout passed with no completed frame (slow loris).
    Reaped,
    /// The read timeout passed with complete byte-silence.
    TimedOut,
    /// The peer reset or abandoned the connection mid-stream.
    Reset,
    /// Any other read error.
    ReadError,
}

/// Reads frames from `input` and submits them to `pool` on `conn`'s
/// ordered response lane, enforcing the lane's frame cap and
/// timeouts. Returns why the loop ended, and only once every frame
/// submitted has been answered — a front end may close the connection
/// as soon as this returns.
pub fn serve_lane(
    pool: &WorkerPool,
    input: impl BufRead,
    conn: &Arc<Connection>,
    opts: &LaneOptions,
) -> LaneEnd {
    let counters = pool.counters();
    let mut reader = FrameReader::new(input, opts.max_frame_bytes);
    let mut seq = 0u64;
    let mut last_byte = Instant::now();
    let mut last_frame = last_byte;
    let reap_check = |last_frame: Instant| {
        opts.idle_timeout
            .is_some_and(|idle| last_frame.elapsed() >= idle)
    };
    let end = loop {
        if conn.is_dead() {
            break LaneEnd::ClientGone;
        }
        match reader.step() {
            Ok(FrameStep::Eof) => break LaneEnd::Eof,
            Ok(FrameStep::NeedMore) => {
                // Bytes arrived but no frame completed: the byte clock
                // resets, the frame clock keeps running (the loris
                // path).
                last_byte = Instant::now();
                if reap_check(last_frame) {
                    counters.record_reaped();
                    break LaneEnd::Reaped;
                }
            }
            Ok(FrameStep::Frame(frame)) => {
                last_byte = Instant::now();
                last_frame = last_byte;
                match frame {
                    Frame::Line(line) => {
                        if line.trim().is_empty() {
                            continue;
                        }
                        pool.submit(conn, seq, line);
                        seq += 1;
                    }
                    Frame::Oversized { bytes } => {
                        pool.respond_local_error(
                            conn,
                            seq,
                            ApiError::request(format!(
                                "frame too large: {bytes} byte(s) exceed the {} byte \
                                 frame limit",
                                opts.max_frame_bytes
                            )),
                        );
                        seq += 1;
                    }
                    Frame::Invalid { offset, bytes } => {
                        pool.respond_local_error(
                            conn,
                            seq,
                            ApiError::request(format!(
                                "frame is not valid UTF-8: invalid byte at offset \
                                 {offset} of the {bytes}-byte frame"
                            )),
                        );
                        seq += 1;
                    }
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // A deadline tick from an armed socket timeout: no
                // byte arrived this interval. Without lane timeouts
                // there is nothing to enforce, so treat it as a plain
                // read error rather than spinning forever.
                if opts.read_timeout.is_none() && opts.idle_timeout.is_none() {
                    break LaneEnd::ReadError;
                }
                if opts
                    .read_timeout
                    .is_some_and(|rt| last_byte.elapsed() >= rt)
                {
                    counters.record_read_timeout();
                    break LaneEnd::TimedOut;
                }
                if reap_check(last_frame) {
                    counters.record_reaped();
                    break LaneEnd::Reaped;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::ConnectionReset
                        | ErrorKind::ConnectionAborted
                        | ErrorKind::BrokenPipe
                ) =>
            {
                counters.record_reset();
                break LaneEnd::Reset;
            }
            Err(_) => break LaneEnd::ReadError,
        }
    };
    conn.await_retired(seq);
    end
}

/// Reads frames from `input`, submits them to `pool`, and streams the
/// ordered responses into `writer`. Returns once the input is
/// exhausted (or errors, or the client stops reading responses) *and*
/// every frame submitted up to that point has been answered — so a
/// front end may close the connection as soon as this returns.
///
/// This is the synchronous-writer, timeout-free lane shape (stdio and
/// tests); the TCP front end arms timeouts and buffered writers via
/// [`serve_lane`].
pub fn serve_connection(
    pool: &WorkerPool,
    input: impl BufRead,
    writer: Box<dyn Write + Send>,
    max_frame_bytes: usize,
) {
    let conn = Connection::new(writer);
    serve_lane(pool, input, &conn, &LaneOptions::unlimited(max_frame_bytes));
}

/// Live connections: each entry keeps the accepted stream (for the
/// shutdown half-close) next to its reader thread's handle.
type ReaderRegistry = Arc<Mutex<Vec<(TcpStream, JoinHandle<()>)>>>;

/// A running TCP front end over a [`WorkerPool`].
#[derive(Debug)]
pub struct TcpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    readers: ReaderRegistry,
    pool: Arc<WorkerPool>,
    max_frame_bytes: usize,
}

impl TcpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts accepting connections, each served by a reader thread
    /// over the shared pool.
    ///
    /// # Errors
    ///
    /// I/O errors of the bind itself.
    pub fn start(
        addr: impl ToSocketAddrs,
        session: Session,
        config: &ServiceConfig,
    ) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let pool = Arc::new(WorkerPool::new(session, config));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: ReaderRegistry = Arc::new(Mutex::new(Vec::new()));
        let max_frame_bytes = config.max_frame_bytes;
        let lane_opts = LaneOptions {
            max_frame_bytes,
            read_timeout: config.read_timeout,
            idle_timeout: config.idle_timeout,
        };
        // Enforcing lane timeouts needs the socket to tick: arm a read
        // timeout well under the tightest lane bound so even a fully
        // silent client is checked on time.
        let tick = [config.read_timeout, config.idle_timeout]
            .into_iter()
            .flatten()
            .min()
            .map(|t| (t / 2).max(Duration::from_millis(5)));
        let write_timeout = config.write_timeout;
        let write_buffer_bytes = config.write_buffer_bytes;
        let accept = {
            let pool = Arc::clone(&pool);
            let stop = Arc::clone(&stop);
            let readers = Arc::clone(&readers);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let _ = stream.set_nonblocking(false);
                            let _ = stream.set_nodelay(true);
                            let _ = stream.set_read_timeout(tick);
                            let _ = stream.set_write_timeout(write_timeout);
                            let Ok(tracked) = stream.try_clone() else {
                                continue;
                            };
                            let pool = Arc::clone(&pool);
                            let lane_opts = lane_opts.clone();
                            let handle = std::thread::spawn(move || {
                                let counters = pool.counters();
                                counters.record_conn_opened();
                                if let (Ok(writer), Ok(closer), Ok(killer)) =
                                    (stream.try_clone(), stream.try_clone(), stream.try_clone())
                                {
                                    let conn = Connection::buffered(
                                        Box::new(writer),
                                        write_buffer_bytes,
                                        Some(Arc::clone(&counters)),
                                        Some(killer),
                                    );
                                    let end = serve_lane(
                                        &pool,
                                        BufReader::new(stream),
                                        &conn,
                                        &lane_opts,
                                    );
                                    // Everything admitted has been
                                    // answered; let the client see EOF.
                                    // (Clones keep the fd alive, so an
                                    // explicit half-close is needed.)
                                    // A reaped or timed-out peer also
                                    // loses its read side: we are done
                                    // listening to it.
                                    let how = match end {
                                        LaneEnd::Reaped | LaneEnd::TimedOut => Shutdown::Both,
                                        _ => Shutdown::Write,
                                    };
                                    let _ = closer.shutdown(how);
                                }
                                counters.record_conn_closed();
                            });
                            readers
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .push((tracked, handle));
                        }
                        // Nonblocking accept: poll so the stop flag is
                        // honored promptly and portably.
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })
        };
        Ok(TcpServer {
            local_addr,
            stop,
            accept: Some(accept),
            readers,
            pool,
            max_frame_bytes,
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared pool, e.g. to serve an extra stdio lane through it.
    #[must_use]
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The configured frame cap, for extra lanes.
    #[must_use]
    pub fn max_frame_bytes(&self) -> usize {
        self.max_frame_bytes
    }

    /// Graceful drain: stops accepting, waits up to `grace` for
    /// clients to finish their input streams, half-closes the read
    /// side of stragglers, answers everything admitted, and
    /// summarizes.
    #[must_use]
    pub fn shutdown(mut self, grace: Duration) -> ServeSummary {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let deadline = Instant::now() + grace;
        loop {
            let all_done = self
                .readers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
                .all(|(_, handle)| handle.is_finished());
            if all_done || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let readers = std::mem::take(
            &mut *self
                .readers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for (stream, handle) in readers {
            // Stop further submissions from stragglers; their write
            // half stays open so drained answers still reach them.
            let _ = stream.shutdown(Shutdown::Read);
            let _ = handle.join();
        }
        self.pool.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twca_api::{AnalysisResponse, Json};

    const CHAIN: &str = "chain c periodic=100 deadline=100 { task t prio=1 wcet=10 }";

    fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(addr).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    }

    #[test]
    fn tcp_round_trip_serves_ordered_responses() {
        let server =
            TcpServer::start("127.0.0.1:0", Session::new(), &ServiceConfig::default()).unwrap();
        let (mut stream, mut reader) = connect(server.local_addr());
        for i in 0..5 {
            writeln!(stream, "{{\"id\": \"t{i}\", \"system\": \"{CHAIN}\"}}").unwrap();
        }
        stream.shutdown(Shutdown::Write).unwrap();
        let mut ids = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line).unwrap() == 0 {
                break;
            }
            let response = AnalysisResponse::from_json(&Json::parse(&line).unwrap()).unwrap();
            assert!(response.outcome.is_ok());
            ids.push(response.id.unwrap());
        }
        assert_eq!(ids, ["t0", "t1", "t2", "t3", "t4"]);
        let summary = server.shutdown(Duration::from_secs(5));
        assert_eq!(summary.requests, 5);
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn oversized_tcp_frames_draw_typed_errors_and_the_stream_survives() {
        let config = ServiceConfig {
            max_frame_bytes: 256,
            ..ServiceConfig::default()
        };
        let server = TcpServer::start("127.0.0.1:0", Session::new(), &config).unwrap();
        let (mut stream, mut reader) = connect(server.local_addr());
        let huge = "x".repeat(1000);
        writeln!(stream, "{huge}").unwrap();
        writeln!(stream, "{{\"id\": \"after\", \"system\": \"{CHAIN}\"}}").unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let first = AnalysisResponse::from_json(&Json::parse(&line).unwrap()).unwrap();
        let error = first.outcome.unwrap_err();
        assert_eq!(error.kind, twca_api::ApiErrorKind::Request);
        assert!(error.message.contains("frame too large"), "{error}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        let second = AnalysisResponse::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(second.id.as_deref(), Some("after"));
        assert!(second.outcome.is_ok());
        let _ = server.shutdown(Duration::from_secs(5));
    }

    #[test]
    fn stdio_lane_shares_the_tcp_pool() {
        let server =
            TcpServer::start("127.0.0.1:0", Session::new(), &ServiceConfig::default()).unwrap();
        let input = format!("{{\"id\": \"s\", \"system\": \"{CHAIN}\"}}\n");
        let sink = crate::pool::tests::SharedSink::default();
        serve_connection(
            server.pool(),
            input.as_bytes(),
            Box::new(sink.clone()),
            server.max_frame_bytes(),
        );
        let summary = server.shutdown(Duration::from_secs(5));
        assert_eq!(summary.requests, 1);
        assert!(sink.text().contains("\"id\": \"s\""));
    }
}
