//! The front ends: a TCP listener and a stdio lane, both feeding the
//! same [`WorkerPool`].
//!
//! Shutdown semantics: [`TcpServer::shutdown`] first stops accepting,
//! then gives connected clients a grace period to finish their input
//! streams, then half-closes stragglers' read sides (their queued work
//! is still answered — the write halves stay open until the pool has
//! drained). Nothing admitted is ever silently dropped.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use twca_api::{ApiError, ServeSummary, Session};

use crate::frame::{Frame, FrameReader};
use crate::pool::{Connection, ServiceConfig, WorkerPool};

/// Reads frames from `input`, submits them to `pool`, and streams the
/// ordered responses into `writer`. Returns once the input is
/// exhausted (or errors, or the client stops reading responses) *and*
/// every frame submitted up to that point has been answered — so a
/// front end may close the connection as soon as this returns.
pub fn serve_connection(
    pool: &WorkerPool,
    input: impl BufRead,
    writer: Box<dyn Write + Send>,
    max_frame_bytes: usize,
) {
    let conn = Connection::new(writer);
    let mut reader = FrameReader::new(input, max_frame_bytes);
    let mut seq = 0u64;
    loop {
        if conn.is_dead() {
            break;
        }
        match reader.next_frame() {
            Err(_) | Ok(None) => break,
            Ok(Some(Frame::Line(line))) => {
                if line.trim().is_empty() {
                    continue;
                }
                pool.submit(&conn, seq, line);
                seq += 1;
            }
            Ok(Some(Frame::Oversized { bytes })) => {
                pool.respond_local_error(
                    &conn,
                    seq,
                    ApiError::request(format!(
                        "frame too large: {bytes} byte(s) exceed the \
                         {max_frame_bytes} byte frame limit"
                    )),
                );
                seq += 1;
            }
        }
    }
    conn.await_retired(seq);
}

/// Live connections: each entry keeps the accepted stream (for the
/// shutdown half-close) next to its reader thread's handle.
type ReaderRegistry = Arc<Mutex<Vec<(TcpStream, JoinHandle<()>)>>>;

/// A running TCP front end over a [`WorkerPool`].
#[derive(Debug)]
pub struct TcpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    readers: ReaderRegistry,
    pool: Arc<WorkerPool>,
    max_frame_bytes: usize,
}

impl TcpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts accepting connections, each served by a reader thread
    /// over the shared pool.
    ///
    /// # Errors
    ///
    /// I/O errors of the bind itself.
    pub fn start(
        addr: impl ToSocketAddrs,
        session: Session,
        config: &ServiceConfig,
    ) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let pool = Arc::new(WorkerPool::new(session, config));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: ReaderRegistry = Arc::new(Mutex::new(Vec::new()));
        let max_frame_bytes = config.max_frame_bytes;
        let accept = {
            let pool = Arc::clone(&pool);
            let stop = Arc::clone(&stop);
            let readers = Arc::clone(&readers);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let _ = stream.set_nonblocking(false);
                            let _ = stream.set_nodelay(true);
                            let Ok(tracked) = stream.try_clone() else {
                                continue;
                            };
                            let pool = Arc::clone(&pool);
                            let handle = std::thread::spawn(move || {
                                let Ok(writer) = stream.try_clone() else {
                                    return;
                                };
                                let Ok(closer) = stream.try_clone() else {
                                    return;
                                };
                                serve_connection(
                                    &pool,
                                    BufReader::new(stream),
                                    Box::new(writer),
                                    max_frame_bytes,
                                );
                                // Everything admitted has been answered;
                                // let the client see EOF. (Clones keep
                                // the fd alive, so an explicit
                                // half-close is needed.)
                                let _ = closer.shutdown(Shutdown::Write);
                            });
                            readers
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .push((tracked, handle));
                        }
                        // Nonblocking accept: poll so the stop flag is
                        // honored promptly and portably.
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })
        };
        Ok(TcpServer {
            local_addr,
            stop,
            accept: Some(accept),
            readers,
            pool,
            max_frame_bytes,
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared pool, e.g. to serve an extra stdio lane through it.
    #[must_use]
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The configured frame cap, for extra lanes.
    #[must_use]
    pub fn max_frame_bytes(&self) -> usize {
        self.max_frame_bytes
    }

    /// Graceful drain: stops accepting, waits up to `grace` for
    /// clients to finish their input streams, half-closes the read
    /// side of stragglers, answers everything admitted, and
    /// summarizes.
    #[must_use]
    pub fn shutdown(mut self, grace: Duration) -> ServeSummary {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let deadline = Instant::now() + grace;
        loop {
            let all_done = self
                .readers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
                .all(|(_, handle)| handle.is_finished());
            if all_done || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let readers = std::mem::take(
            &mut *self
                .readers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for (stream, handle) in readers {
            // Stop further submissions from stragglers; their write
            // half stays open so drained answers still reach them.
            let _ = stream.shutdown(Shutdown::Read);
            let _ = handle.join();
        }
        self.pool.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twca_api::{AnalysisResponse, Json};

    const CHAIN: &str = "chain c periodic=100 deadline=100 { task t prio=1 wcet=10 }";

    fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(addr).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    }

    #[test]
    fn tcp_round_trip_serves_ordered_responses() {
        let server =
            TcpServer::start("127.0.0.1:0", Session::new(), &ServiceConfig::default()).unwrap();
        let (mut stream, mut reader) = connect(server.local_addr());
        for i in 0..5 {
            writeln!(stream, "{{\"id\": \"t{i}\", \"system\": \"{CHAIN}\"}}").unwrap();
        }
        stream.shutdown(Shutdown::Write).unwrap();
        let mut ids = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line).unwrap() == 0 {
                break;
            }
            let response = AnalysisResponse::from_json(&Json::parse(&line).unwrap()).unwrap();
            assert!(response.outcome.is_ok());
            ids.push(response.id.unwrap());
        }
        assert_eq!(ids, ["t0", "t1", "t2", "t3", "t4"]);
        let summary = server.shutdown(Duration::from_secs(5));
        assert_eq!(summary.requests, 5);
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn oversized_tcp_frames_draw_typed_errors_and_the_stream_survives() {
        let config = ServiceConfig {
            max_frame_bytes: 256,
            ..ServiceConfig::default()
        };
        let server = TcpServer::start("127.0.0.1:0", Session::new(), &config).unwrap();
        let (mut stream, mut reader) = connect(server.local_addr());
        let huge = "x".repeat(1000);
        writeln!(stream, "{huge}").unwrap();
        writeln!(stream, "{{\"id\": \"after\", \"system\": \"{CHAIN}\"}}").unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let first = AnalysisResponse::from_json(&Json::parse(&line).unwrap()).unwrap();
        let error = first.outcome.unwrap_err();
        assert_eq!(error.kind, twca_api::ApiErrorKind::Request);
        assert!(error.message.contains("frame too large"), "{error}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        let second = AnalysisResponse::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(second.id.as_deref(), Some("after"));
        assert!(second.outcome.is_ok());
        server.shutdown(Duration::from_secs(5));
    }

    #[test]
    fn stdio_lane_shares_the_tcp_pool() {
        let server =
            TcpServer::start("127.0.0.1:0", Session::new(), &ServiceConfig::default()).unwrap();
        let input = format!("{{\"id\": \"s\", \"system\": \"{CHAIN}\"}}\n");
        let sink = crate::pool::tests::SharedSink::default();
        serve_connection(
            server.pool(),
            input.as_bytes(),
            Box::new(sink.clone()),
            server.max_frame_bytes(),
        );
        let summary = server.shutdown(Duration::from_secs(5));
        assert_eq!(summary.requests, 1);
        assert!(sink.text().contains("\"id\": \"s\""));
    }
}
