//! The worker pool: a bounded pending-request queue fanned out across
//! N worker threads, each answering through a [`Session`] clone that
//! shares one `AnalysisCache` — warm-cache hits survive sharding.
//!
//! Admission control and backpressure live here: a submission against
//! a full queue is answered immediately with a typed `overloaded`
//! error *through the same ordered response lane* as real answers, so
//! clients see backpressure as data, never as a dropped connection.
//! Per-request deadlines ride the existing [`CancelToken`] seam: a
//! watchdog thread raises the token when the deadline passes, and the
//! request streams back a typed `canceled` error whether it was still
//! queued or already mid-analysis.

use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use twca_api::{
    respond_line_with, AnalysisResponse, ApiError, CancelToken, Json, LatencyStats, ServeSummary,
    ServiceCounters, Session,
};

/// Deployment knobs of a service front end.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads answering requests (at least 1).
    pub workers: usize,
    /// Bounded pending-request queue capacity; submissions beyond it
    /// are rejected with a typed `overloaded` error.
    pub queue_capacity: usize,
    /// Per-request deadline from admission to answer; `None` disables
    /// the watchdog.
    pub deadline: Option<Duration>,
    /// Largest accepted frame (request line) in bytes.
    pub max_frame_bytes: usize,
    /// Longest tolerated byte-silence while reading a connection;
    /// exceeding it closes the connection (counted under `timeouts`).
    /// `None` disables the check.
    pub read_timeout: Option<Duration>,
    /// Longest tolerated wall time since a connection's last
    /// *completed* frame; exceeding it reaps the connection (the
    /// slow-loris defense — a byte-dripping client completes no frame
    /// and cannot evade it). `None` disables reaping.
    pub idle_timeout: Option<Duration>,
    /// Socket write timeout armed on accepted connections; a response
    /// write blocked longer kills the lane. `None` leaves writes
    /// unbounded.
    pub write_timeout: Option<Duration>,
    /// Bound on a connection's buffered outbound responses, in bytes.
    /// A client that stops reading while the budget overflows is
    /// disconnected as a slow consumer; workers never block on a
    /// client's socket either way. `0` disables the bound.
    pub write_buffer_bytes: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            queue_capacity: 1024,
            deadline: None,
            max_frame_bytes: 1 << 20,
            read_timeout: None,
            idle_timeout: None,
            write_timeout: None,
            write_buffer_bytes: 4 << 20,
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // A worker that panicked mid-request must not take the whole
    // service down with lock poisoning.
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One client connection's response lane. Responses are handed in by
/// whichever thread finishes first but written strictly in submission
/// order; a write failure (the client is gone) retires the lane
/// silently without touching any other connection.
///
/// Lanes come in two flavors. [`Connection::new`] writes responses
/// synchronously in the delivering thread — the right shape for tests
/// and the stdio lane, where the writer never blocks on a hostile
/// peer. [`Connection::buffered`] spawns a dedicated writer thread
/// draining a bounded outbound queue, so a worker thread only ever
/// *enqueues* a response and can never be wedged by a client that
/// stopped reading; a client whose backlog overflows the byte budget
/// is disconnected as a slow consumer.
pub struct Connection {
    out: Mutex<OutState>,
    dead: Arc<AtomicBool>,
    retired: Condvar,
    lane: Option<Arc<LaneShared>>,
    counters: Option<Arc<ServiceCounters>>,
    write_budget: usize,
    closer: Option<std::net::TcpStream>,
}

struct OutState {
    /// `Some` on synchronous lanes; buffered lanes moved the writer
    /// into their writer thread.
    writer: Option<Box<dyn Write + Send>>,
    next_seq: u64,
    parked: BTreeMap<u64, String>,
    parked_bytes: usize,
}

/// The writer thread's side of a buffered lane.
struct LaneShared {
    queue: Mutex<LaneQueue>,
    work: Condvar,
    done: Condvar,
}

struct LaneQueue {
    /// In-order lines awaiting the writer thread.
    ready: VecDeque<String>,
    /// Bytes held in `ready` (incl. newlines).
    ready_bytes: usize,
    /// Lines written (or dropped on a dead lane) by the writer.
    written: u64,
    /// No further deliveries will arrive; drain and exit.
    finished: bool,
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("dead", &self.is_dead())
            .field("buffered", &self.lane.is_some())
            .finish_non_exhaustive()
    }
}

impl Connection {
    /// Wraps the write half of a connection; responses are written
    /// synchronously by whichever thread completes them in order.
    #[must_use]
    pub fn new(writer: Box<dyn Write + Send>) -> Arc<Connection> {
        Arc::new(Connection {
            out: Mutex::new(OutState {
                writer: Some(writer),
                next_seq: 0,
                parked: BTreeMap::new(),
                parked_bytes: 0,
            }),
            dead: Arc::new(AtomicBool::new(false)),
            retired: Condvar::new(),
            lane: None,
            counters: None,
            write_budget: 0,
            closer: None,
        })
    }

    /// Wraps the write half of a connection behind a dedicated writer
    /// thread and a bounded outbound buffer (`write_budget` bytes;
    /// `0` = unbounded). `counters` receives queue-depth observations
    /// and the slow-consumer/timeout tallies; `closer`, when given,
    /// is shut down as soon as the lane dies so a blocked reader
    /// wakes up promptly.
    #[must_use]
    pub fn buffered(
        writer: Box<dyn Write + Send>,
        write_budget: usize,
        counters: Option<Arc<ServiceCounters>>,
        closer: Option<std::net::TcpStream>,
    ) -> Arc<Connection> {
        let lane = Arc::new(LaneShared {
            queue: Mutex::new(LaneQueue {
                ready: VecDeque::new(),
                ready_bytes: 0,
                written: 0,
                finished: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let dead = Arc::new(AtomicBool::new(false));
        {
            let lane = Arc::clone(&lane);
            let dead = Arc::clone(&dead);
            let counters = counters.clone();
            let closer = closer.as_ref().and_then(|s| s.try_clone().ok());
            let mut writer = writer;
            std::thread::spawn(move || {
                let mut queue = lock(&lane.queue);
                loop {
                    if let Some(line) = queue.ready.pop_front() {
                        queue.ready_bytes -= line.len() + 1;
                        drop(queue);
                        if !dead.load(Ordering::Relaxed) {
                            let wrote = writeln!(writer, "{line}").and_then(|()| writer.flush());
                            if let Err(e) = wrote {
                                if let Some(counters) = &counters {
                                    match e.kind() {
                                        std::io::ErrorKind::TimedOut
                                        | std::io::ErrorKind::WouldBlock => {
                                            counters.record_read_timeout();
                                        }
                                        std::io::ErrorKind::ConnectionReset
                                        | std::io::ErrorKind::ConnectionAborted
                                        | std::io::ErrorKind::BrokenPipe => {
                                            counters.record_reset();
                                        }
                                        _ => {}
                                    }
                                }
                                dead.store(true, Ordering::Relaxed);
                                if let Some(closer) = &closer {
                                    let _ = closer.shutdown(std::net::Shutdown::Both);
                                }
                            }
                        }
                        queue = lock(&lane.queue);
                        queue.written += 1;
                        lane.done.notify_all();
                        continue;
                    }
                    if queue.finished {
                        return;
                    }
                    queue = lane
                        .work
                        .wait(queue)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            });
        }
        Arc::new(Connection {
            out: Mutex::new(OutState {
                writer: None,
                next_seq: 0,
                parked: BTreeMap::new(),
                parked_bytes: 0,
            }),
            dead,
            retired: Condvar::new(),
            lane: Some(lane),
            counters,
            write_budget,
            closer,
        })
    }

    /// Whether a write has failed (the client disconnected) or the
    /// lane was killed (slow consumer).
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    /// Kills the lane: deliveries keep sequencing (so `await_retired`
    /// still completes) but nothing further is written, and the
    /// underlying socket, when known, is shut down to unblock its
    /// reader. Returns whether this call did the killing.
    fn kill(&self) -> bool {
        let first = !self.dead.swap(true, Ordering::Relaxed);
        if first {
            if let Some(closer) = &self.closer {
                let _ = closer.shutdown(std::net::Shutdown::Both);
            }
            if let Some(lane) = &self.lane {
                // Wake the writer so it drains the backlog as drops.
                lane.work.notify_all();
            }
        }
        first
    }

    /// Hands in the response for submission number `seq` (0-based per
    /// connection). It is written once every earlier submission has
    /// been; out-of-order completions are parked until their turn.
    pub fn deliver(&self, seq: u64, line: String) {
        let mut out = lock(&self.out);
        out.parked_bytes += line.len() + 1;
        out.parked.insert(seq, line);
        let mut unparked: Vec<String> = Vec::new();
        loop {
            let next = out.next_seq;
            let Some(line) = out.parked.remove(&next) else {
                break;
            };
            out.next_seq += 1;
            out.parked_bytes -= line.len() + 1;
            if self.lane.is_some() {
                unparked.push(line);
            } else {
                // Synchronous lane: write in the delivering thread.
                if self.dead.load(Ordering::Relaxed) {
                    continue; // keep sequencing so the lane retires
                }
                let writer = out.writer.as_mut().expect("sync lane has a writer");
                let wrote = writeln!(writer, "{line}").and_then(|()| writer.flush());
                if wrote.is_err() {
                    self.dead.store(true, Ordering::Relaxed);
                }
            }
        }
        if let Some(lane) = &self.lane {
            // Push under the `out` lock: it is what serializes the
            // in-order unparking, so releasing it before the queue
            // push would let two deliverers enqueue out of order.
            // Lock order is always out → queue; the writer thread
            // takes only the queue lock, so this cannot deadlock.
            let (depth, overflow) = {
                let mut queue = lock(&lane.queue);
                for line in unparked {
                    queue.ready_bytes += line.len() + 1;
                    queue.ready.push_back(line);
                }
                let depth = (queue.ready.len() + out.parked.len()) as u64;
                let outstanding = queue.ready_bytes + out.parked_bytes;
                let overflow =
                    self.write_budget > 0 && outstanding > self.write_budget && !self.is_dead();
                (depth, overflow)
            };
            drop(out);
            if let Some(counters) = &self.counters {
                counters.note_queue_depth(depth);
            }
            if overflow && self.kill() {
                if let Some(counters) = &self.counters {
                    counters.record_slow_consumer();
                }
            }
            lane.work.notify_one();
        } else {
            drop(out);
        }
        self.retired.notify_all();
    }

    /// Blocks until the responses of submissions `0..count` have all
    /// passed through the lane (written or, on a dead lane, retired).
    /// Lets a front end half-close the connection's write side only
    /// once everything admitted has been answered.
    pub fn await_retired(&self, count: u64) {
        if let Some(lane) = &self.lane {
            let mut queue = lock(&lane.queue);
            while queue.written < count {
                queue = lane
                    .done
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        } else {
            let mut out = lock(&self.out);
            while out.next_seq < count {
                out = self
                    .retired
                    .wait(out)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        if let Some(lane) = &self.lane {
            lock(&lane.queue).finished = true;
            lane.work.notify_all();
        }
    }
}

struct Job {
    seq: u64,
    line: String,
    conn: Arc<Connection>,
    cancel: CancelToken,
    submitted: Instant,
}

struct PoolState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    ready: Condvar,
    errors: AtomicU64,
    capacity: usize,
}

/// A deadline entry, min-ordered by expiry instant so the earliest
/// deadline sits on top of the watchdog's heap.
struct Expiry {
    at: Instant,
    token: CancelToken,
}

impl PartialEq for Expiry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at
    }
}
impl Eq for Expiry {}
impl PartialOrd for Expiry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Expiry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at) // reversed: BinaryHeap pops the earliest
    }
}

struct WatchdogShared {
    state: Mutex<(BinaryHeap<Expiry>, bool)>,
    wake: Condvar,
}

struct Watchdog {
    shared: Option<Arc<WatchdogShared>>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl Watchdog {
    fn disabled() -> Watchdog {
        Watchdog {
            shared: None,
            handle: Mutex::new(None),
        }
    }

    fn start() -> Watchdog {
        let shared = Arc::new(WatchdogShared {
            state: Mutex::new((BinaryHeap::new(), false)),
            wake: Condvar::new(),
        });
        let worker = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            let mut guard = lock(&worker.state);
            loop {
                if guard.1 {
                    break;
                }
                let now = Instant::now();
                while guard.0.peek().is_some_and(|e| e.at <= now) {
                    let expired = guard.0.pop().expect("peeked");
                    expired.token.cancel();
                }
                guard = match guard.0.peek() {
                    Some(next) => {
                        let timeout = next.at.saturating_duration_since(now);
                        worker
                            .wake
                            .wait_timeout(guard, timeout)
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .0
                    }
                    None => worker
                        .wake
                        .wait(guard)
                        .unwrap_or_else(std::sync::PoisonError::into_inner),
                };
            }
        });
        Watchdog {
            shared: Some(shared),
            handle: Mutex::new(Some(handle)),
        }
    }

    fn register(&self, at: Instant, token: CancelToken) {
        if let Some(shared) = &self.shared {
            lock(&shared.state).0.push(Expiry { at, token });
            shared.wake.notify_one();
        }
    }

    fn stop(&self) {
        if let Some(shared) = &self.shared {
            lock(&shared.state).1 = true;
            shared.wake.notify_all();
        }
        if let Some(handle) = lock(&self.handle).take() {
            let _ = handle.join();
        }
    }
}

/// How a worker turns a request line into a response. Injectable so
/// tests can drive the panic-isolation path with a purpose-built
/// panicking executor; production pools use [`respond_line_with`].
type Executor = Arc<dyn Fn(&Session, &str, Option<&CancelToken>) -> AnalysisResponse + Send + Sync>;

/// The sharded multi-worker request engine; see the module docs.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    counters: Arc<ServiceCounters>,
    deadline: Option<Duration>,
    watchdog: Watchdog,
    workers: Mutex<Vec<JoinHandle<LatencyStats>>>,
    summary: Mutex<Option<ServeSummary>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("capacity", &self.shared.capacity)
            .field("deadline", &self.deadline)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawns `config.workers` threads, each owning a clone of
    /// `session` (the clones share one cache and one set of service
    /// counters).
    #[must_use]
    pub fn new(session: Session, config: &ServiceConfig) -> WorkerPool {
        let executor: Executor = Arc::new(
            |session: &Session, line: &str, cancel: Option<&CancelToken>| {
                respond_line_with(session, line, cancel)
            },
        );
        WorkerPool::with_executor(session, config, &executor)
    }

    /// [`WorkerPool::new`] with an injected request executor; the seam
    /// the panic-isolation tests use to make a request panic on cue.
    pub(crate) fn with_executor(
        session: Session,
        config: &ServiceConfig,
        executor: &Executor,
    ) -> WorkerPool {
        let counters = Arc::new(ServiceCounters::new());
        let session = session.with_service_counters(Arc::clone(&counters));
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            errors: AtomicU64::new(0),
            capacity: config.queue_capacity.max(1),
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let counters = Arc::clone(&counters);
                let session = session.clone();
                let executor = Arc::clone(executor);
                // The outer loop is the respawn: should a panic ever
                // escape the per-job catch (e.g. while delivering),
                // the worker restarts instead of shrinking the pool.
                std::thread::spawn(move || {
                    let mut latency = LatencyStats::default();
                    loop {
                        let run = catch_unwind(AssertUnwindSafe(|| {
                            worker_loop(&shared, &counters, &session, &executor)
                        }));
                        match run {
                            Ok(stats) => {
                                latency.merge(&stats);
                                return latency;
                            }
                            Err(_) => counters.record_panic(),
                        }
                    }
                })
            })
            .collect();
        WorkerPool {
            shared,
            counters,
            deadline: config.deadline,
            watchdog: match config.deadline {
                Some(_) => Watchdog::start(),
                None => Watchdog::disabled(),
            },
            workers: Mutex::new(workers),
            summary: Mutex::new(None),
        }
    }

    /// The pool's shared observability counters.
    pub fn counters(&self) -> Arc<ServiceCounters> {
        Arc::clone(&self.counters)
    }

    /// Submits request line number `seq` of `conn`. Never fails: a
    /// full or closed queue answers with a typed `overloaded` error on
    /// the connection's ordered lane.
    pub fn submit(&self, conn: &Arc<Connection>, seq: u64, line: String) {
        {
            let mut state = lock(&self.shared.state);
            if !state.closed && state.jobs.len() < self.shared.capacity {
                self.counters.record_admitted();
                let cancel = CancelToken::new();
                if let Some(deadline) = self.deadline {
                    self.watchdog
                        .register(Instant::now() + deadline, cancel.clone());
                }
                state.jobs.push_back(Job {
                    seq,
                    line,
                    conn: Arc::clone(conn),
                    cancel,
                    submitted: Instant::now(),
                });
                drop(state);
                self.shared.ready.notify_one();
                return;
            }
            // Rejected: fall through without the queue lock held (the
            // client write below must not serialize admission).
            if state.closed {
                drop(state);
                self.reject(conn, seq, &line, ApiError::draining());
            } else {
                drop(state);
                self.reject(conn, seq, &line, ApiError::overloaded(self.shared.capacity));
            }
        }
    }

    fn reject(&self, conn: &Arc<Connection>, seq: u64, line: &str, error: ApiError) {
        self.counters.record_rejected();
        self.shared.errors.fetch_add(1, Ordering::Relaxed);
        // Echo the id when one is recoverable, as respond_line does.
        let id = Json::parse(line)
            .ok()
            .and_then(|v| v.get("id").and_then(Json::as_str).map(str::to_owned));
        conn.deliver(
            seq,
            AnalysisResponse::error(id, error).to_json().to_string(),
        );
    }

    /// Answers submission `seq` with a locally produced error, without
    /// queueing (used for oversized frames the reader already
    /// discarded). Counts as one served, errored request.
    pub fn respond_local_error(&self, conn: &Arc<Connection>, seq: u64, error: ApiError) {
        self.counters.record_admitted();
        self.counters.record_served();
        self.shared.errors.fetch_add(1, Ordering::Relaxed);
        conn.deliver(
            seq,
            AnalysisResponse::error(None, error).to_json().to_string(),
        );
    }

    /// Graceful drain: closes admission (new submissions become typed
    /// `overloaded` errors), answers everything already queued, joins
    /// the workers, and summarizes. Idempotent.
    pub fn shutdown(&self) -> ServeSummary {
        let mut slot = lock(&self.summary);
        if let Some(summary) = *slot {
            return summary;
        }
        lock(&self.shared.state).closed = true;
        self.shared.ready.notify_all();
        let mut latency = LatencyStats::default();
        for handle in lock(&self.workers).drain(..) {
            if let Ok(stats) = handle.join() {
                latency.merge(&stats);
            }
        }
        self.watchdog.stop();
        let (served, rejected, _, _) = self.counters.snapshot();
        let summary = ServeSummary {
            requests: (served + rejected) as usize,
            errors: self.shared.errors.load(Ordering::Relaxed) as usize,
            latency,
            edge: self.counters.edge(),
        };
        *slot = Some(summary);
        summary
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    shared: &PoolShared,
    counters: &ServiceCounters,
    session: &Session,
    executor: &Executor,
) -> LatencyStats {
    let mut latency = LatencyStats::default();
    loop {
        let job = {
            let mut state = lock(&shared.state);
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.closed {
                    return latency;
                }
                state = shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // A panicking analysis must never hang the connection or
        // shrink the pool: catch it, answer the lane with a typed
        // `internal` error, count it, and keep the worker alive.
        let run = catch_unwind(AssertUnwindSafe(|| {
            executor(session, &job.line, Some(&job.cancel))
        }));
        let response = match run {
            Ok(response) => response,
            Err(payload) => {
                counters.record_panic();
                AnalysisResponse::error(None, ApiError::internal(panic_detail(&*payload)))
            }
        };
        if response.outcome.is_err() {
            shared.errors.fetch_add(1, Ordering::Relaxed);
        }
        counters.record_served();
        latency.record(job.submitted.elapsed());
        job.conn.deliver(job.seq, response.to_json().to_string());
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("worker panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("worker panicked: {s}")
    } else {
        "worker panicked".to_owned()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A shared in-memory sink usable as a connection writer.
    #[derive(Clone, Default)]
    pub(crate) struct SharedSink(pub Arc<Mutex<Vec<u8>>>);

    impl Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            lock(&self.0).extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedSink {
        pub(crate) fn text(&self) -> String {
            String::from_utf8_lossy(&lock(&self.0)).into_owned()
        }
    }

    const CHAIN: &str = "chain c periodic=100 deadline=100 { task t prio=1 wcet=10 }";

    fn request_line(id: &str) -> String {
        format!("{{\"id\": \"{id}\", \"system\": \"{CHAIN}\"}}")
    }

    #[test]
    fn responses_come_back_in_submission_order() {
        let pool = WorkerPool::new(
            Session::new(),
            &ServiceConfig {
                workers: 4,
                ..ServiceConfig::default()
            },
        );
        let sink = SharedSink::default();
        let conn = Connection::new(Box::new(sink.clone()));
        for i in 0..20 {
            pool.submit(&conn, i, request_line(&format!("r{i}")));
        }
        let summary = pool.shutdown();
        assert_eq!(summary.requests, 20);
        assert_eq!(summary.errors, 0);
        assert_eq!(summary.latency.count, 20);
        let ids: Vec<String> = sink
            .text()
            .lines()
            .map(|line| {
                AnalysisResponse::from_json(&Json::parse(line).unwrap())
                    .unwrap()
                    .id
                    .unwrap()
            })
            .collect();
        let expected: Vec<String> = (0..20).map(|i| format!("r{i}")).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn queue_overflow_is_a_typed_overloaded_error() {
        // Zero workers are clamped to one, but a closed... keep the
        // queue tiny and flood it before workers can drain: use a
        // 1-capacity queue and many submissions; at least one must be
        // rejected with the typed kind, and every submission must be
        // answered.
        let pool = WorkerPool::new(
            Session::new(),
            &ServiceConfig {
                workers: 1,
                queue_capacity: 1,
                ..ServiceConfig::default()
            },
        );
        let sink = SharedSink::default();
        let conn = Connection::new(Box::new(sink.clone()));
        for i in 0..50 {
            pool.submit(&conn, i, request_line(&format!("r{i}")));
        }
        let summary = pool.shutdown();
        assert_eq!(summary.requests, 50, "rejections still count as requests");
        let responses: Vec<AnalysisResponse> = sink
            .text()
            .lines()
            .map(|l| AnalysisResponse::from_json(&Json::parse(l).unwrap()).unwrap())
            .collect();
        assert_eq!(responses.len(), 50, "every submission draws a response");
        let rejected = responses
            .iter()
            .filter(
                |r| matches!(&r.outcome, Err(e) if e.kind == twca_api::ApiErrorKind::Overloaded),
            )
            .count();
        assert!(
            rejected > 0,
            "a 1-deep queue under 50 submissions must reject"
        );
        assert_eq!(summary.errors, rejected);
        // Rejections echo the id for correlation.
        let overloaded = responses
            .iter()
            .find(|r| matches!(&r.outcome, Err(e) if e.kind == twca_api::ApiErrorKind::Overloaded))
            .unwrap();
        assert!(overloaded.id.is_some());
    }

    #[test]
    fn panicking_requests_answer_typed_internal_errors_and_spare_the_pool() {
        // One worker, so a swallowed panic would hang every later
        // request on this connection — the strongest version of
        // "never hang a connection or shrink the pool".
        let executor: Executor = Arc::new(
            |session: &Session, line: &str, cancel: Option<&CancelToken>| {
                assert!(!line.contains("boom"), "injected analysis panic");
                respond_line_with(session, line, cancel)
            },
        );
        let pool = WorkerPool::with_executor(
            Session::new(),
            &ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            &executor,
        );
        let sink = SharedSink::default();
        let conn = Connection::new(Box::new(sink.clone()));
        pool.submit(&conn, 0, request_line("ok-before"));
        pool.submit(&conn, 1, request_line("boom"));
        pool.submit(&conn, 2, request_line("ok-after"));
        let (_, _, _, panics) = {
            let counters = pool.counters();
            let summary = pool.shutdown();
            assert_eq!(summary.requests, 3, "the panicked request still counts");
            assert_eq!(summary.errors, 1);
            counters.snapshot()
        };
        assert_eq!(panics, 1);
        let responses: Vec<AnalysisResponse> = sink
            .text()
            .lines()
            .map(|l| AnalysisResponse::from_json(&Json::parse(l).unwrap()).unwrap())
            .collect();
        assert_eq!(responses.len(), 3, "the panic never swallowed a response");
        assert!(responses[0].outcome.is_ok());
        assert!(
            responses[2].outcome.is_ok(),
            "the worker survived the panic"
        );
        let error = responses[1].outcome.as_ref().unwrap_err();
        assert_eq!(error.kind, twca_api::ApiErrorKind::Internal);
        assert!(error.message.contains("injected analysis panic"), "{error}");
    }

    #[test]
    fn submissions_after_shutdown_are_draining_errors() {
        let pool = WorkerPool::new(Session::new(), &ServiceConfig::default());
        pool.shutdown();
        let sink = SharedSink::default();
        let conn = Connection::new(Box::new(sink.clone()));
        pool.submit(&conn, 0, request_line("late"));
        let response =
            AnalysisResponse::from_json(&Json::parse(sink.text().lines().next().unwrap()).unwrap())
                .unwrap();
        let error = response.outcome.unwrap_err();
        assert_eq!(error.kind, twca_api::ApiErrorKind::Overloaded);
        assert!(error.message.contains("shutting down"), "{error}");
    }

    #[test]
    fn expired_deadlines_cancel_queued_work() {
        let pool = WorkerPool::new(
            Session::new(),
            &ServiceConfig {
                workers: 1,
                deadline: Some(Duration::from_millis(0)),
                ..ServiceConfig::default()
            },
        );
        let sink = SharedSink::default();
        let conn = Connection::new(Box::new(sink.clone()));
        // An already-expired deadline: the watchdog raises the token
        // before (or while) the worker runs, and the answer must be a
        // typed canceled error, not a hang or a dropped line.
        std::thread::sleep(Duration::from_millis(5));
        for i in 0..5 {
            pool.submit(&conn, i, request_line(&format!("r{i}")));
        }
        let summary = pool.shutdown();
        assert_eq!(summary.requests, 5);
        let canceled = sink
            .text()
            .lines()
            .map(|l| AnalysisResponse::from_json(&Json::parse(l).unwrap()).unwrap())
            .filter(|r| matches!(&r.outcome, Err(e) if e.kind == twca_api::ApiErrorKind::Canceled))
            .count();
        assert_eq!(
            canceled, 5,
            "expired deadlines produce typed canceled errors"
        );
    }

    #[test]
    fn a_dead_connection_never_poisons_others() {
        struct BrokenPipe;
        impl Write for BrokenPipe {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "client gone",
                ))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let pool = WorkerPool::new(Session::new(), &ServiceConfig::default());
        let broken = Connection::new(Box::new(BrokenPipe));
        let sink = SharedSink::default();
        let healthy = Connection::new(Box::new(sink.clone()));
        for i in 0..10 {
            pool.submit(&broken, i, request_line(&format!("b{i}")));
            pool.submit(&healthy, i, request_line(&format!("h{i}")));
        }
        let summary = pool.shutdown();
        assert!(broken.is_dead());
        assert!(!healthy.is_dead());
        assert_eq!(summary.requests, 20, "dead-lane answers still count");
        assert_eq!(sink.text().lines().count(), 10);
    }

    #[test]
    fn pool_cache_is_shared_across_workers() {
        let session = Session::new();
        let cache = session.cache();
        let pool = WorkerPool::new(
            session,
            &ServiceConfig {
                workers: 4,
                ..ServiceConfig::default()
            },
        );
        let sink = SharedSink::default();
        let conn = Connection::new(Box::new(sink.clone()));
        let line =
            format!("{{\"system\": \"{CHAIN}\", \"queries\": [{{\"dmm\": {{\"ks\": [10]}}}}]}}");
        for i in 0..16 {
            pool.submit(&conn, i, line.clone());
        }
        pool.shutdown();
        assert!(cache.stats().hits > 0, "workers must share one cache");
    }

    #[test]
    fn stats_queries_see_the_pool_counters() {
        let pool = WorkerPool::new(Session::new(), &ServiceConfig::default());
        let sink = SharedSink::default();
        let conn = Connection::new(Box::new(sink.clone()));
        pool.submit(&conn, 0, request_line("warm"));
        pool.submit(&conn, 1, "{\"queries\": [{\"stats\": {}}]}".into());
        pool.shutdown();
        let last = sink.text().lines().last().unwrap().to_owned();
        let response = AnalysisResponse::from_json(&Json::parse(&last).unwrap()).unwrap();
        let outcomes = response.outcome.unwrap();
        let twca_api::QueryOutcome::Stats(stats) = outcomes[0] else {
            panic!("expected stats outcome");
        };
        assert!(stats.served >= 1);
    }
}
