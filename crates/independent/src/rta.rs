//! Classic busy-window response-time analysis for independent SPP tasks.

use std::error::Error;
use std::fmt;

use twca_curves::{ActivationModel, EventModel, Time};

/// An independent task under SPP scheduling.
#[derive(Debug, Clone, PartialEq)]
pub struct IndependentTask {
    name: String,
    priority: u32,
    wcet: Time,
    activation: ActivationModel,
    deadline: Option<Time>,
}

impl IndependentTask {
    /// Creates a task; larger `priority` values preempt smaller ones.
    pub fn new(
        name: impl Into<String>,
        priority: u32,
        wcet: Time,
        activation: ActivationModel,
    ) -> Self {
        IndependentTask {
            name: name.into(),
            priority,
            wcet,
            activation,
            deadline: None,
        }
    }

    /// Sets a relative deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Time) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The task name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scheduling priority (larger = higher).
    pub fn priority(&self) -> u32 {
        self.priority
    }

    /// The worst-case execution time bound.
    pub fn wcet(&self) -> Time {
        self.wcet
    }

    /// The activation model.
    pub fn activation(&self) -> &ActivationModel {
        &self.activation
    }

    /// The relative deadline, if any.
    pub fn deadline(&self) -> Option<Time> {
        self.deadline
    }
}

/// Iteration limits shared by the fixed-point computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisLimits {
    /// Abort the busy-window fixed point beyond this horizon.
    pub horizon: Time,
    /// Maximum `q` explored when searching the busy-window length.
    pub max_q: u64,
}

impl Default for AnalysisLimits {
    fn default() -> Self {
        AnalysisLimits {
            horizon: 100_000_000,
            max_q: 100_000,
        }
    }
}

/// Failure modes of the analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtaError {
    /// The task index was out of range.
    TaskOutOfRange {
        /// Offending index.
        index: usize,
        /// Number of tasks supplied.
        len: usize,
    },
    /// The busy window did not close within the configured limits: the
    /// task level is (worst-case) overloaded.
    Divergent,
}

impl fmt::Display for RtaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtaError::TaskOutOfRange { index, len } => {
                write!(f, "task index {index} out of range (have {len})")
            }
            RtaError::Divergent => {
                write!(f, "busy window does not close within the analysis limits")
            }
        }
    }
}

impl Error for RtaError {}

/// Result of analyzing one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtaResult {
    /// Worst-case response time over all activations in the busy window.
    pub worst_case_response_time: Time,
    /// Number of activations in the longest level-i busy window (`K_i`).
    pub busy_window_activations: u64,
    /// Multiple-event busy times `B_i(q)` for `q = 1..=K_i`.
    pub busy_times: Vec<Time>,
}

impl RtaResult {
    /// Whether the task meets `deadline` in the worst case.
    pub fn is_schedulable(&self, deadline: Time) -> bool {
        self.worst_case_response_time <= deadline
    }
}

/// Busy-window response-time analysis of `tasks[index]` against all
/// higher-priority tasks.
///
/// Uses the standard multiple-event busy-window formulation:
/// `B_i(q) = q·C_i + Σ_{j ∈ hp(i)} η+_j(B_i(q))·C_j` solved by fixed
/// point, `K_i = min{q : B_i(q) ≤ δ−_i(q+1)}`, and
/// `R_i = max_q (B_i(q) − δ−_i(q))`.
///
/// # Errors
///
/// * [`RtaError::TaskOutOfRange`] for a bad index;
/// * [`RtaError::Divergent`] if the busy window never closes (overload).
pub fn response_time_analysis(
    tasks: &[IndependentTask],
    index: usize,
) -> Result<RtaResult, RtaError> {
    response_time_analysis_with(tasks, index, AnalysisLimits::default())
}

/// [`response_time_analysis`] with explicit limits.
///
/// # Errors
///
/// See [`response_time_analysis`].
pub fn response_time_analysis_with(
    tasks: &[IndependentTask],
    index: usize,
    limits: AnalysisLimits,
) -> Result<RtaResult, RtaError> {
    let task = tasks.get(index).ok_or(RtaError::TaskOutOfRange {
        index,
        len: tasks.len(),
    })?;
    let higher: Vec<&IndependentTask> = tasks
        .iter()
        .enumerate()
        .filter(|&(j, t)| j != index && t.priority() > task.priority())
        .map(|(_, t)| t)
        .collect();

    let mut busy_times = Vec::new();
    let mut wcrt: Time = 0;
    let mut q = 1u64;
    loop {
        if q > limits.max_q {
            return Err(RtaError::Divergent);
        }
        let busy = busy_time(task, &higher, q, limits.horizon)?;
        busy_times.push(busy);
        let distance = task.activation().delta_min(q);
        wcrt = wcrt.max(busy.saturating_sub(distance));
        if busy <= task.activation().delta_min(q + 1) {
            break;
        }
        q += 1;
    }
    Ok(RtaResult {
        worst_case_response_time: wcrt,
        busy_window_activations: q,
        busy_times,
    })
}

fn busy_time(
    task: &IndependentTask,
    higher: &[&IndependentTask],
    q: u64,
    horizon: Time,
) -> Result<Time, RtaError> {
    let own = q.saturating_mul(task.wcet());
    let mut current = own.max(1);
    loop {
        if current > horizon {
            return Err(RtaError::Divergent);
        }
        let interference: Time = higher
            .iter()
            .map(|t| t.activation().eta_plus(current).saturating_mul(t.wcet()))
            .sum();
        let next = own + interference;
        if next == current {
            return Ok(current);
        }
        current = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twca_curves::ActivationModel;

    fn periodic(p: Time) -> ActivationModel {
        ActivationModel::periodic(p).unwrap()
    }

    #[test]
    fn textbook_three_task_set() {
        // Liu & Layland style: C = (1, 2, 3), T = (4, 6, 12),
        // priorities rate-monotonic.
        let tasks = vec![
            IndependentTask::new("t1", 3, 1, periodic(4)),
            IndependentTask::new("t2", 2, 2, periodic(6)),
            IndependentTask::new("t3", 1, 3, periodic(12)),
        ];
        assert_eq!(
            response_time_analysis(&tasks, 0)
                .unwrap()
                .worst_case_response_time,
            1
        );
        assert_eq!(
            response_time_analysis(&tasks, 1)
                .unwrap()
                .worst_case_response_time,
            3
        );
        // t3: 3 + 2·1 + 1·2 = fixed point at 7? Iterate: start 3 → +2·1+1·2
        // = 3+2+2 = 7; at 7: η1(7)=2, η2(7)=2 → 3+2+4=9; at 9: η1=3, η2=2
        // → 3+3+4=10; at 10: η1(10)=3, η2(10)=2 → 10. WCRT = 10.
        assert_eq!(
            response_time_analysis(&tasks, 2)
                .unwrap()
                .worst_case_response_time,
            10
        );
    }

    #[test]
    fn busy_window_spans_multiple_activations() {
        // hi: C=5, P=9; lo: C=3, P=7 (utilization ≈ 0.98): the level-lo
        // busy window holds four activations.
        let tasks = vec![
            IndependentTask::new("hi", 2, 5, periodic(9)),
            IndependentTask::new("lo", 1, 3, periodic(7)),
        ];
        let r = response_time_analysis(&tasks, 1).unwrap();
        assert_eq!(r.busy_window_activations, 4);
        assert_eq!(r.busy_times, vec![8, 16, 24, 27]);
        // WCRT = max(8-0, 16-7, 24-14, 27-21) = 10.
        assert_eq!(r.worst_case_response_time, 10);
    }

    #[test]
    fn overloaded_task_reports_divergence() {
        let tasks = vec![
            IndependentTask::new("hi", 2, 6, periodic(10)),
            IndependentTask::new("lo", 1, 5, periodic(10)),
        ];
        let r = response_time_analysis_with(
            &tasks,
            1,
            AnalysisLimits {
                horizon: 1_000_000,
                max_q: 2_000,
            },
        );
        assert_eq!(r.unwrap_err(), RtaError::Divergent);
    }

    #[test]
    fn sporadic_interference() {
        let tasks = vec![
            IndependentTask::new("isr", 5, 10, ActivationModel::sporadic(100).unwrap()),
            IndependentTask::new("app", 1, 20, periodic(100)),
        ];
        let r = response_time_analysis(&tasks, 1).unwrap();
        assert_eq!(r.worst_case_response_time, 30);
        assert!(r.is_schedulable(100));
        assert!(!r.is_schedulable(29));
    }

    #[test]
    fn out_of_range_index() {
        let tasks = vec![IndependentTask::new("x", 1, 1, periodic(10))];
        assert_eq!(
            response_time_analysis(&tasks, 3).unwrap_err(),
            RtaError::TaskOutOfRange { index: 3, len: 1 }
        );
    }

    #[test]
    fn equal_priority_does_not_interfere() {
        // SPP with distinct tasks of equal priority: neither preempts the
        // other in this classic formulation (only strictly higher).
        let tasks = vec![
            IndependentTask::new("a", 1, 5, periodic(10)),
            IndependentTask::new("b", 1, 5, periodic(10)),
        ];
        let r = response_time_analysis(&tasks, 0).unwrap();
        assert_eq!(r.worst_case_response_time, 5);
    }
}
