//! TWCA deadline miss models for independent tasks (the ECRTS'15-style
//! baseline the paper generalizes).

use crate::rta::{response_time_analysis_with, AnalysisLimits, IndependentTask, RtaError};
use twca_curves::{EventModel, Time};
use twca_ilp::PackingProblem;

/// A deadline miss model computed for one independent task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndependentDmm {
    /// The window length `k` the bound refers to.
    pub k: u64,
    /// The bound: at most this many of any `k` consecutive executions
    /// miss their deadline.
    pub bound: u64,
    /// Maximum misses attributable to a single busy window (`N_i`).
    pub misses_per_window: u64,
    /// Overload budgets `Ω_a` per overload task, in the order the
    /// overload indices were supplied.
    pub omegas: Vec<u64>,
    /// Number of unschedulable combinations found.
    pub unschedulable_combinations: usize,
}

/// TWCA analyzer for a fixed set of independent tasks with identified
/// overload tasks.
///
/// # Examples
///
/// ```
/// use twca_curves::ActivationModel;
/// use twca_independent::{IndependentTask, IndependentTwca};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tasks = vec![
///     IndependentTask::new("isr", 3, 60, ActivationModel::sporadic(1_000)?),
///     IndependentTask::new("ctrl", 2, 50, ActivationModel::periodic(100)?)
///         .with_deadline(100),
/// ];
/// let twca = IndependentTwca::new(&tasks, vec![0])?;
/// let dmm = twca.dmm(1, 20)?;
/// // One ISR burst spoils at most 2 windows out of any 20.
/// assert!(dmm.bound >= 1 && dmm.bound < 20);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IndependentTwca<'a> {
    tasks: &'a [IndependentTask],
    overload: Vec<usize>,
    limits: AnalysisLimits,
}

impl<'a> IndependentTwca<'a> {
    /// Creates an analyzer; `overload` lists the indices of the overload
    /// tasks.
    ///
    /// # Errors
    ///
    /// Returns [`RtaError::TaskOutOfRange`] for a bad overload index.
    pub fn new(tasks: &'a [IndependentTask], overload: Vec<usize>) -> Result<Self, RtaError> {
        if let Some(&bad) = overload.iter().find(|&&i| i >= tasks.len()) {
            return Err(RtaError::TaskOutOfRange {
                index: bad,
                len: tasks.len(),
            });
        }
        Ok(IndependentTwca {
            tasks,
            overload,
            limits: AnalysisLimits::default(),
        })
    }

    /// Replaces the analysis limits.
    #[must_use]
    pub fn with_limits(mut self, limits: AnalysisLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Computes `dmm_i(k)` for `tasks[index]`.
    ///
    /// The bound is `min(k, N_i · P*)` where `P*` is the optimal packing
    /// of unschedulable overload combinations into busy windows subject to
    /// the per-overload-task budgets `Ω_a` (Theorem 3 of the paper,
    /// specialized to independent tasks), and `N_i` the worst-case misses
    /// per busy window. A task that is unschedulable even without overload
    /// (or whose busy window diverges) gets the trivial bound `k`.
    ///
    /// # Errors
    ///
    /// Returns [`RtaError::TaskOutOfRange`] for a bad index. A task
    /// without a deadline is treated as having an infinite one (bound 0).
    pub fn dmm(&self, index: usize, k: u64) -> Result<IndependentDmm, RtaError> {
        let task = self.tasks.get(index).ok_or(RtaError::TaskOutOfRange {
            index,
            len: self.tasks.len(),
        })?;
        let Some(deadline) = task.deadline() else {
            return Ok(IndependentDmm {
                k,
                bound: 0,
                misses_per_window: 0,
                omegas: vec![0; self.overload.len()],
                unschedulable_combinations: 0,
            });
        };

        // Full analysis with overload; divergence means no bound better
        // than k.
        let full = match response_time_analysis_with(self.tasks, index, self.limits) {
            Ok(r) => r,
            Err(RtaError::Divergent) => {
                return Ok(IndependentDmm {
                    k,
                    bound: k,
                    misses_per_window: k,
                    omegas: vec![k; self.overload.len()],
                    unschedulable_combinations: 0,
                });
            }
            Err(e) => return Err(e),
        };

        let misses_per_window = full
            .busy_times
            .iter()
            .enumerate()
            .filter(|&(i, &b)| {
                let q = i as u64 + 1;
                b.saturating_sub(task.activation().delta_min(q)) > deadline
            })
            .count() as u64;
        if misses_per_window == 0 {
            return Ok(IndependentDmm {
                k,
                bound: 0,
                misses_per_window: 0,
                omegas: vec![0; self.overload.len()],
                unschedulable_combinations: 0,
            });
        }

        // Overload tasks that can actually interfere with this task.
        let relevant: Vec<usize> = self
            .overload
            .iter()
            .copied()
            .filter(|&a| a != index && self.tasks[a].priority() > task.priority())
            .collect();

        // Budgets Ω_a = η+_a(δ+_i(k) + R_i) + 1, capped at k (a window of
        // k activations spans at most k distinct busy windows).
        let omegas: Vec<u64> = relevant
            .iter()
            .map(|&a| {
                let horizon = task
                    .activation()
                    .delta_plus(k)
                    .map(|d| d.saturating_add(full.worst_case_response_time));
                match horizon {
                    Some(h) => self.tasks[a]
                        .activation()
                        .eta_plus(h)
                        .saturating_add(1)
                        .min(k),
                    None => k,
                }
            })
            .collect();

        // Typical busy times (overload excluded), evaluated at the
        // deadline horizon: L_i(q).
        let higher_typical: Vec<&IndependentTask> = self
            .tasks
            .iter()
            .enumerate()
            .filter(|&(j, t)| {
                j != index && t.priority() > task.priority() && !self.overload.contains(&j)
            })
            .map(|(_, t)| t)
            .collect();
        let k_max = full.busy_window_activations;
        let typical_l: Vec<Time> = (1..=k_max)
            .map(|q| {
                let horizon = task.activation().delta_min(q).saturating_add(deadline);
                q.saturating_mul(task.wcet())
                    + higher_typical
                        .iter()
                        .map(|t| t.activation().eta_plus(horizon).saturating_mul(t.wcet()))
                        .sum::<Time>()
            })
            .collect();

        // Enumerate combinations (subsets of relevant overload tasks) and
        // keep the unschedulable ones.
        let n = relevant.len();
        let mut items: Vec<Vec<usize>> = Vec::new();
        for mask in 1u64..(1 << n) {
            let extra: Time = (0..n)
                .filter(|&b| mask & (1 << b) != 0)
                .map(|b| self.tasks[relevant[b]].wcet())
                .sum();
            let unschedulable = (1..=k_max).any(|q| {
                let slack = task.activation().delta_min(q).saturating_add(deadline);
                typical_l[(q - 1) as usize].saturating_add(extra) > slack
            });
            if unschedulable {
                items.push((0..n).filter(|&b| mask & (1 << b) != 0).collect());
            }
        }
        let unschedulable_combinations = items.len();
        let packed = if items.is_empty() {
            0
        } else {
            PackingProblem::new(omegas.clone(), items)
                .expect("indices are in range by construction")
                .solve()
                .packed_total()
        };

        Ok(IndependentDmm {
            k,
            bound: k.min(misses_per_window.saturating_mul(packed)),
            misses_per_window,
            omegas,
            unschedulable_combinations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twca_curves::ActivationModel;

    fn periodic(p: Time) -> ActivationModel {
        ActivationModel::periodic(p).unwrap()
    }

    fn sporadic(d: Time) -> ActivationModel {
        ActivationModel::sporadic(d).unwrap()
    }

    /// app (C=50, P=D=100) + rare ISR (C=60): one ISR activation makes the
    /// app miss; without it the app is schedulable.
    fn base_tasks() -> Vec<IndependentTask> {
        vec![
            IndependentTask::new("isr", 3, 60, sporadic(1_000)),
            IndependentTask::new("app", 2, 50, periodic(100)).with_deadline(100),
        ]
    }

    #[test]
    fn schedulable_without_overload() {
        let tasks = base_tasks();
        let typical = vec![tasks[1].clone()];
        let r = response_time_analysis_with(&typical, 0, AnalysisLimits::default()).unwrap();
        assert!(r.is_schedulable(100));
    }

    #[test]
    fn dmm_bounds_misses() {
        let tasks = base_tasks();
        let twca = IndependentTwca::new(&tasks, vec![0]).unwrap();
        let dmm = twca.dmm(1, 10).unwrap();
        assert_eq!(dmm.unschedulable_combinations, 1);
        assert!(dmm.bound >= 1, "one ISR can cause a miss");
        assert!(dmm.bound <= 10);
        // In 10 periods (δ+ = 900) + R, at most 2 ISR arrivals fit the
        // budget formula: η+(900 + R) + 1.
        assert!(dmm.omegas[0] <= 3);
    }

    #[test]
    fn dmm_zero_for_schedulable_task() {
        // ISR too small to cause a miss.
        let tasks = vec![
            IndependentTask::new("isr", 3, 10, sporadic(1_000)),
            IndependentTask::new("app", 2, 50, periodic(100)).with_deadline(100),
        ];
        let twca = IndependentTwca::new(&tasks, vec![0]).unwrap();
        let dmm = twca.dmm(1, 10).unwrap();
        assert_eq!(dmm.bound, 0);
        assert_eq!(dmm.misses_per_window, 0);
    }

    #[test]
    fn dmm_k_for_divergent_task() {
        let tasks = vec![
            IndependentTask::new("hog", 3, 90, periodic(100)),
            IndependentTask::new("app", 2, 50, periodic(100)).with_deadline(100),
        ];
        let twca = IndependentTwca::new(&tasks, vec![0])
            .unwrap()
            .with_limits(AnalysisLimits {
                horizon: 100_000,
                max_q: 200,
            });
        let dmm = twca.dmm(1, 7).unwrap();
        assert_eq!(dmm.bound, 7);
    }

    #[test]
    fn lower_priority_overload_is_ignored() {
        let tasks = vec![
            IndependentTask::new("bg", 1, 500, sporadic(1_000)),
            IndependentTask::new("app", 2, 50, periodic(100)).with_deadline(100),
        ];
        let twca = IndependentTwca::new(&tasks, vec![0]).unwrap();
        let dmm = twca.dmm(1, 10).unwrap();
        assert_eq!(dmm.bound, 0);
    }

    #[test]
    fn task_without_deadline_never_misses() {
        let tasks = vec![
            IndependentTask::new("isr", 3, 60, sporadic(1_000)),
            IndependentTask::new("app", 2, 50, periodic(100)),
        ];
        let twca = IndependentTwca::new(&tasks, vec![0]).unwrap();
        assert_eq!(twca.dmm(1, 10).unwrap().bound, 0);
    }

    #[test]
    fn two_overload_tasks_pack_independently() {
        // Each ISR alone causes a miss → two unschedulable singletons plus
        // their union.
        let tasks = vec![
            IndependentTask::new("isr1", 4, 60, sporadic(10_000)),
            IndependentTask::new("isr2", 3, 60, sporadic(10_000)),
            IndependentTask::new("app", 2, 50, periodic(100)).with_deadline(100),
        ];
        let twca = IndependentTwca::new(&tasks, vec![0, 1]).unwrap();
        let dmm = twca.dmm(2, 50).unwrap();
        assert_eq!(dmm.unschedulable_combinations, 3);
        // Budgets are 2 per ISR (η+(δ+(50)+R)+1): two windows each.
        assert!(dmm.bound >= 2);
        assert!(dmm.bound <= 8);
    }

    #[test]
    fn bad_indices_are_rejected() {
        let tasks = base_tasks();
        assert!(IndependentTwca::new(&tasks, vec![9]).is_err());
        let twca = IndependentTwca::new(&tasks, vec![0]).unwrap();
        assert!(twca.dmm(9, 1).is_err());
    }
}
