//! Output event-model propagation: the compositional-performance-analysis
//! step that turns a task's *input* activation model plus its response
//! time bounds into the event model of its *output* stream.
//!
//! This is the mechanism behind path-level composition (chains of chains
//! feed each other): a stage with worst-case response time `R` and
//! best-case response time `B` delays each event by something in
//! `[B, R]`, which adds `R − B` of jitter and can compress minimum
//! distances down to `B`.

use twca_curves::{ActivationModel, Time};

/// Propagates an activation model through a processing stage with
/// response times in `[best_case, worst_case]`.
///
/// * periodic inputs gain jitter `R − B`;
/// * jittery inputs accumulate it;
/// * sporadic inputs keep their sporadicity with the minimum distance
///   compressed to `max(d − (R − B), B, 1)`.
///
/// Returns `None` for model classes this transformation does not support
/// (burst, table, never).
///
/// # Panics
///
/// Panics if `worst_case < best_case`.
///
/// # Examples
///
/// ```
/// use twca_curves::{ActivationModel, EventModel};
/// use twca_independent::propagate_output_model;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let input = ActivationModel::periodic(100)?;
/// let output = propagate_output_model(&input, 30, 10).expect("supported");
/// // The stage adds R − B = 20 of jitter: consecutive outputs can come
/// // as close as 100 − 20 = 80 apart.
/// assert_eq!(output.delta_min(2), 80);
/// // But the long-run rate is unchanged.
/// assert_eq!(output.eta_plus(1_000), input.eta_plus(1_000) + 1);
/// # Ok(())
/// # }
/// ```
pub fn propagate_output_model(
    input: &ActivationModel,
    worst_case: Time,
    best_case: Time,
) -> Option<ActivationModel> {
    assert!(
        worst_case >= best_case,
        "worst-case response below best case"
    );
    let added_jitter = worst_case - best_case;
    let floor_distance = best_case.max(1);
    match input {
        ActivationModel::Periodic(p) => ActivationModel::periodic_jitter(
            p.period(),
            added_jitter,
            floor_distance.min(p.period()),
        )
        .ok(),
        ActivationModel::PeriodicJitter(pj) => {
            let distance = pj
                .min_distance()
                .saturating_sub(added_jitter)
                .max(floor_distance)
                .min(pj.period());
            ActivationModel::periodic_jitter(
                pj.period(),
                pj.jitter().saturating_add(added_jitter),
                distance,
            )
            .ok()
        }
        ActivationModel::Sporadic(s) => {
            let distance = s
                .min_distance()
                .saturating_sub(added_jitter)
                .max(floor_distance);
            ActivationModel::sporadic(distance).ok()
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twca_curves::EventModel;

    #[test]
    fn zero_jitter_stage_preserves_distances() {
        let input = ActivationModel::periodic(100).unwrap();
        let output = propagate_output_model(&input, 10, 10).unwrap();
        assert_eq!(output.delta_min(2), 100); // jitter 0 → still 100
        for delta in 0..1_000 {
            assert_eq!(output.eta_plus(delta), input.eta_plus(delta));
        }
    }

    #[test]
    fn jitter_accumulates_across_stages() {
        let input = ActivationModel::periodic(100).unwrap();
        let after_one = propagate_output_model(&input, 30, 10).unwrap();
        let after_two = propagate_output_model(&after_one, 25, 5).unwrap();
        match after_two {
            ActivationModel::PeriodicJitter(pj) => {
                assert_eq!(pj.period(), 100);
                assert_eq!(pj.jitter(), 20 + 20);
            }
            other => panic!("unexpected model {other:?}"),
        }
    }

    #[test]
    fn sporadic_distance_is_compressed_but_floored() {
        let input = ActivationModel::sporadic(50).unwrap();
        let output = propagate_output_model(&input, 45, 5).unwrap();
        match output {
            ActivationModel::Sporadic(s) => assert_eq!(s.min_distance(), 10),
            other => panic!("unexpected model {other:?}"),
        }
        // Compression never goes below the best case (or 1).
        let heavy = propagate_output_model(&input, 500, 5).unwrap();
        match heavy {
            ActivationModel::Sporadic(s) => assert_eq!(s.min_distance(), 5),
            other => panic!("unexpected model {other:?}"),
        }
    }

    #[test]
    fn output_rate_never_exceeds_input_rate_plus_backlog() {
        // Long-run: the output η+ over a large window is at most the
        // input count plus one backlogged event.
        let input = ActivationModel::periodic(100).unwrap();
        let output = propagate_output_model(&input, 80, 10).unwrap();
        for delta in [1_000u64, 10_000, 100_000] {
            assert!(output.eta_plus(delta) <= input.eta_plus(delta) + 1);
        }
    }

    #[test]
    fn unsupported_models_return_none() {
        let never = ActivationModel::never();
        assert!(propagate_output_model(&never, 10, 5).is_none());
    }

    #[test]
    #[should_panic(expected = "worst-case response below best case")]
    fn inverted_response_times_panic() {
        let input = ActivationModel::periodic(100).unwrap();
        let _ = propagate_output_model(&input, 5, 10);
    }
}
