//! Baseline analyses for systems of *independent* tasks.
//!
//! The DATE 2017 paper generalizes two prior results to task chains:
//!
//! * classic **busy-window response-time analysis** for static-priority
//!   preemptive uniprocessors (here: [`response_time_analysis`]);
//! * **TWCA for independent tasks** in the style of Quinton et al.
//!   (DATE'12) and Xu et al. (ECRTS'15) (here: [`IndependentTwca`]).
//!
//! These serve as the comparison baselines in the benchmark suite: a task
//! chain collapsed to a single task (with the chain's total WCET) can be
//! analyzed by both the baseline and the chain-aware analysis, and the
//! chain-aware analysis must agree on such degenerate inputs.
//!
//! # Examples
//!
//! ```
//! use twca_curves::ActivationModel;
//! use twca_independent::{response_time_analysis, IndependentTask};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tasks = vec![
//!     IndependentTask::new("hi", 2, 3, ActivationModel::periodic(10)?),
//!     IndependentTask::new("lo", 1, 4, ActivationModel::periodic(20)?),
//! ];
//! let r = response_time_analysis(&tasks, 1)?; // analyze "lo"
//! assert_eq!(r.worst_case_response_time, 7); // 4 + 1·3
//! # Ok(())
//! # }
//! ```

mod propagate;
mod rta;
mod twca;

pub use propagate::propagate_output_model;
pub use rta::{response_time_analysis, AnalysisLimits, IndependentTask, RtaError, RtaResult};
pub use twca::{IndependentDmm, IndependentTwca};
