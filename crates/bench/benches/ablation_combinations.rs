//! Ablation: combination enumeration (Definition 9) as the number of
//! overload chains and segments grows, and the slack-based criterion
//! (Equation 5) that keeps the unschedulable set small.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use twca_chains::{typical_slack, AnalysisContext, AnalysisOptions, CombinationSet};
use twca_model::{ChainKind, System, SystemBuilder};

/// A victim chain plus `overloads` overload chains, each with
/// `segments_per_chain` active segments (alternating priorities force
/// segment splits).
fn system_with_overloads(overloads: usize, segments_per_chain: usize) -> System {
    let mut builder = SystemBuilder::new()
        .chain("victim")
        .periodic(1_000)
        .expect("static period")
        .deadline(1_000)
        .kind(ChainKind::Synchronous)
        .task("v1", 50, 10)
        .task("v2", 1, 10)
        .done();
    let mut prio = 100u32;
    for o in 0..overloads {
        let mut cb = builder
            .chain(format!("over_{o}"))
            .sporadic(50_000)
            .expect("static distance")
            .overload();
        for s in 0..segments_per_chain {
            // High task (a segment/active segment) followed by a low task
            // (priority 2..49 band keeps it above the victim's tail=1 but
            // below v1=50? No: below the victim min => breaks segments).
            cb = cb.task(format!("o{o}_hi{s}"), prio, 5);
            prio += 1;
            if s + 1 < segments_per_chain {
                cb = cb.task(format!("o{o}_lo{s}"), 0, 1);
            }
        }
        builder = cb.done();
    }
    builder.build().expect("well-formed")
}

fn bench_combinations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_combinations");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for (overloads, segs) in [(1usize, 2usize), (2, 2), (2, 4), (3, 4), (4, 4)] {
        let system = system_with_overloads(overloads, segs);
        let ctx = AnalysisContext::new(&system);
        let (victim, _) = system.chain_by_name("victim").unwrap();
        let opts = AnalysisOptions::default();

        let set = CombinationSet::enumerate(&ctx, victim, opts).expect("within limits");
        let slack = typical_slack(&ctx, victim, 1);
        println!(
            "  {overloads} overload chains x {segs} segments: {} combinations, {} unschedulable at slack {slack}",
            set.combinations().len(),
            set.unschedulable(slack).count()
        );

        let label = format!("{overloads}x{segs}");
        group.bench_with_input(
            BenchmarkId::new("enumerate", &label),
            &(&ctx, victim),
            |b, &(ctx, victim)| {
                b.iter(|| CombinationSet::enumerate(black_box(ctx), victim, opts).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("classify_by_slack", &label),
            &set,
            |b, set| b.iter(|| black_box(set.unschedulable(slack).count())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_combinations);
criterion_main!(benches);
