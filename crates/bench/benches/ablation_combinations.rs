//! Ablation: combination enumeration (Definition 9) as the number of
//! overload chains and segments grows, comparing the **materialized**
//! reference (`CombinationSet::enumerate`) against the **lazy**
//! dominance-pruned engine (`PreparedCombinations`) on the same
//! classification questions: unschedulable count and the minimal item
//! antichain the packing consumes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use twca_bench::runner::system_with_overloads;
use twca_chains::{
    typical_slack, AnalysisContext, AnalysisOptions, CombinationSet, PreparedCombinations,
};

fn bench_combinations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_combinations");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for (overloads, segs) in [(1usize, 2usize), (2, 2), (2, 4), (3, 4), (4, 4)] {
        let system = system_with_overloads(overloads, segs);
        let ctx = AnalysisContext::new(&system);
        let (victim, _) = system.chain_by_name("victim").unwrap();
        let opts = AnalysisOptions::default();

        let set = CombinationSet::enumerate(&ctx, victim, opts).expect("within limits");
        let slack = typical_slack(&ctx, victim, 1);
        let prepared = PreparedCombinations::prepare(&ctx, victim, 1, opts).expect("within limits");
        println!(
            "  {overloads} overload chains x {segs} segments: {} combinations, {} unschedulable \
             at slack {slack}, minimal antichain {}",
            set.combinations().len(),
            set.unschedulable(slack).count(),
            prepared.minimal_unschedulable(slack).len(),
        );

        let label = format!("{overloads}x{segs}");
        group.bench_with_input(
            BenchmarkId::new("enumerate", &label),
            &(&ctx, victim),
            |b, &(ctx, victim)| {
                b.iter(|| CombinationSet::enumerate(black_box(ctx), victim, opts).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("classify_by_slack", &label),
            &set,
            |b, set| b.iter(|| black_box(set.unschedulable(slack).count())),
        );
        group.bench_with_input(
            BenchmarkId::new("lazy_prepare", &label),
            &(&ctx, victim),
            |b, &(ctx, victim)| {
                b.iter(|| PreparedCombinations::prepare(black_box(ctx), victim, 1, opts).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lazy_count_unschedulable", &label),
            &prepared,
            |b, prepared| b.iter(|| black_box(prepared.count_unschedulable(slack))),
        );
        group.bench_with_input(
            BenchmarkId::new("lazy_minimal_antichain", &label),
            &prepared,
            |b, prepared| b.iter(|| black_box(prepared.minimal_unschedulable(slack).len())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_combinations);
criterion_main!(benches);
