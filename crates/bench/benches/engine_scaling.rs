//! Batch-engine scaling: serial vs parallel analysis of a generated
//! design space, and the effect of the shared busy-window cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use twca_engine::BatchEngine;
use twca_gen::{random_system, RandomSystemConfig};
use twca_model::System;

fn design_space(count: usize) -> Vec<System> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let config = RandomSystemConfig::default();
    (0..count)
        .map(|_| random_system(&mut rng, &config).expect("valid configuration"))
        .collect()
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling");
    let systems = design_space(64);

    group.bench_with_input(
        BenchmarkId::new("serial", systems.len()),
        &systems,
        |b, systems| {
            b.iter(|| {
                let engine = BatchEngine::new().with_ks([1, 10, 100]).with_threads(1);
                black_box(engine.run_serial(black_box(systems.clone())).len())
            })
        },
    );

    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    group.bench_with_input(
        BenchmarkId::new(format!("parallel_x{threads}"), systems.len()),
        &systems,
        |b, systems| {
            b.iter(|| {
                let engine = BatchEngine::new().with_ks([1, 10, 100]);
                black_box(engine.run(black_box(systems.clone())).len())
            })
        },
    );

    // Cache effect in isolation: re-analyzing one design space with a
    // warm shared cache versus a cold per-iteration cache.
    let warm = BatchEngine::new().with_ks([1, 10, 100]).with_threads(1);
    let _ = warm.run_serial(systems.clone());
    group.bench_with_input(
        BenchmarkId::new("serial_warm_cache", systems.len()),
        &systems,
        |b, systems| b.iter(|| black_box(warm.run_serial(black_box(systems.clone())).len())),
    );

    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
