//! Runtime scaling of the full analysis pipeline with system size, and
//! simulator throughput.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use twca_bench::scaled_case_study;
use twca_chains::ChainAnalysis;
use twca_model::case_study;
use twca_sim::{Simulation, TraceSet};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for factor in [1usize, 2, 4, 8] {
        let system = scaled_case_study(factor);
        group.bench_with_input(
            BenchmarkId::new("full_report", factor),
            &system,
            |b, system| {
                b.iter(|| {
                    let analysis = ChainAnalysis::new(black_box(system));
                    black_box(analysis.report())
                })
            },
        );
    }

    let system = case_study();
    for horizon in [10_000u64, 100_000] {
        let traces = TraceSet::max_rate(&system, horizon);
        group.bench_with_input(
            BenchmarkId::new("simulate_case_study", horizon),
            &traces,
            |b, traces| {
                b.iter(|| {
                    let r = Simulation::new(black_box(&system)).run(traces);
                    black_box(r.chains().len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
