//! Regenerates Table II (the deadline miss model of σc) and measures the
//! full DMM pipeline runtime at the paper's sample points.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use twca_bench::table2;
use twca_chains::{
    deadline_miss_model, deadline_miss_model_exact, AnalysisContext, AnalysisOptions,
};
use twca_model::case_study;

fn bench_table2(c: &mut Criterion) {
    println!("\n== Table II (regenerated) ==");
    println!("  paper: dmm_c(3) = 3, dmm_c(76) = 4, dmm_c(250) = 5");
    for dmm in table2(&[3, 76, 250]) {
        println!(
            "  ours : dmm_c({}) = {} (N_b = {}, packed = {}, slack = {})",
            dmm.k, dmm.bound, dmm.misses_per_window, dmm.packed_windows, dmm.typical_slack
        );
    }
    println!("  (k = 76/250 differ from the paper; see EXPERIMENTS.md)");

    let system = case_study();
    let ctx = AnalysisContext::new(&system);
    let (sigma_c, _) = system.chain_by_name("sigma_c").unwrap();
    let opts = AnalysisOptions::default();

    let mut group = c.benchmark_group("table2_dmm");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for k in [3u64, 76, 250] {
        group.bench_with_input(BenchmarkId::new("dmm_sigma_c", k), &k, |b, &k| {
            b.iter(|| deadline_miss_model(black_box(&ctx), sigma_c, k, opts).expect("deadline"))
        });
    }

    // Ablation: sufficient (Eq. 5) vs exact (Eq. 3) combination
    // criterion.
    group.bench_function("dmm_sufficient_k76", |b| {
        b.iter(|| deadline_miss_model(black_box(&ctx), sigma_c, 76, opts).expect("deadline"))
    });
    group.bench_function("dmm_exact_k76", |b| {
        b.iter(|| deadline_miss_model_exact(black_box(&ctx), sigma_c, 76, opts).expect("deadline"))
    });

    // Ablation: a full curve via repeated pointwise analysis vs the
    // shared-state sweep.
    let ks: Vec<u64> = (1..=100).collect();
    group.bench_function("curve_pointwise_1_to_100", |b| {
        b.iter(|| {
            for &k in &ks {
                let r = deadline_miss_model(black_box(&ctx), sigma_c, k, opts).expect("deadline");
                black_box(r.bound);
            }
        })
    });
    group.bench_function("curve_sweep_1_to_100", |b| {
        b.iter(|| {
            let sweep =
                twca_chains::DmmSweep::prepare(black_box(&ctx), sigma_c, opts).expect("deadline");
            for &k in &ks {
                black_box(sweep.at(k).bound);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
