//! Regenerates Figure 5 (dmm(10) histograms over random priority
//! assignments) and measures per-assignment analysis throughput.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use twca_bench::figure5;
use twca_chains::ChainAnalysis;
use twca_gen::priority_permutations;
use twca_model::{case_study, CASE_STUDY_TASK_COUNT};

fn bench_fig5(c: &mut Criterion) {
    // Regenerate the figure with a reduced round count so `cargo bench`
    // stays fast; the `experiments fig5` binary runs the full 1000.
    let outcome = figure5(2017, 200);
    println!("\n== Figure 5 (regenerated, 200 assignments) ==");
    println!(
        "  sigma_c schedulable: {}/{} (paper: 633/1000)",
        outcome.schedulable_c, outcome.rounds
    );
    println!(
        "  sigma_d schedulable: {}/{} (paper: 307/1000)",
        outcome.schedulable_d, outcome.rounds
    );
    println!("  dmm_c(10) histogram: {:?}", outcome.histogram_c);
    println!("  dmm_d(10) histogram: {:?}", outcome.histogram_d);

    let base = case_study();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let assignments = priority_permutations(&mut rng, CASE_STUDY_TASK_COUNT, 64);

    let mut group = c.benchmark_group("fig5_random");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("analyze_one_assignment", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let system = base.with_priorities(&assignments[i % assignments.len()]);
            i += 1;
            let analysis = ChainAnalysis::new(&system);
            let (cid, _) = system.chain_by_name("sigma_c").unwrap();
            let (did, _) = system.chain_by_name("sigma_d").unwrap();
            let c_bound = analysis.deadline_miss_model(cid, 10).unwrap().bound;
            let d_bound = analysis.deadline_miss_model(did, 10).unwrap().bound;
            black_box((c_bound, d_bound))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
