//! Ablation: the specialized packing solver vs the general exact ILP
//! (simplex + branch and bound) on DMM-shaped packing instances.
//!
//! Both must return identical optima (asserted before measuring); the
//! benchmark quantifies what the dedicated solver buys.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use twca_ilp::{solve_ilp, PackingProblem};

/// Random DMM-shaped instance: `segments` resources with budgets in
/// 1..=8, `items` combinations of 1..=3 distinct segments.
fn instance(rng: &mut impl Rng, segments: usize, items: usize) -> PackingProblem {
    let capacities: Vec<u64> = (0..segments).map(|_| rng.gen_range(1..=8)).collect();
    let mut all_items = Vec::with_capacity(items);
    for _ in 0..items {
        let size = rng.gen_range(1..=3.min(segments));
        let mut item: Vec<usize> = Vec::new();
        while item.len() < size {
            let s = rng.gen_range(0..segments);
            if !item.contains(&s) {
                item.push(s);
            }
        }
        all_items.push(item);
    }
    PackingProblem::new(capacities, all_items).expect("valid instance")
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_ilp");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for (segments, items) in [(4usize, 4usize), (6, 8), (8, 12)] {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let problems: Vec<PackingProblem> = (0..8)
            .map(|_| instance(&mut rng, segments, items))
            .collect();

        // Cross-validate once before timing.
        for p in &problems {
            let fast = p.solve().packed_total();
            let general = solve_ilp(&p.to_ilp())
                .expect("solvable")
                .expect_optimal()
                .objective_value() as u64;
            assert_eq!(fast, general, "solvers disagree on {p:?}");
        }

        let label = format!("{segments}seg_{items}items");
        group.bench_with_input(
            BenchmarkId::new("specialized_packing", &label),
            &problems,
            |b, problems| {
                b.iter(|| {
                    for p in problems {
                        black_box(p.solve().packed_total());
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("general_bb_ilp", &label),
            &problems,
            |b, problems| {
                b.iter(|| {
                    for p in problems {
                        let v = solve_ilp(&p.to_ilp())
                            .expect("solvable")
                            .expect_optimal()
                            .objective_value();
                        black_box(v);
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
