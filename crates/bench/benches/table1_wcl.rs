//! Regenerates Table I (worst-case latencies of σc and σd) and measures
//! the latency-analysis runtime.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use twca_bench::table1;
use twca_chains::{latency_analysis, AnalysisContext, AnalysisOptions, OverloadMode};
use twca_model::case_study;

fn bench_table1(c: &mut Criterion) {
    // Print the regenerated table once, so `cargo bench` output contains
    // the reproduction artifact itself.
    println!("\n== Table I (regenerated) ==");
    for row in table1() {
        println!(
            "  {:<10} WCL {:>4}   typical {:>4}   D {}",
            row.chain,
            row.wcl.map_or("unbounded".into(), |w| w.to_string()),
            row.typical_wcl
                .map_or("unbounded".into(), |w| w.to_string()),
            row.deadline
        );
    }

    let system = case_study();
    let ctx = AnalysisContext::new(&system);
    let (sigma_c, _) = system.chain_by_name("sigma_c").unwrap();
    let (sigma_d, _) = system.chain_by_name("sigma_d").unwrap();
    let opts = AnalysisOptions::default();

    let mut group = c.benchmark_group("table1_wcl");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("sigma_c_full", |b| {
        b.iter(|| {
            latency_analysis(black_box(&ctx), sigma_c, OverloadMode::Include, opts).expect("closes")
        })
    });
    group.bench_function("sigma_d_full", |b| {
        b.iter(|| {
            latency_analysis(black_box(&ctx), sigma_d, OverloadMode::Include, opts).expect("closes")
        })
    });
    group.bench_function("sigma_c_typical", |b| {
        b.iter(|| {
            latency_analysis(black_box(&ctx), sigma_c, OverloadMode::Exclude, opts).expect("closes")
        })
    });
    group.bench_function("context_construction", |b| {
        b.iter(|| AnalysisContext::new(black_box(&system)))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
