//! Distributed extension: holistic-iteration cost vs pipeline depth,
//! and the cost split between propagation and per-resource analysis.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use twca_bench::distributed_pipeline;
use twca_dist::{analyze, jitter_shifted, DistOptions};
use twca_model::case_study;

fn bench_dist(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist_scaling");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));

    for stages in [2usize, 4, 8] {
        let dist = distributed_pipeline(stages);
        group.bench_with_input(
            BenchmarkId::new("holistic_analysis", stages),
            &dist,
            |b, dist| {
                b.iter(|| {
                    let r = analyze(black_box(dist), DistOptions::default())
                        .expect("pipeline converges");
                    black_box(r.sweeps())
                })
            },
        );
    }

    // Propagation primitive in isolation: shifting each activation model
    // of the case study by a representative jitter.
    let system = case_study();
    group.bench_function("jitter_shift_case_study_models", |b| {
        b.iter(|| {
            for (_, chain) in system.iter() {
                black_box(jitter_shifted(black_box(chain.activation()), 331));
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_dist);
criterion_main!(benches);
