//! Façade overhead: the `twca-api` `Session` pipeline versus direct
//! `twca-chains` calls on the warm-cache 64-system batch of the engine
//! benchmarks. The façade must stay within a few percent of the direct
//! path (the acceptance bar is < 5%); a third series measures the full
//! wire round trip (serialize request → parse → analyze → serialize
//! response) for the `twca serve` mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use twca_api::{AnalysisRequest, Query, Session};
use twca_chains::{latency_analysis, AnalysisContext, DmmSweep, OverloadMode};
use twca_gen::{random_system, RandomSystemConfig};
use twca_model::{render_system, System};

const KS: [u64; 3] = [1, 10, 100];

fn design_space(count: usize) -> Vec<System> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let config = RandomSystemConfig::default();
    (0..count)
        .map(|_| random_system(&mut rng, &config).expect("valid configuration"))
        .collect()
}

/// One chain's record in the hand-rolled baseline, mirroring what the
/// façade's `ChainOutcome` materializes so both series pay the same
/// result-building cost.
type DirectRow = (String, Option<u64>, Option<u64>, Vec<(u64, u64, bool)>);

/// The raw pipeline, inlined without the façade: per-chain latencies
/// (both overload modes) plus a miss-model sweep per deadline chain.
fn direct_pipeline(session: &Session, system: &System) -> Vec<DirectRow> {
    let ctx = AnalysisContext::with_cache(system, session.cache());
    let options = session.options();
    let mut rows = Vec::with_capacity(system.chains().len());
    for (id, chain) in system.iter() {
        let full = latency_analysis(&ctx, id, OverloadMode::Include, options);
        let typical = latency_analysis(&ctx, id, OverloadMode::Exclude, options);
        let points = if chain.deadline().is_some() {
            match DmmSweep::prepare(&ctx, id, options) {
                Ok(sweep) => sweep
                    .curve(KS.iter().copied())
                    .into_iter()
                    .map(|d| (d.k, d.bound, d.informative))
                    .collect(),
                Err(_) => Vec::new(),
            }
        } else {
            Vec::new()
        };
        rows.push((
            chain.name().to_owned(),
            full.map(|r| r.worst_case_latency),
            typical.map(|r| r.worst_case_latency),
            points,
        ));
    }
    rows
}

fn bench_api_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("api_overhead");
    let systems = design_space(64);

    // One shared session; warm its cache once so every series measures
    // the warm-path overhead, not the first analysis.
    let session = Session::new();
    for system in &systems {
        let _ = session.system_outcome(0, system, &KS);
    }

    group.bench_with_input(
        BenchmarkId::new("direct_chains", systems.len()),
        &systems,
        |b, systems| {
            b.iter(|| {
                let mut total = 0usize;
                for system in systems {
                    total += direct_pipeline(&session, black_box(system)).len();
                }
                black_box(total)
            })
        },
    );

    group.bench_with_input(
        BenchmarkId::new("facade_session", systems.len()),
        &systems,
        |b, systems| {
            b.iter(|| {
                let mut total = 0usize;
                for (index, system) in systems.iter().enumerate() {
                    total += session
                        .system_outcome(index, black_box(system), &KS)
                        .chains
                        .len();
                }
                black_box(total)
            })
        },
    );

    // The full wire path: DSL + JSON request in, JSON response out.
    let requests: Vec<String> = systems
        .iter()
        .map(|system| {
            AnalysisRequest::for_system(render_system(system))
                .with_query(Query::Full { ks: KS.to_vec() })
                .to_json()
                .to_string()
        })
        .collect();
    group.bench_with_input(
        BenchmarkId::new("wire_round_trip", requests.len()),
        &requests,
        |b, requests| {
            b.iter(|| {
                let mut bytes = 0usize;
                for line in requests {
                    let response = twca_api::respond_line(&session, black_box(line));
                    bytes += response.to_json().to_string().len();
                }
                black_box(bytes)
            })
        },
    );

    group.finish();
}

criterion_group!(benches, bench_api_overhead);
criterion_main!(benches);
