//! Shared experiment harness: one function per table/figure of the
//! paper's evaluation, used by both the `experiments` binary and the
//! Criterion benches.

pub mod runner;

use std::collections::BTreeMap;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use twca_chains::{ChainAnalysis, DmmResult};
use twca_gen::priority_permutations;
use twca_independent::{response_time_analysis, IndependentTask};
use twca_model::{case_study, System, Time, CASE_STUDY_TASK_COUNT};
use twca_sim::{adversarial_aligned_traces, Simulation, TraceSet};

/// One row of Table I: worst-case latency vs deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Chain name.
    pub chain: String,
    /// Analytic worst-case latency (`None` = unbounded).
    pub wcl: Option<Time>,
    /// Worst-case latency with overload chains silent.
    pub typical_wcl: Option<Time>,
    /// The deadline.
    pub deadline: Time,
}

/// Experiment 1, Table I: worst-case latencies of σc and σd.
pub fn table1() -> Vec<Table1Row> {
    let system = case_study();
    let analysis = ChainAnalysis::new(&system);
    ["sigma_c", "sigma_d"]
        .iter()
        .map(|name| {
            let (id, chain) = system.chain_by_name(name).expect("case-study chain");
            Table1Row {
                chain: name.to_string(),
                wcl: analysis
                    .try_worst_case_latency(id)
                    .expect("valid id")
                    .map(|r| r.worst_case_latency),
                typical_wcl: analysis
                    .typical_latency(id)
                    .expect("valid id")
                    .map(|r| r.worst_case_latency),
                deadline: chain.deadline().expect("σc/σd have deadlines"),
            }
        })
        .collect()
}

/// Experiment 1, Table II: the deadline miss model of σc at the paper's
/// sample points (plus any extra `ks`).
pub fn table2(ks: &[u64]) -> Vec<DmmResult> {
    let system = case_study();
    let analysis = ChainAnalysis::new(&system);
    let (c, _) = system.chain_by_name("sigma_c").expect("case-study chain");
    ks.iter()
        .map(|&k| {
            analysis
                .deadline_miss_model(c, k)
                .expect("σc has a deadline")
        })
        .collect()
}

/// Outcome of Experiment 2 (Figure 5): dmm(10) histograms over random
/// priority assignments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Figure5Outcome {
    /// Histogram of `dmm_c(10)` values → number of assignments.
    pub histogram_c: BTreeMap<u64, usize>,
    /// Histogram of `dmm_d(10)` values → number of assignments.
    pub histogram_d: BTreeMap<u64, usize>,
    /// Number of assignments where σc is schedulable (dmm = 0).
    pub schedulable_c: usize,
    /// Number of assignments where σd is schedulable (dmm = 0).
    pub schedulable_d: usize,
    /// Number of assignments analyzed.
    pub rounds: usize,
}

/// Experiment 2 (Figure 5): `rounds` uniformly random priority
/// assignments of the 13 case-study tasks; `dmm(10)` for σc and σd.
pub fn figure5(seed: u64, rounds: usize) -> Figure5Outcome {
    let base = case_study();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let assignments = priority_permutations(&mut rng, CASE_STUDY_TASK_COUNT, rounds);
    let mut histogram_c = BTreeMap::new();
    let mut histogram_d = BTreeMap::new();
    let (mut schedulable_c, mut schedulable_d) = (0usize, 0usize);
    for priorities in &assignments {
        let system = base.with_priorities(priorities);
        let analysis = ChainAnalysis::new(&system);
        for (name, histogram, schedulable) in [
            ("sigma_c", &mut histogram_c, &mut schedulable_c),
            ("sigma_d", &mut histogram_d, &mut schedulable_d),
        ] {
            let (id, _) = system.chain_by_name(name).expect("case-study chain");
            let bound = analysis
                .deadline_miss_model(id, 10)
                .expect("deadline present")
                .bound;
            *histogram.entry(bound).or_insert(0) += 1;
            if bound == 0 {
                *schedulable += 1;
            }
        }
    }
    Figure5Outcome {
        histogram_c,
        histogram_d,
        schedulable_c,
        schedulable_d,
        rounds,
    }
}

/// Outcome of the simulation-based soundness validation (not in the
/// paper, see EXPERIMENTS.md).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationRow {
    /// Chain name.
    pub chain: String,
    /// Scenario label.
    pub scenario: String,
    /// Largest simulated latency.
    pub observed_latency: Option<Time>,
    /// Analytic worst-case latency.
    pub analytic_latency: Option<Time>,
    /// Largest simulated miss count in any window of `k` activations.
    pub observed_misses: usize,
    /// Analytic `dmm(k)`.
    pub dmm_bound: u64,
    /// The window length `k`.
    pub k: u64,
}

/// Simulates the case study under maximum-rate and adversarially aligned
/// traces and compares observations against the analytic bounds.
pub fn validate_case_study(horizon: Time, k: u64) -> Vec<ValidationRow> {
    let system = case_study();
    let analysis = ChainAnalysis::new(&system);
    let scenarios: Vec<(&str, TraceSet)> = vec![
        ("max-rate", TraceSet::max_rate(&system, horizon)),
        (
            "typical",
            TraceSet::max_rate_without_overload(&system, horizon),
        ),
        ("adversarial", adversarial_aligned_traces(&system, horizon)),
    ];
    let mut rows = Vec::new();
    for (label, traces) in &scenarios {
        let result = Simulation::new(&system).run(traces);
        for name in ["sigma_c", "sigma_d"] {
            let (id, _) = system.chain_by_name(name).expect("case-study chain");
            let stats = result.chain(id);
            rows.push(ValidationRow {
                chain: name.to_string(),
                scenario: label.to_string(),
                observed_latency: stats.max_latency(),
                analytic_latency: analysis
                    .try_worst_case_latency(id)
                    .expect("valid id")
                    .map(|r| r.worst_case_latency),
                observed_misses: stats.max_misses_in_window(k as usize),
                dmm_bound: analysis
                    .deadline_miss_model(id, k)
                    .expect("deadline present")
                    .bound,
                k,
            });
        }
    }
    rows
}

/// Checks every validation row for soundness: observation ≤ bound.
pub fn validation_is_sound(rows: &[ValidationRow]) -> bool {
    rows.iter().all(|r| {
        let latency_ok = match (r.observed_latency, r.analytic_latency) {
            (Some(obs), Some(bound)) => obs <= bound,
            (_, None) => true, // unbounded analysis dominates anything
            (None, _) => true, // nothing observed
        };
        latency_ok && (r.observed_misses as u64) <= r.dmm_bound
    })
}

/// One row of the tightness report: analytic upper bound vs falsified
/// empirical lower bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TightnessRow {
    /// Chain name.
    pub chain: String,
    /// Analytic worst-case latency.
    pub wcl_upper: Option<Time>,
    /// Best falsified latency (lower bound on the true worst case).
    pub wcl_lower: Option<Time>,
    /// Analytic `dmm(k)`.
    pub dmm_upper: u64,
    /// Best falsified window miss count.
    pub dmm_lower: usize,
    /// Window length `k`.
    pub k: u64,
    /// Scenario achieving the miss lower bound.
    pub scenario: String,
}

/// Brackets the true worst case of σc and σd between the analytic upper
/// bounds and falsification-derived lower bounds.
pub fn tightness(k: u64, horizon: Time, rounds: usize) -> Vec<TightnessRow> {
    use twca_sim::{falsify, FalsificationConfig};
    let system = case_study();
    let analysis = ChainAnalysis::new(&system);
    ["sigma_c", "sigma_d"]
        .iter()
        .map(|name| {
            let (id, _) = system.chain_by_name(name).expect("case-study chain");
            let outcome = falsify(
                &system,
                id,
                FalsificationConfig {
                    horizon,
                    random_rounds: rounds,
                    k: k as usize,
                    seed: 2017,
                },
            );
            TightnessRow {
                chain: name.to_string(),
                wcl_upper: analysis
                    .try_worst_case_latency(id)
                    .expect("valid id")
                    .map(|r| r.worst_case_latency),
                wcl_lower: outcome.worst_latency,
                dmm_upper: analysis
                    .deadline_miss_model(id, k)
                    .expect("deadline present")
                    .bound,
                dmm_lower: outcome.worst_misses,
                k,
                scenario: outcome.miss_scenario,
            }
        })
        .collect()
}

/// One row of the chain-aware vs collapsed-baseline comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollapseRow {
    /// Chain name.
    pub chain: String,
    /// Chain-aware worst-case latency (Theorem 2).
    pub chain_wcl: Option<Time>,
    /// Worst-case response time of the *collapsed* baseline: the chain as
    /// one task at its minimum priority, every other chain as one task at
    /// its maximum priority (sound, maximally pessimistic flattening).
    pub collapsed_wcrt: Option<Time>,
}

/// Compares the chain-aware latency analysis against a sound collapse to
/// independent tasks on the case study — the quantitative version of the
/// paper's motivation ("timing analysis with task chains is notoriously
/// difficult; flattening loses precision").
pub fn collapsed_baseline() -> Vec<CollapseRow> {
    let system = case_study();
    let analysis = ChainAnalysis::new(&system);
    let mut rows = Vec::new();
    for name in ["sigma_c", "sigma_d"] {
        let (id, _) = system.chain_by_name(name).expect("case-study chain");
        // Collapse: observed chain at its min priority, interferers at
        // their max priority, execution times summed.
        let tasks: Vec<IndependentTask> = system
            .iter()
            .map(|(other_id, chain)| {
                let priority = if other_id == id {
                    chain.min_priority().level()
                } else {
                    chain
                        .tasks()
                        .iter()
                        .map(|t| t.priority().level())
                        .max()
                        .expect("non-empty chain")
                };
                IndependentTask::new(
                    chain.name(),
                    priority,
                    chain.total_wcet(),
                    chain.activation().clone(),
                )
            })
            .collect();
        let index = system.iter().position(|(i, _)| i == id).expect("present");
        rows.push(CollapseRow {
            chain: name.to_string(),
            chain_wcl: analysis
                .try_worst_case_latency(id)
                .expect("valid id")
                .map(|r| r.worst_case_latency),
            collapsed_wcrt: response_time_analysis(&tasks, index)
                .ok()
                .map(|r| r.worst_case_response_time),
        });
    }
    rows
}

/// A case-study system scaled `factor`× in chain count, for runtime
/// scaling benchmarks: `factor` copies of the case-study chains with
/// disjoint priority bands. Periods are stretched by `factor` so the
/// total utilization stays constant and every busy window still closes.
pub fn scaled_case_study(factor: usize) -> System {
    use twca_model::{ChainKind, SystemBuilder};
    assert!(factor >= 1);
    let f = factor as Time;
    let mut builder = SystemBuilder::new();
    for i in 0..factor {
        let base = (i * 13) as u32;
        builder = builder
            .chain(format!("d{i}"))
            .periodic(200 * f)
            .expect("static period")
            .deadline(200 * f)
            .kind(ChainKind::Synchronous)
            .task(format!("d1_{i}"), base + 11, 38)
            .task(format!("d2_{i}"), base + 10, 6)
            .task(format!("d3_{i}"), base + 9, 27)
            .task(format!("d4_{i}"), base + 5, 6)
            .task(format!("d5_{i}"), base + 2, 38)
            .done()
            .chain(format!("c{i}"))
            .periodic(200 * f)
            .expect("static period")
            .deadline(200 * f)
            .kind(ChainKind::Synchronous)
            .task(format!("c1_{i}"), base + 8, 4)
            .task(format!("c2_{i}"), base + 7, 6)
            .task(format!("c3_{i}"), base + 1, 41)
            .done()
            .chain(format!("b{i}"))
            .sporadic(600 * f)
            .expect("static distance")
            .overload()
            .task(format!("b1_{i}"), base + 13, 10)
            .task(format!("b2_{i}"), base + 12, 10)
            .task(format!("b3_{i}"), base + 6, 10)
            .done()
            .chain(format!("a{i}"))
            .sporadic(700 * f)
            .expect("static distance")
            .overload()
            .task(format!("a1_{i}"), base + 4, 10)
            .task(format!("a2_{i}"), base + 3, 10)
            .done();
    }
    builder.build().expect("well-formed scaled system")
}

/// One row of the distributed-pipeline experiment: a chain site with its
/// converged worst-case latency and outgoing response jitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistRow {
    /// `resource/chain` label.
    pub site: String,
    /// Converged worst-case latency, `None` if the busy window diverged.
    pub wcl: Option<Time>,
    /// Response jitter propagated downstream (zero for non-sources).
    pub jitter_out: Time,
}

/// Outcome of the distributed-pipeline experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistOutcome {
    /// Per-site converged results.
    pub rows: Vec<DistRow>,
    /// Analytic end-to-end latency bound along the pipeline path.
    pub path_bound: Time,
    /// Maximum end-to-end latency observed by the trace-propagating
    /// simulation.
    pub observed: Option<Time>,
    /// Sweeps until the holistic iteration converged.
    pub sweeps: usize,
    /// End-to-end `dmm(10)` along the path.
    pub path_dmm10: u64,
}

/// A pipeline of `stages` resources: the paper's case study feeds σc
/// into `stages − 1` downstream single-chain ECUs of alternating
/// weights. Used by the `dist` experiment and the `dist_scaling` bench.
///
/// # Panics
///
/// Panics if `stages == 0`.
pub fn distributed_pipeline(stages: usize) -> twca_dist::DistributedSystem {
    use twca_dist::DistributedSystemBuilder;
    use twca_model::SystemBuilder;
    assert!(stages >= 1, "need at least one stage");
    let mut builder = DistributedSystemBuilder::new().resource("ecu0", case_study());
    let mut previous = ("ecu0".to_owned(), "sigma_c".to_owned());
    for i in 1..stages {
        let name = format!("ecu{i}");
        let chain = format!("stage{i}");
        let wcet = 10 + 10 * ((i as Time) % 3);
        let system = SystemBuilder::new()
            .chain(&chain)
            .periodic(200)
            .expect("static period")
            .deadline(200)
            .task(format!("{chain}_t"), 1, wcet)
            .done()
            .build()
            .expect("well-formed stage");
        builder = builder.resource(&name, system).link(
            (previous.0.clone(), previous.1.clone()),
            (name.clone(), chain.clone()),
        );
        previous = (name, chain);
    }
    builder.build().expect("well-formed pipeline")
}

/// Runs the distributed experiment on a pipeline of `stages` resources:
/// holistic analysis, end-to-end path bound, and a simulation
/// cross-check.
///
/// # Panics
///
/// Panics if the holistic iteration fails on the (well-formed) pipeline.
pub fn distributed_experiment(stages: usize, horizon: Time) -> DistOutcome {
    use twca_dist::{analyze, propagate_simulation, DistOptions, DistPath, StimulusKind};
    let dist = distributed_pipeline(stages);
    let results = analyze(&dist, DistOptions::default()).expect("pipeline converges");

    let mut rows = Vec::new();
    for site in dist.sites() {
        let resource = dist.resource(site.resource());
        let chain = resource.system().chain(site.chain());
        rows.push(DistRow {
            site: format!("{}/{}", resource.name(), chain.name()),
            wcl: results.worst_case_latency(site),
            jitter_out: results.response_jitter(site),
        });
    }

    let mut hops = vec![dist.site("ecu0", "sigma_c").expect("site exists")];
    for i in 1..stages {
        hops.push(
            dist.site(&format!("ecu{i}"), &format!("stage{i}"))
                .expect("site exists"),
        );
    }
    let path = DistPath::new(&dist, hops).expect("pipeline path");
    let path_bound = path.latency(&results).expect("bounded path");
    let path_dmm10 = path
        .deadline_miss_model(&results, 10)
        .expect("dmm computable");
    let observed = propagate_simulation(&dist, horizon, StimulusKind::MaxRate)
        .expect("pipeline order exists")
        .max_path_latency(&path);

    DistOutcome {
        rows,
        path_bound,
        observed,
        sweeps: results.sweeps(),
        path_dmm10,
    }
}

/// Assembles every experiment into one Markdown document — the
/// regenerable core of `EXPERIMENTS.md`.
///
/// `fig5_rounds` controls the Experiment-2 sample size (the paper uses
/// 1000); smaller values keep smoke tests fast.
pub fn markdown_report(fig5_rounds: usize) -> String {
    use twca_report::{Align, Document, Histogram, Table};

    let mut doc = Document::new("TWCA task-chain experiments (regenerated)");

    // Table I.
    doc.section("Experiment 1 / Table I — worst-case latencies")
        .paragraph("Paper reference: WCL(σc) = 331, WCL(σd) = 175, D = 200.");
    let mut t1 = Table::new();
    t1.column("chain", Align::Left);
    t1.column("WCL", Align::Right);
    t1.column("typical WCL", Align::Right);
    t1.column("D", Align::Right);
    for row in table1() {
        t1.row([
            row.chain.clone(),
            row.wcl.map_or("unbounded".into(), |v| v.to_string()),
            row.typical_wcl
                .map_or("unbounded".into(), |v| v.to_string()),
            row.deadline.to_string(),
        ]);
    }
    doc.table(&t1);

    // Table II.
    doc.section("Experiment 1 / Table II — dmm_c(k)").paragraph(
        "Paper reference: dmm_c(3) = 3, dmm_c(76) = 4, dmm_c(250) = 5 \
         (the k = 76/250 values are not derivable from the paper's \
         formulas; see DESIGN.md §4).",
    );
    let mut t2 = Table::new();
    t2.column("k", Align::Right);
    t2.column("dmm", Align::Right);
    t2.column("N_b", Align::Right);
    t2.column("packed windows", Align::Right);
    t2.column("unschedulable combos", Align::Right);
    for dmm in table2(&[3, 10, 76, 250]) {
        t2.row([
            dmm.k.to_string(),
            dmm.bound.to_string(),
            dmm.misses_per_window.to_string(),
            dmm.packed_windows.to_string(),
            dmm.unschedulable_combinations.to_string(),
        ]);
    }
    doc.table(&t2);

    // Figure 5.
    let outcome = figure5(2017, fig5_rounds);
    doc.section("Experiment 2 / Figure 5 — dmm(10) over random priorities")
        .paragraph(format!(
            "{} random priority assignments (paper: 1000). σc schedulable \
             {} times (paper: 633/1000), σd schedulable {} times \
             (paper: 307/1000).",
            outcome.rounds, outcome.schedulable_c, outcome.schedulable_d
        ));
    let hist_c: Histogram = outcome
        .histogram_c
        .iter()
        .flat_map(|(&bound, &count)| std::iter::repeat_n(bound, count))
        .collect();
    let hist_d: Histogram = outcome
        .histogram_d
        .iter()
        .flat_map(|(&bound, &count)| std::iter::repeat_n(bound, count))
        .collect();
    doc.paragraph("σc:").histogram(&hist_c, 50);
    doc.paragraph("σd:").histogram(&hist_d, 50);

    // Distributed extension.
    let dist = distributed_experiment(3, 60_000);
    doc.section("Distributed extension — case study feeding a pipeline")
        .paragraph(format!(
            "Holistic analysis converged in {} sweeps; end-to-end bound {} \
             vs observed {}; path dmm(10) = {}.",
            dist.sweeps,
            dist.path_bound,
            dist.observed.map_or("-".into(), |v| v.to_string()),
            dist.path_dmm10
        ));
    let mut td = Table::new();
    td.column("site", Align::Left);
    td.column("WCL", Align::Right);
    td.column("jitter out", Align::Right);
    for row in &dist.rows {
        td.row([
            row.site.clone(),
            row.wcl.map_or("unbounded".into(), |v| v.to_string()),
            row.jitter_out.to_string(),
        ]);
    }
    doc.table(&td);

    doc.to_markdown()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_report_contains_every_experiment() {
        let md = markdown_report(25);
        assert!(md.contains("Table I"));
        assert!(md.contains("| sigma_c | 331 |"));
        assert!(md.contains("Table II"));
        assert!(md.contains("Figure 5"));
        assert!(md.contains("Distributed extension"));
        assert!(md.contains("ecu0/sigma_c"));
    }

    #[test]
    fn distributed_experiment_is_sound_and_stable() {
        let outcome = distributed_experiment(3, 30_000);
        assert_eq!(outcome.rows.len(), 6);
        // ecu0 is the untouched case study.
        let c = outcome
            .rows
            .iter()
            .find(|r| r.site == "ecu0/sigma_c")
            .expect("case-study row present");
        assert_eq!(c.wcl, Some(331));
        assert_eq!(c.jitter_out, 331);
        let observed = outcome.observed.expect("pipeline produced instances");
        assert!(observed <= outcome.path_bound);
        assert!(outcome.sweeps >= 2);
    }

    #[test]
    fn distributed_pipeline_shape() {
        let d = distributed_pipeline(4);
        assert_eq!(d.resources().len(), 4);
        assert_eq!(d.links().len(), 3);
    }

    #[test]
    fn table1_matches_paper() {
        let rows = table1();
        assert_eq!(rows[0].wcl, Some(331));
        assert_eq!(rows[1].wcl, Some(175));
        assert_eq!(rows[0].typical_wcl, Some(166));
    }

    #[test]
    fn table2_shape() {
        let rows = table2(&[3, 76, 250]);
        assert_eq!(rows[0].bound, 3);
        assert!(rows[1].bound >= rows[0].bound);
        assert!(rows[2].bound >= rows[1].bound);
    }

    #[test]
    fn figure5_small_run_is_consistent() {
        let outcome = figure5(42, 25);
        assert_eq!(outcome.rounds, 25);
        let total_c: usize = outcome.histogram_c.values().sum();
        assert_eq!(total_c, 25);
        assert_eq!(
            outcome.schedulable_c,
            outcome.histogram_c.get(&0).copied().unwrap_or(0)
        );
    }

    #[test]
    fn validation_rows_are_sound() {
        let rows = validate_case_study(50_000, 10);
        assert!(validation_is_sound(&rows), "{rows:#?}");
    }

    #[test]
    fn tightness_rows_bracket_the_truth() {
        for row in tightness(10, 50_000, 4) {
            if let (Some(lower), Some(upper)) = (row.wcl_lower, row.wcl_upper) {
                assert!(
                    lower <= upper,
                    "{}: falsified latency above bound",
                    row.chain
                );
            }
            assert!(
                (row.dmm_lower as u64) <= row.dmm_upper,
                "{}: falsified misses above bound",
                row.chain
            );
        }
    }

    #[test]
    fn collapsed_baseline_is_never_tighter() {
        for row in collapsed_baseline() {
            let (chain, collapsed) = (
                row.chain_wcl.expect("bounded"),
                row.collapsed_wcrt.expect("bounded"),
            );
            assert!(
                collapsed >= chain,
                "{}: collapse {collapsed} tighter than chain-aware {chain}?",
                row.chain
            );
        }
    }

    #[test]
    fn collapse_loses_precision_on_sigma_d() {
        // σd benefits from segment reasoning: the chain analysis charges
        // σc only its critical segment (10), the collapse charges full
        // instances of σc.
        let rows = collapsed_baseline();
        let d = rows.iter().find(|r| r.chain == "sigma_d").unwrap();
        assert_eq!(d.chain_wcl, Some(175));
        assert!(d.collapsed_wcrt.unwrap() > 175);
    }

    #[test]
    fn scaled_system_shape() {
        let s = scaled_case_study(3);
        assert_eq!(s.chains().len(), 12);
        assert_eq!(s.task_count(), 39);
    }
}
