//! In-process JSON benchmark runner behind `twca bench`.
//!
//! Criterion drives the statistical deep-dives (`cargo bench`); this
//! runner exists so the perf trajectory of the hot paths is a
//! *committed artifact* (`BENCH_combinations.json`) and a CI gate: it
//! re-measures the same workloads in seconds, renders them as JSON, and
//! [`check_against`] fails when a benchmark regresses more than the
//! tolerance against the committed baseline — after normalizing the
//! machines against each other through the `calibration/spin` entry.
//!
//! The headline metric is the **combination engine**: the lazy
//! dominance-pruned enumerator vs the retained materialized reference,
//! on the Definition 9 classification stage of `overload-heavy` stress
//! systems (the packing solve downstream is engine-independent work and
//! would only dilute the comparison).

use std::time::Instant;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use twca_api::{Json, Session};
use twca_chains::{
    busy_times, latency_analysis, typical_slack, AnalysisContext, AnalysisOptions, CombinationSet,
    DmmSweep, OverloadMode, PreparedCombinations, SolverMode,
};
use twca_dist::DistributedSystemBuilder;
use twca_gen::{
    random_distributed, random_stress_system, wide_throughput_system, RandomDistConfig,
    StressProfile,
};
use twca_model::{case_study, ChainId, ChainKind, System, SystemBuilder};
use twca_sim::{SimArena, SimEngineMode, Simulation, TraceSet};

/// Knobs of one runner invocation.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Seed of every generated workload.
    pub seed: u64,
    /// Fewer timed passes per benchmark (the CI smoke setting). The
    /// *workloads* are identical in both modes, so quick runs remain
    /// directly comparable against a full-mode committed baseline.
    pub quick: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            seed: 42,
            quick: false,
        }
    }
}

/// One measured benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEntry {
    /// Stable identifier (`group/variant`).
    pub id: String,
    /// Best (minimum) wall time of one workload pass, in nanoseconds —
    /// the noise-robust estimator on shared machines: scheduling and
    /// cache interference only ever add time.
    pub best_ns: u64,
    /// Number of timed passes the minimum was taken over.
    pub samples: usize,
}

/// The full report `twca bench` renders and CI diffs.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Seed the workloads were generated from.
    pub seed: u64,
    /// Whether the quick (CI) sample counts were used (the workloads
    /// themselves are identical either way).
    pub quick: bool,
    /// Every measured benchmark.
    pub entries: Vec<BenchEntry>,
    /// Materialized-vs-lazy best-time ratio on the `overload-heavy`
    /// combination-engine stage (> 1 means the lazy engine is faster).
    /// Zero in reports of suites that do not measure it.
    pub overload_heavy_speedup: f64,
    /// Sustained throughput of the `service_saturation` workload
    /// (service suite only; the regression gate runs on the
    /// `service_saturation/*_ns` entries, this is the headline number).
    pub service_requests_per_sec: Option<f64>,
}

impl BenchReport {
    /// The entry with the given id, if measured.
    pub fn entry(&self, id: &str) -> Option<&BenchEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// The `slow / fast` best-time ratio between two measured entries
    /// (`> 1` means `fast` is faster), when both exist.
    pub fn speedup(&self, fast: &str, slow: &str) -> Option<f64> {
        let fast_ns = self.entry(fast)?.best_ns.max(1);
        let slow_ns = self.entry(slow)?.best_ns;
        Some(slow_ns as f64 / fast_ns as f64)
    }

    /// Renders the wire/artifact form (`BENCH_combinations.json`).
    pub fn to_json(&self) -> Json {
        let mut json = Json::Object(vec![
            ("schema".to_owned(), Json::UInt(1)),
            ("seed".to_owned(), Json::UInt(self.seed)),
            ("quick".to_owned(), Json::Bool(self.quick)),
            (
                "benchmarks".to_owned(),
                Json::Array(
                    self.entries
                        .iter()
                        .map(|e| {
                            Json::Object(vec![
                                ("id".to_owned(), Json::Str(e.id.clone())),
                                ("best_ns".to_owned(), Json::UInt(e.best_ns)),
                                ("samples".to_owned(), Json::UInt(e.samples as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "overload_heavy_speedup".to_owned(),
                Json::Str(format!("{:.2}", self.overload_heavy_speedup)),
            ),
        ]);
        if let Some(rate) = self.service_requests_per_sec {
            if let Json::Object(members) = &mut json {
                members.push((
                    "service_requests_per_sec".to_owned(),
                    Json::Str(format!("{rate:.0}")),
                ));
            }
        }
        json
    }

    /// Parses a report previously rendered by [`BenchReport::to_json`].
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed field.
    pub fn from_json(value: &Json) -> Result<BenchReport, String> {
        let obj = value.as_object().ok_or("report must be an object")?;
        let field = |name: &str| {
            obj.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{name}`"))
        };
        let seed = field("seed")?.as_u64().ok_or("`seed` must be an integer")?;
        let quick = matches!(field("quick")?, Json::Bool(true));
        let speedup: f64 = field("overload_heavy_speedup")?
            .as_str()
            .ok_or("`overload_heavy_speedup` must be a string")?
            .parse()
            .map_err(|_| "`overload_heavy_speedup` must parse as a number")?;
        let service_requests_per_sec = match field("service_requests_per_sec") {
            Err(_) => None,
            Ok(value) => Some(
                value
                    .as_str()
                    .ok_or("`service_requests_per_sec` must be a string")?
                    .parse::<f64>()
                    .map_err(|_| "`service_requests_per_sec` must parse as a number")?,
            ),
        };
        let mut entries = Vec::new();
        let benches = field("benchmarks")?
            .as_array()
            .ok_or("`benchmarks` must be an array")?;
        for bench in benches {
            let bench = bench
                .as_object()
                .ok_or("each benchmark must be an object")?;
            let get = |name: &str| {
                bench
                    .iter()
                    .find(|(k, _)| k == name)
                    .map(|(_, v)| v)
                    .ok_or_else(|| format!("benchmark missing `{name}`"))
            };
            entries.push(BenchEntry {
                id: get("id")?
                    .as_str()
                    .ok_or("benchmark `id` must be a string")?
                    .to_owned(),
                best_ns: get("best_ns")?
                    .as_u64()
                    .ok_or("`best_ns` must be an integer")?,
                samples: get("samples")?
                    .as_u64()
                    .ok_or("`samples` must be an integer")? as usize,
            });
        }
        Ok(BenchReport {
            seed,
            quick,
            entries,
            overload_heavy_speedup: speedup,
            service_requests_per_sec,
        })
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench: seed {} ({} workloads)",
            self.seed,
            if self.quick { "quick" } else { "full" }
        );
        let _ = writeln!(out, "{:<44} {:>14} {:>8}", "benchmark", "best", "samples");
        for entry in &self.entries {
            let _ = writeln!(
                out,
                "{:<44} {:>14} {:>8}",
                entry.id,
                format_ns(entry.best_ns),
                entry.samples
            );
        }
        if self.entry("overload_heavy/combinations/lazy").is_some() {
            let _ = writeln!(
                out,
                "overload-heavy combination engine: lazy is {:.2}x faster than materialized",
                self.overload_heavy_speedup
            );
        }
        if let Some(rate) = self.service_requests_per_sec {
            let _ = writeln!(
                out,
                "service_saturation: {rate:.0} request(s)/sec sustained"
            );
        }
        for (label, fast, slow) in SOLVER_SPEEDUPS {
            if let Some(speedup) = self.speedup(fast, slow) {
                let _ = writeln!(
                    out,
                    "{label}: scheduling-point path is {speedup:.2}x faster than the iterative \
                     reference"
                );
            }
        }
        if let Some(speedup) = self.speedup("sim_throughput/event-queue", "sim_throughput/classic")
        {
            let _ = writeln!(
                out,
                "sim_throughput: event-queue core is {speedup:.2}x faster than the classic engine"
            );
        }
        if let Some(speedup) = self.speedup(
            "delta_reanalysis/one_task_edit",
            "delta_reanalysis/cold_full",
        ) {
            let _ = writeln!(
                out,
                "delta_reanalysis: a one-task edit re-analyzes {speedup:.2}x faster than a cold \
                 full pass"
            );
        }
        out
    }
}

/// The solver-stage speedup pairs reported by [`BenchReport::render`]
/// and gated by [`check_against`]: `(label, fast id, slow id)`.
const SOLVER_SPEEDUPS: [(&str, &str, &str); 4] = [
    (
        "busy_window",
        "busy_window/scheduling-points",
        "busy_window/iterative",
    ),
    (
        "latency_sweep",
        "latency_sweep/scheduling-points",
        "latency_sweep/iterative",
    ),
    (
        "holistic_scaling/linear",
        "holistic_scaling/linear/worklist",
        "holistic_scaling/linear/full-sweeps",
    ),
    (
        "holistic_scaling/star",
        "holistic_scaling/star/worklist",
        "holistic_scaling/star/full-sweeps",
    ),
];

/// Contract floors for the gated speedup pairs: the deep-pipeline
/// worklist must keep ≥ 5x over the full-sweep reference, the
/// busy-window and latency stages ≥ 2x, the event-queue simulation
/// core ≥ 10x jobs/sec over the retained classic chain-scan engine on
/// the wide throughput workload, and memoized delta re-analysis of a
/// one-task WCET edit ≥ 10x over the cold full holistic pass on the
/// 100-resource pipeline. (The star shape is measured and
/// regression-gated per entry, but its headline win is thread fan-out,
/// which single-core CI runners cannot reproduce — no ratio floor
/// there.)
const SPEEDUP_CONTRACTS: [(&str, &str, f64); 5] = [
    (
        "busy_window/scheduling-points",
        "busy_window/iterative",
        2.0,
    ),
    (
        "latency_sweep/scheduling-points",
        "latency_sweep/iterative",
        2.0,
    ),
    (
        "holistic_scaling/linear/worklist",
        "holistic_scaling/linear/full-sweeps",
        5.0,
    ),
    ("sim_throughput/event-queue", "sim_throughput/classic", 10.0),
    (
        "delta_reanalysis/one_task_edit",
        "delta_reanalysis/cold_full",
        10.0,
    ),
];

/// Cap contracts: the first entry must stay within `cap` × the second
/// (the inverse of a speedup floor). Durable `store_put` journaling —
/// render, frame, checksum, `write(2)` — must cost at most 1.5× the
/// in-memory put it shadows, or the durability layer has become the
/// bottleneck of every store-backed deployment.
const OVERHEAD_CAPS: [(&str, &str, f64); 1] =
    [("persist/put_journaled", "persist/put_in_memory", 1.5)];

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Times one workload: runs it `samples` times, returns the minimum
/// pass duration in nanoseconds (interference only ever adds time, so
/// the minimum is the stable estimator on a shared machine).
fn best_ns(samples: usize, mut pass: impl FnMut()) -> u64 {
    (0..samples)
        .map(|_| {
            let start = Instant::now();
            pass();
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
        .min()
        .expect("at least one sample")
}

/// The batch-tuned options every workload analyzes under (random stress
/// systems routinely exceed utilization 1; tight divergence limits keep
/// the latency stage from dominating).
fn bench_options() -> AnalysisOptions {
    AnalysisOptions {
        horizon: 2_000_000,
        max_q: 20_000,
        ..AnalysisOptions::default()
    }
}

/// A victim chain plus `overloads` overload chains, each with
/// `segments_per_chain` active segments — the ablation shape shared
/// with `cargo bench ablation_combinations`.
pub fn system_with_overloads(overloads: usize, segments_per_chain: usize) -> System {
    let mut builder = SystemBuilder::new()
        .chain("victim")
        .periodic(1_000)
        .expect("static period")
        .deadline(1_000)
        .kind(ChainKind::Synchronous)
        .task("v1", 50, 10)
        .task("v2", 1, 10)
        .done();
    let mut prio = 100u32;
    for o in 0..overloads {
        let mut cb = builder
            .chain(format!("over_{o}"))
            .sporadic(50_000)
            .expect("static distance")
            .overload();
        for s in 0..segments_per_chain {
            cb = cb.task(format!("o{o}_hi{s}"), prio, 5);
            prio += 1;
            if s + 1 < segments_per_chain {
                cb = cb.task(format!("o{o}_lo{s}"), 0, 1);
            }
        }
        builder = cb.done();
    }
    builder.build().expect("well-formed")
}

/// One prepared Definition 9 site: everything the combination-engine
/// stage needs, with the latency stage precomputed outside the timed
/// region.
struct CombinationSite {
    system: System,
    chain: ChainId,
    k_b: u64,
    slack: i128,
}

/// Collects the Definition 9 sites of a batch of systems.
fn combination_sites(systems: Vec<System>, options: AnalysisOptions) -> Vec<CombinationSite> {
    let mut sites = Vec::new();
    for system in systems {
        let ctx = AnalysisContext::new(&system);
        let mut found = Vec::new();
        for (id, chain) in system.iter() {
            if chain.deadline().is_none() {
                continue;
            }
            let Some(full) = latency_analysis(&ctx, id, OverloadMode::Include, options) else {
                continue;
            };
            let k_b = full.busy_window_activations;
            let slack = typical_slack(&ctx, id, k_b);
            if slack < 0 {
                continue;
            }
            // Keep only sites *both* engines can run: a non-empty
            // combination space whose product stays inside the
            // materialized reference's explicit bound (the lazy engine
            // alone would also handle bigger products, but then there
            // would be nothing to compare against).
            match PreparedCombinations::prepare(&ctx, id, k_b, options) {
                Ok(prepared)
                    if prepared.total_combinations() > 0
                        && prepared.total_combinations() < options.max_combinations as u128 =>
                {
                    found.push((id, k_b, slack));
                }
                _ => {}
            }
        }
        for (chain, k_b, slack) in found {
            sites.push(CombinationSite {
                system: system.clone(),
                chain,
                k_b,
                slack,
            });
        }
    }
    sites
}

/// One lazy-engine pass over the sites: enumerate per-chain options,
/// count the unschedulable set, extract the minimal antichain — the
/// exact classification work `DmmSweep::prepare` performs.
fn lazy_pass(sites: &[CombinationSite], options: AnalysisOptions) -> u128 {
    let mut acc: u128 = 0;
    for site in sites {
        let ctx = AnalysisContext::new(&site.system);
        let prepared = PreparedCombinations::prepare(&ctx, site.chain, site.k_b, options)
            .expect("sites were prevalidated");
        acc = acc.wrapping_add(prepared.count_unschedulable(site.slack));
        acc = acc.wrapping_add(prepared.minimal_unschedulable(site.slack).len() as u128);
    }
    acc
}

/// One materialized-reference pass: the full Definition 9 product, the
/// slack filter, and the dominance reduction its raw item list forces
/// on the packing layer downstream.
fn materialized_pass(sites: &[CombinationSite], options: AnalysisOptions) -> u128 {
    let mut acc: u128 = 0;
    for site in sites {
        let ctx = AnalysisContext::new(&site.system);
        let set =
            CombinationSet::enumerate(&ctx, site.chain, options).expect("sites were prevalidated");
        let multipliers = set.window_multipliers(&ctx, site.chain, site.k_b);
        let items: Vec<Vec<usize>> = set
            .unschedulable_scaled(site.slack, &multipliers)
            .map(|c| c.members.clone())
            .collect();
        let n = items.len();
        let is_subset = |a: &[usize], b: &[usize]| a.iter().all(|r| b.binary_search(r).is_ok());
        let minimal = (0..n)
            .filter(|&i| {
                !(0..n).any(|j| {
                    j != i
                        && is_subset(&items[j], &items[i])
                        && (items[j].len() < items[i].len() || j < i)
                })
            })
            .count();
        acc = acc.wrapping_add(n as u128).wrapping_add(minimal as u128);
    }
    acc
}

/// Forces a busy-window solver onto shared options.
fn with_solver(options: AnalysisOptions, solver: SolverMode) -> AnalysisOptions {
    AnalysisOptions { solver, ..options }
}

/// One busy-window pass: the Theorem 1 ladder `B(1..=48)` for every
/// chain of every context, full worst-case mode — the innermost stage
/// of every latency query, in the ladder form all consumers (window
/// search, miss models, weakly-hard checks) invoke it.
fn busy_window_pass(ctxs: &[AnalysisContext<'_>], options: AnalysisOptions) -> u64 {
    let mut acc = 0u64;
    for ctx in ctxs {
        for (id, _) in ctx.system().iter() {
            for busy in busy_times(ctx, id, 48, OverloadMode::Include, options)
                .into_iter()
                .flatten()
            {
                acc = acc.wrapping_add(busy);
            }
        }
    }
    acc
}

/// One latency-sweep pass: whole Theorem 2 analyses (full and typical
/// mode) for every chain of every context — the per-resource unit of
/// the batch and holistic pipelines.
fn latency_sweep_pass(ctxs: &[AnalysisContext<'_>], options: AnalysisOptions) -> u64 {
    let mut acc = 0u64;
    for ctx in ctxs {
        for (id, _) in ctx.system().iter() {
            for mode in [OverloadMode::Include, OverloadMode::Exclude] {
                if let Some(r) = latency_analysis(ctx, id, mode, options) {
                    acc = acc.wrapping_add(r.worst_case_latency);
                }
            }
        }
    }
    acc
}

/// The first seed whose generated distributed system converges under
/// both holistic drivers (so the timed workload measures fixed points,
/// not error paths), together with the system.
fn convergent_distributed(
    seed: u64,
    config: &RandomDistConfig,
    options: twca_dist::DistOptions,
) -> twca_dist::DistributedSystem {
    let mut iterative = options;
    iterative.chain_options.solver = SolverMode::Iterative;
    for attempt in 0..512u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(attempt));
        let dist = random_distributed(&mut rng, config).expect("built-in topology");
        if twca_dist::analyze(&dist, options).is_ok()
            && twca_dist::analyze(&dist, iterative).is_ok()
        {
            return dist;
        }
    }
    panic!("no convergent distributed workload within 512 seeds");
}

/// Runs the whole suite.
pub fn run_bench(config: &BenchConfig) -> BenchReport {
    let samples = if config.quick { 7 } else { 11 };
    let options = bench_options();
    let mut entries = Vec::new();

    // Machine-speed calibration, used by `check_against` to normalize
    // baselines recorded on other machines. Deliberately shaped like
    // the real benchmarks — allocation plus a data-dependent memory
    // walk — so cache/memory contention moves it the same way it moves
    // them (a pure ALU spin would not).
    entries.push(calibration_entry(samples));

    // Ablation grid: the synthetic shapes of `cargo bench
    // ablation_combinations`, classification stage only.
    for (overloads, segments) in [(2usize, 4usize), (4, 4)] {
        let sites = combination_sites(vec![system_with_overloads(overloads, segments)], options);
        // Micro workloads repeat per pass so a pass is long enough for
        // the 1.5x regression gate to be noise-immune.
        let id = format!("ablation_combinations/{overloads}x{segments}");
        entries.push(BenchEntry {
            id: format!("{id}/lazy"),
            best_ns: best_ns(samples, || {
                for _ in 0..50 {
                    std::hint::black_box(lazy_pass(&sites, options));
                }
            }),
            samples,
        });
        entries.push(BenchEntry {
            id: format!("{id}/materialized"),
            best_ns: best_ns(samples, || {
                for _ in 0..50 {
                    std::hint::black_box(materialized_pass(&sites, options));
                }
            }),
            samples,
        });
    }

    // The headline: the combination-engine stage on overload-heavy
    // stress systems.
    let count = 48;
    let systems: Vec<System> = (0..count)
        .map(|i| {
            let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(i));
            random_stress_system(&mut rng, StressProfile::OverloadHeavy).expect("built-in profile")
        })
        .collect();
    let sites = combination_sites(systems, options);
    let check_lazy = lazy_pass(&sites, options);
    let check_mat = materialized_pass(&sites, options);
    assert_eq!(
        check_lazy, check_mat,
        "the engines disagreed on the bench workload"
    );
    let lazy_ns = best_ns(samples, || {
        std::hint::black_box(lazy_pass(&sites, options));
    });
    let mat_ns = best_ns(samples, || {
        std::hint::black_box(materialized_pass(&sites, options));
    });
    entries.push(BenchEntry {
        id: "overload_heavy/combinations/lazy".to_owned(),
        best_ns: lazy_ns,
        samples,
    });
    entries.push(BenchEntry {
        id: "overload_heavy/combinations/materialized".to_owned(),
        best_ns: mat_ns,
        samples,
    });
    let overload_heavy_speedup = mat_ns as f64 / lazy_ns.max(1) as f64;

    // Table II reproduction: the case-study dmm curve, full pipeline.
    entries.push(BenchEntry {
        id: "table2_dmm".to_owned(),
        best_ns: best_ns(samples, || {
            for _ in 0..50 {
                let system = case_study();
                let ctx = AnalysisContext::new(&system);
                let (c, _) = system.chain_by_name("sigma_c").expect("case-study chain");
                let sweep =
                    DmmSweep::prepare(&ctx, c, AnalysisOptions::default()).expect("case study");
                std::hint::black_box(sweep.curve([1, 3, 10, 76, 250]));
            }
        }),
        samples,
    });

    // Batch engine throughput on one worker: the `twca batch` hot path
    // with the thread fan-out pinned to 1 so the single-threaded
    // calibration entry can normalize it across machines with different
    // core counts (parallel scaling itself is criterion's
    // `engine_scaling` bench, not a regression-gated number).
    let batch: Vec<System> = {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        (0..16)
            .map(|_| {
                random_stress_system(&mut rng, StressProfile::Baseline).expect("built-in profile")
            })
            .collect()
    };
    entries.push(BenchEntry {
        id: "engine_scaling".to_owned(),
        best_ns: best_ns(samples, || {
            for _ in 0..5 {
                let session = Session::new().with_options(options);
                let engine = twca_engine::BatchEngine::from_session(session)
                    .with_ks([1, 10, 100])
                    .with_threads(1);
                std::hint::black_box(engine.run(batch.clone()));
            }
        }),
        samples,
    });

    // Busy-window and latency-sweep solver comparison: the Theorem 1/2
    // stages on high-utilization and bursty stress systems (long busy
    // windows, expensive arrival curves), identical workloads per
    // solver. Contexts are prebuilt — both solvers share the segment
    // views; the scheduling-point side additionally amortizes its
    // interference plans across the passes, which is exactly the
    // production shape (one context, many queries).
    let stress_batch = |offset: u64, profiles: [StressProfile; 2]| -> Vec<System> {
        (0..24)
            .map(|i| {
                let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(offset + i));
                let profile = profiles[(i % 2) as usize];
                random_stress_system(&mut rng, profile).expect("built-in profile")
            })
            .collect()
    };
    let jump = with_solver(options, SolverMode::SchedulingPoints);
    let iterative = with_solver(options, SolverMode::Iterative);

    // Busy-window ladders on convergence-friendly profiles (baseline +
    // bursty): divergent chains cost one identical horizon-bounded solve
    // under either solver, so they only dilute the comparison — the
    // warm-started rungs on *closing* windows are the contested work.
    let busy_systems = stress_batch(1_000, [StressProfile::Baseline, StressProfile::Bursty]);
    let busy_ctxs: Vec<AnalysisContext<'_>> =
        busy_systems.iter().map(AnalysisContext::new).collect();
    assert_eq!(
        busy_window_pass(&busy_ctxs, jump),
        busy_window_pass(&busy_ctxs, iterative),
        "the busy-window solvers disagreed on the bench workload"
    );
    // Whole latency analyses on the heavy profiles (high-utilization +
    // bursty): long busy windows, large `K_b`, expensive arrival curves.
    let latency_systems = stress_batch(
        1_100,
        [StressProfile::HighUtilization, StressProfile::Bursty],
    );
    let latency_ctxs: Vec<AnalysisContext<'_>> =
        latency_systems.iter().map(AnalysisContext::new).collect();
    assert_eq!(
        latency_sweep_pass(&latency_ctxs, jump),
        latency_sweep_pass(&latency_ctxs, iterative),
        "the latency solvers disagreed on the bench workload"
    );
    for (id, solver_options) in [("scheduling-points", jump), ("iterative", iterative)] {
        entries.push(BenchEntry {
            id: format!("busy_window/{id}"),
            best_ns: best_ns(samples, || {
                std::hint::black_box(busy_window_pass(&busy_ctxs, solver_options));
            }),
            samples,
        });
        entries.push(BenchEntry {
            id: format!("latency_sweep/{id}"),
            best_ns: best_ns(samples, || {
                std::hint::black_box(latency_sweep_pass(&latency_ctxs, solver_options));
            }),
            samples,
        });
    }

    // Holistic scaling: the incremental worklist vs the full-sweep
    // reference on the two topologies the worklist exists for — a deep
    // linear pipeline (jitter crosses one hop per sweep, so the frontier
    // is one resource) and a wide star (the ready set fans out).
    let dist_options = twca_dist::DistOptions {
        chain_options: jump,
        ..twca_dist::DistOptions::default()
    };
    let mut dist_iterative = dist_options;
    dist_iterative.chain_options = iterative;
    // Bursty per-resource systems: long busy windows with expensive
    // arrival curves, the production-shaped load where both the
    // worklist and the scheduling-point chain solver earn their keep
    // (baseline-profile resources are so cheap that per-sweep
    // bookkeeping dominates either driver).
    for (shape, dist_config) in [
        (
            "linear",
            RandomDistConfig::deep_pipeline(10, StressProfile::Bursty),
        ),
        (
            "star",
            RandomDistConfig::wide_star(10, StressProfile::Bursty),
        ),
    ] {
        let dist =
            convergent_distributed(config.seed.wrapping_add(2_000), &dist_config, dist_options);
        let worklist = twca_dist::analyze(&dist, dist_options).expect("prevalidated");
        let reference = twca_dist::analyze(&dist, dist_iterative).expect("prevalidated");
        assert_eq!(
            (
                worklist.sweeps(),
                dist.sites()
                    .map(|s| worklist.worst_case_latency(s))
                    .collect::<Vec<_>>()
            ),
            (
                reference.sweeps(),
                dist.sites()
                    .map(|s| reference.worst_case_latency(s))
                    .collect::<Vec<_>>()
            ),
            "the holistic drivers disagreed on the {shape} bench workload"
        );
        entries.push(BenchEntry {
            id: format!("holistic_scaling/{shape}/worklist"),
            best_ns: best_ns(samples, || {
                std::hint::black_box(
                    twca_dist::analyze(&dist, dist_options).expect("prevalidated"),
                );
            }),
            samples,
        });
        entries.push(BenchEntry {
            id: format!("holistic_scaling/{shape}/full-sweeps"),
            best_ns: best_ns(samples, || {
                std::hint::black_box(
                    twca_dist::analyze(&dist, dist_iterative).expect("prevalidated"),
                );
            }),
            samples,
        });
    }

    // Simulation throughput: one whole-trace pass of the wide
    // high-event-rate workload through each core. The event-queue side
    // reuses one arena across passes — the production Monte Carlo shape,
    // and the zero-allocation claim under test — while the classic
    // chain-scan engine is the retained differential baseline the 10x
    // contract is measured against.
    let sim_system = wide_throughput_system(512);
    let sim_traces = TraceSet::max_rate(&sim_system, 100_000);
    let sim = Simulation::new(&sim_system);
    let mut arena = SimArena::default();
    assert_eq!(
        sim.run_in_arena(&sim_traces, &mut arena),
        sim.clone()
            .with_engine(SimEngineMode::Classic)
            .run(&sim_traces),
        "the simulation engines disagreed on the bench workload"
    );
    entries.push(BenchEntry {
        id: "sim_throughput/event-queue".to_owned(),
        best_ns: best_ns(samples, || {
            std::hint::black_box(sim.run_in_arena(&sim_traces, &mut arena));
        }),
        samples,
    });
    let classic = sim.clone().with_engine(SimEngineMode::Classic);
    entries.push(BenchEntry {
        id: "sim_throughput/classic".to_owned(),
        best_ns: best_ns(samples, || {
            std::hint::black_box(classic.run(&sim_traces));
        }),
        samples,
    });

    BenchReport {
        seed: config.seed,
        quick: config.quick,
        entries,
        overload_heavy_speedup,
        service_requests_per_sec: None,
    }
}

/// The machine-speed calibration entry shared by every suite;
/// see the comment in [`run_bench`] for why it is memory-shaped.
fn calibration_entry(samples: usize) -> BenchEntry {
    BenchEntry {
        id: "calibration/spin".to_owned(),
        best_ns: best_ns(samples, || {
            let mut x: u64 = 0x9E37_79B9;
            let mut table: Vec<u64> = Vec::with_capacity(1 << 16);
            for i in 0..(1u64 << 16) {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
                table.push(x);
            }
            let mut acc = 0u64;
            let mut at = 0usize;
            for _ in 0..2_000_000u64 {
                let v = table[at];
                acc = acc.wrapping_add(v);
                at = (v as usize) & ((1 << 16) - 1);
            }
            std::hint::black_box((acc, table));
        }),
        samples,
    }
}

/// Runs the `service_saturation` workload of the `--suite service`
/// bench: an in-process [`twca_service::TcpServer`] saturated by the
/// load generator with 10 000 concurrent request streams (one request
/// each) over 32 connections. Every run must be clean — zero analysis
/// errors, zero `overloaded` rejections, zero lost responses — or the
/// suite panics; the report carries sustained requests/sec plus
/// p50/p95/p99 tail latency as regression-gated entries.
pub fn run_service_bench(config: &BenchConfig) -> BenchReport {
    let samples = if config.quick { 2 } else { 3 };
    let load = twca_service::LoadgenConfig {
        streams: 10_000,
        requests_per_stream: 1,
        connections: 32,
        mix: twca_service::RequestMix::Mixed,
        seed: config.seed,
        ..twca_service::LoadgenConfig::default()
    };
    service_bench(config, &load, samples)
}

fn service_bench(
    config: &BenchConfig,
    load: &twca_service::LoadgenConfig,
    samples: usize,
) -> BenchReport {
    use std::time::Duration;

    let mut entries = vec![calibration_entry(samples)];
    let service_config = twca_service::ServiceConfig {
        workers: 2,
        // Roomy enough that a clean run never trips admission control:
        // saturation measures throughput, not the rejection path.
        queue_capacity: (load.streams * load.requests_per_stream).max(1024),
        deadline: None,
        max_frame_bytes: 1 << 20,
        // The acceptance bar is measured with the production edge
        // hardening armed: generous timeouts that a healthy loadgen
        // never trips, but the reaping machinery is live.
        read_timeout: Some(Duration::from_secs(5)),
        idle_timeout: Some(Duration::from_secs(10)),
        write_timeout: Some(Duration::from_secs(5)),
        write_buffer_bytes: 4 << 20,
    };
    let total_requests = (load.streams * load.requests_per_stream) as u64;
    let mut best_elapsed_ns = u64::MAX;
    let mut best_rate = 0.0f64;
    let mut p50 = u64::MAX;
    let mut p95 = u64::MAX;
    let mut p99 = u64::MAX;
    for _ in 0..samples.max(1) {
        let server = twca_service::TcpServer::start(
            "127.0.0.1:0",
            Session::new().with_options(bench_options()),
            &service_config,
        )
        .expect("loopback bind");
        let report =
            twca_service::run_loadgen(server.local_addr(), load).expect("loopback connect");
        let summary = server.shutdown(Duration::from_secs(120));
        assert_eq!(
            report.ok,
            total_requests,
            "the saturation run must be clean:\n{}",
            report.render()
        );
        assert_eq!(summary.errors, 0, "the server saw errors under saturation");
        let elapsed_ns = u64::try_from(report.elapsed.as_nanos()).unwrap_or(u64::MAX);
        if elapsed_ns < best_elapsed_ns {
            best_elapsed_ns = elapsed_ns;
            best_rate = report.requests_per_sec();
        }
        // Per-percentile minima across runs, the same noise-robust
        // estimator as `best_ns`.
        p50 = p50.min(report.percentile_ns(0.50));
        p95 = p95.min(report.percentile_ns(0.95));
        p99 = p99.min(report.percentile_ns(0.99));
    }
    entries.push(BenchEntry {
        id: "service_saturation/wall_per_request_ns".to_owned(),
        best_ns: best_elapsed_ns / total_requests.max(1),
        samples,
    });
    for (id, ns) in [
        ("service_saturation/p50_ns", p50),
        ("service_saturation/p95_ns", p95),
        ("service_saturation/p99_ns", p99),
    ] {
        entries.push(BenchEntry {
            id: id.to_owned(),
            best_ns: ns,
            samples,
        });
    }
    BenchReport {
        seed: config.seed,
        quick: config.quick,
        entries,
        overload_heavy_speedup: 0.0,
        service_requests_per_sec: Some(best_rate),
    }
}

/// The delta-suite workload: a `resources`-deep linear pipeline whose
/// per-resource systems carry enough chains that holistic re-analysis
/// of one resource costs real solver work (so memo hits measurably
/// beat re-analysis), with the *tail* stage's first task at
/// `tail_wcet` — the single knob the one-task-edit benchmark turns.
fn delta_pipeline(resources: usize, tail_wcet: u64) -> twca_dist::DistributedSystem {
    let mut builder = DistributedSystemBuilder::new();
    for i in 0..resources {
        let wcet = if i + 1 == resources { tail_wcet } else { 60 };
        // The linked `flow` chain runs at top priority so its response
        // jitter stays small and bounded down the 100 hops; the
        // unlinked local chains push per-resource utilization to ~0.99
        // so busy windows span dozens of activations and one holistic
        // row costs real ladder work — the regime where a memo hit
        // (one fingerprint hash) pays off.
        let system = SystemBuilder::new()
            .chain("flow")
            .periodic(1_000)
            .expect("static period")
            .deadline(1_000)
            .kind(ChainKind::Synchronous)
            .task("ingest", 100, wcet)
            .task("emit", 90, 40)
            .done()
            .chain("telemetry")
            .periodic(400)
            .expect("static period")
            .deadline(400)
            .kind(ChainKind::Asynchronous)
            .task("sample", 30, 90)
            .task("pack", 20, 55)
            .done()
            .chain("housekeeping")
            .sporadic(1_000)
            .expect("static distance")
            .task("scrub", 5, 535)
            .done()
            .build()
            .expect("well-formed pipeline stage");
        builder = builder.resource(format!("r{i}"), system);
    }
    for i in 0..resources.saturating_sub(1) {
        builder = builder.link((format!("r{i}"), "flow"), (format!("r{}", i + 1), "flow"));
    }
    builder.build().expect("well-formed pipeline")
}

/// Runs the `--suite delta` workload: memoized holistic re-analysis
/// after a one-task WCET edit on the 100-resource pipeline, against
/// the cold full fixed point on the same edited system. The warm side
/// pops a pre-warmed [`twca_dist::HolisticMemo`] clone per pass, so every timed
/// pass is a genuine first re-analysis (not an all-hit replay), and
/// the suite asserts the delta results are bit-identical to the
/// from-scratch ones before timing anything.
pub fn run_delta_bench(config: &BenchConfig) -> BenchReport {
    use twca_dist::{analyze_with_memo, HolisticMemo};

    let samples = if config.quick { 5 } else { 9 };
    let options = twca_dist::DistOptions {
        chain_options: with_solver(bench_options(), SolverMode::SchedulingPoints),
        ..twca_dist::DistOptions::default()
    };
    let base = delta_pipeline(100, 60);
    let edited = delta_pipeline(100, 61);

    // Warm the memo on the pre-edit system, then prove the delta pass
    // reproduces the from-scratch answer on the edited one.
    let warm = HolisticMemo::new();
    let (_, cold_report) = analyze_with_memo(&base, options, &warm).expect("pipeline converges");
    let fresh_memo = HolisticMemo::new();
    let (fresh, fresh_report) =
        analyze_with_memo(&edited, options, &fresh_memo).expect("pipeline converges");
    let delta_memo = warm.clone();
    let (delta, delta_report) =
        analyze_with_memo(&edited, options, &delta_memo).expect("pipeline converges");
    assert_eq!(
        edited
            .sites()
            .map(|s| delta.worst_case_latency(s))
            .collect::<Vec<_>>(),
        edited
            .sites()
            .map(|s| fresh.worst_case_latency(s))
            .collect::<Vec<_>>(),
        "delta re-analysis diverged from the from-scratch fixed point"
    );
    assert!(
        delta_report.rows_analyzed < fresh_report.rows_analyzed,
        "the one-task edit re-analyzed {} rows, no fewer than the {} cold ones",
        delta_report.rows_analyzed,
        fresh_report.rows_analyzed
    );
    assert!(
        delta_report.memo_hits > 0,
        "the warm memo produced no hits on the unchanged resources"
    );
    let _ = cold_report;

    let mut entries = vec![calibration_entry(samples)];
    entries.push(BenchEntry {
        id: "delta_reanalysis/cold_full".to_owned(),
        best_ns: best_ns(samples, || {
            let memo = HolisticMemo::new();
            std::hint::black_box(
                analyze_with_memo(&edited, options, &memo).expect("pipeline converges"),
            );
        }),
        samples,
    });
    // One pre-warmed clone per pass: each timed pass replays the exact
    // production moment — a store holding the old fixed point receives
    // the edit and re-analyzes only what changed.
    let mut warm_clones: Vec<HolisticMemo> = (0..samples).map(|_| warm.clone()).collect();
    entries.push(BenchEntry {
        id: "delta_reanalysis/one_task_edit".to_owned(),
        best_ns: best_ns(samples, || {
            let memo = warm_clones.pop().expect("one clone per sample");
            std::hint::black_box(
                analyze_with_memo(&edited, options, &memo).expect("pipeline converges"),
            );
        }),
        samples,
    });
    BenchReport {
        seed: config.seed,
        quick: config.quick,
        entries,
        overload_heavy_speedup: 0.0,
        service_requests_per_sec: None,
    }
}

/// The `--suite persist` put workload: `versions` distinct revisions
/// of a mid-size chain system (stepped WCETs so every put carries a
/// real diff), as DSL text — the timed passes parse it per put, the
/// way every wire `store_put` does. Every body round-trips the
/// persistent DSL format by construction.
fn persist_texts(versions: usize) -> Vec<String> {
    (0..versions)
        .map(|step| {
            let mut text = String::new();
            for chain in 0..6 {
                text.push_str(&format!(
                    "chain c{chain} periodic={} deadline={} {{\n",
                    100 + 10 * chain,
                    100 + 10 * chain
                ));
                for task in 0..5 {
                    text.push_str(&format!(
                        "  task c{chain}t{task} prio={} wcet={}\n",
                        1 + chain * 5 + task,
                        3 + (step + chain + task) % 7
                    ));
                }
                text.push_str("}\n");
            }
            text
        })
        .collect()
}

/// Runs the `--suite persist` durability workloads behind
/// `BENCH_persist.json`:
///
/// * `persist/put_in_memory` — 64 `store_put`s (two names, stepped
///   bodies, DSL parse included exactly as on the wire path) on a
///   plain in-memory [`twca_api::SystemStore`];
/// * `persist/put_journaled` — the same 64 puts on a durable store
///   over a real directory ([`twca_api::DirIo`]), journal appends
///   only (no per-put fsync, no snapshot) so the delta over the
///   in-memory entry is the render + frame + checksum + `write(2)`
///   cost the journal adds per put — the pair is gated by the 1.5×
///   overhead cap in [`check_against`];
/// * `persist/recovery` — reopening the store from a 64-record
///   journal (cold replay, no snapshot), the restart-latency number.
///
/// Before timing anything the recovery path is checked: the reopened
/// store must report both entries at version 32.
pub fn run_persist_bench(config: &BenchConfig) -> BenchReport {
    use std::sync::Arc;
    use twca_api::{DirIo, PersistPolicy, SystemStore};

    let samples = if config.quick { 5 } else { 9 };
    const PUTS: usize = 64;
    // Appends only: fsync cadence is a deployment policy measuring
    // disk hardware, not suite code, and would swamp the append cost
    // this suite gates.
    let policy = PersistPolicy {
        snapshot_every: 0,
        sync_every: 0,
    };
    let texts = persist_texts(PUTS);
    let scratch = std::env::temp_dir().join(format!("twca-bench-persist-{}", std::process::id()));
    let run_puts = |store: &SystemStore| {
        for (i, text) in texts.iter().enumerate() {
            let name = if i % 2 == 0 { "alpha" } else { "beta" };
            let body = twca_api::StoredBody::Uni(
                twca_model::parse_system(text).expect("persist bench body parses"),
            );
            store.put(name, body).expect("bench put succeeds");
        }
    };

    // Sanity before timing: a journal written by this workload must
    // recover to the exact final state.
    let check_dir = scratch.join("check");
    let (seed_store, _) = SystemStore::durable(
        Arc::new(DirIo::open(&check_dir).expect("temp store dir opens")),
        policy,
    )
    .expect("fresh durable store opens");
    run_puts(&seed_store);
    drop(seed_store);
    let (reopened, report) = SystemStore::durable(
        Arc::new(DirIo::open(&check_dir).expect("temp store dir reopens")),
        policy,
    )
    .expect("journal recovers");
    assert_eq!(
        report.replayed, PUTS as u64,
        "recovery replayed {} of the {PUTS} journaled puts",
        report.replayed
    );
    let versions: Vec<(String, u64)> = reopened
        .export()
        .into_iter()
        .map(|(name, version, _)| (name, version))
        .collect();
    assert_eq!(
        versions,
        vec![
            ("alpha".to_owned(), PUTS as u64 / 2),
            ("beta".to_owned(), PUTS as u64 / 2)
        ],
        "recovered store diverged from the put sequence"
    );
    drop(reopened);

    let mut entries = vec![calibration_entry(samples)];
    entries.push(BenchEntry {
        id: "persist/put_in_memory".to_owned(),
        best_ns: best_ns(samples, || {
            let store = SystemStore::new();
            run_puts(&store);
            std::hint::black_box(store.names());
        }),
        samples,
    });
    // One pre-opened store per pass: directory setup is not the
    // workload, the 64 journaled puts are.
    let mut fresh: Vec<SystemStore> = (0..samples)
        .map(|pass| {
            let dir = scratch.join(format!("puts-{pass}"));
            let (store, _) = SystemStore::durable(
                Arc::new(DirIo::open(dir).expect("temp store dir opens")),
                policy,
            )
            .expect("fresh durable store opens");
            store
        })
        .collect();
    entries.push(BenchEntry {
        id: "persist/put_journaled".to_owned(),
        best_ns: best_ns(samples, || {
            let store = fresh.pop().expect("one store per sample");
            run_puts(&store);
            std::hint::black_box(store.persist_stats().journal_bytes);
        }),
        samples,
    });
    // Recovery re-reads the same 64-record journal every pass (replay
    // never mutates a journal with no torn tail).
    entries.push(BenchEntry {
        id: "persist/recovery".to_owned(),
        best_ns: best_ns(samples, || {
            let io = Arc::new(DirIo::open(&check_dir).expect("temp store dir reopens"));
            let (store, report) = SystemStore::durable(io, policy).expect("journal recovers");
            std::hint::black_box((store.names(), report));
        }),
        samples,
    });
    let _ = std::fs::remove_dir_all(&scratch);
    BenchReport {
        seed: config.seed,
        quick: config.quick,
        entries,
        overload_heavy_speedup: 0.0,
        service_requests_per_sec: None,
    }
}

/// Compares a fresh report against a committed baseline.
///
/// Both reports must have been measured on the same seed (different
/// seeds mean different workloads — comparing them validates nothing).
/// Best-of-N times are normalized by the two reports'
/// `calibration/spin` entries (so a baseline recorded on a faster
/// machine does not fail CI spuriously), then every shared benchmark id
/// must stay within `tolerance` × baseline; the overload-heavy speedup
/// must not collapse below `baseline / tolerance` and must keep the
/// ≥ 5× contract. Returns the list of regressions (empty = pass).
pub fn check_against(current: &BenchReport, baseline: &BenchReport, tolerance: f64) -> Vec<String> {
    let mut regressions = Vec::new();
    if current.seed != baseline.seed {
        regressions.push(format!(
            "seed mismatch: measured {} vs baseline {} — different seeds are different \
             workloads, nothing below is comparable",
            current.seed, baseline.seed
        ));
        return regressions;
    }
    let scale = match (
        current.entry("calibration/spin"),
        baseline.entry("calibration/spin"),
    ) {
        (Some(c), Some(b)) if b.best_ns > 0 => c.best_ns as f64 / b.best_ns as f64,
        _ => 1.0,
    };
    for entry in &baseline.entries {
        if entry.id == "calibration/spin" {
            continue;
        }
        let Some(current_entry) = current.entry(&entry.id) else {
            regressions.push(format!("benchmark `{}` disappeared", entry.id));
            continue;
        };
        let allowed = entry.best_ns as f64 * scale * tolerance;
        if current_entry.best_ns as f64 > allowed {
            regressions.push(format!(
                "`{}` regressed: {} vs allowed {} (baseline {} × machine scale {:.2} × \
                 tolerance {tolerance})",
                entry.id,
                format_ns(current_entry.best_ns),
                format_ns(allowed as u64),
                format_ns(entry.best_ns),
                scale,
            ));
        }
    }
    // The overload-heavy contract only applies to reports that measured
    // it (the service suite, say, has no combination-engine entries).
    if baseline.entry("overload_heavy/combinations/lazy").is_some() {
        if current.overload_heavy_speedup < baseline.overload_heavy_speedup / tolerance {
            regressions.push(format!(
                "overload-heavy speedup collapsed: {:.2}x vs baseline {:.2}x",
                current.overload_heavy_speedup, baseline.overload_heavy_speedup
            ));
        }
        if current.overload_heavy_speedup < 5.0 {
            regressions.push(format!(
                "overload-heavy speedup below the 5x contract: {:.2}x",
                current.overload_heavy_speedup
            ));
        }
    }
    for (fast, slow, floor) in SPEEDUP_CONTRACTS {
        if let Some(speedup) = current.speedup(fast, slow) {
            if speedup < floor {
                regressions.push(format!(
                    "`{fast}` speedup below its {floor}x contract: {speedup:.2}x vs `{slow}`"
                ));
            }
        }
    }
    for (capped, base, cap) in OVERHEAD_CAPS {
        // speedup(base, capped) is capped_ns / base_ns — the overhead.
        if let Some(overhead) = current.speedup(base, capped) {
            if overhead > cap {
                regressions.push(format!(
                    "`{capped}` overhead above its {cap}x cap: {overhead:.2}x vs `{base}`"
                ));
            }
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let report = BenchReport {
            seed: 7,
            quick: true,
            entries: vec![
                BenchEntry {
                    id: "calibration/spin".into(),
                    best_ns: 1_000,
                    samples: 3,
                },
                BenchEntry {
                    id: "x/y".into(),
                    best_ns: 42,
                    samples: 3,
                },
            ],
            overload_heavy_speedup: 12.5,
            service_requests_per_sec: None,
        };
        let json = report.to_json().to_string();
        let reparsed = BenchReport::from_json(&Json::parse(&json).expect("valid json"))
            .expect("well-formed report");
        assert_eq!(reparsed, report);
        assert!(report.render().contains("x/y"));
    }

    #[test]
    fn regression_check_scales_by_calibration_and_flags_slowdowns() {
        let mk = |spin: u64, work: u64, speedup: f64| BenchReport {
            seed: 1,
            quick: true,
            entries: vec![
                BenchEntry {
                    id: "calibration/spin".into(),
                    best_ns: spin,
                    samples: 3,
                },
                BenchEntry {
                    id: "work".into(),
                    best_ns: work,
                    samples: 3,
                },
                // Present so the overload-heavy speedup contract applies.
                BenchEntry {
                    id: "overload_heavy/combinations/lazy".into(),
                    best_ns: work,
                    samples: 3,
                },
            ],
            overload_heavy_speedup: speedup,
            service_requests_per_sec: None,
        };
        let baseline = mk(1_000, 10_000, 50.0);
        // Twice-slower machine, work scaled accordingly: clean.
        assert!(check_against(&mk(2_000, 20_000, 50.0), &baseline, 1.5).is_empty());
        // Same machine, work 2x slower: regression.
        assert!(!check_against(&mk(1_000, 20_001, 50.0), &baseline, 1.5).is_empty());
        // Speedup collapse and sub-contract speedups are caught.
        assert!(!check_against(&mk(1_000, 10_000, 20.0), &baseline, 1.5).is_empty());
        assert!(!check_against(&mk(1_000, 10_000, 4.0), &baseline, 1.5).is_empty());
    }

    #[test]
    fn overhead_cap_flags_expensive_journaling() {
        let mk = |journaled: u64| BenchReport {
            seed: 1,
            quick: true,
            entries: vec![
                BenchEntry {
                    id: "persist/put_in_memory".into(),
                    best_ns: 10_000,
                    samples: 3,
                },
                BenchEntry {
                    id: "persist/put_journaled".into(),
                    best_ns: journaled,
                    samples: 3,
                },
            ],
            overload_heavy_speedup: 0.0,
            service_requests_per_sec: None,
        };
        let baseline = mk(12_000);
        assert!(check_against(&mk(14_000), &baseline, 1.5).is_empty());
        let flagged = check_against(&mk(16_000), &baseline, 1.5);
        assert!(
            flagged.iter().any(|r| r.contains("1.5x cap")),
            "journal overhead above the cap was not flagged: {flagged:?}"
        );
    }

    #[test]
    fn quick_suite_runs_and_keeps_the_contract() {
        let report = run_bench(&BenchConfig {
            seed: 42,
            quick: true,
        });
        assert!(report.entry("table2_dmm").is_some());
        assert!(report.entry("engine_scaling").is_some());
        assert!(report.entry("overload_heavy/combinations/lazy").is_some());
        // No wall-clock ratio assertions here: this runs unoptimized
        // and time-shared under `cargo test`. run_bench itself asserts
        // the engines *agree* on the workload (deterministic), and the
        // release-mode CI bench step gates the speedup contract.
        assert!(report.overload_heavy_speedup.is_finite());
    }

    #[test]
    fn delta_suite_localizes_the_edit_and_round_trips() {
        let report = run_delta_bench(&BenchConfig {
            seed: 42,
            quick: true,
        });
        for id in [
            "calibration/spin",
            "delta_reanalysis/cold_full",
            "delta_reanalysis/one_task_edit",
        ] {
            assert!(report.entry(id).is_some(), "missing entry `{id}`");
        }
        // No wall-clock ratio floor here (unoptimized, time-shared);
        // run_delta_bench itself asserts the delta pass matches the
        // from-scratch fixed point and analyzed strictly fewer rows.
        // The release-mode CI bench step gates the 10x contract.
        let json = report.to_json().to_string();
        let reparsed =
            BenchReport::from_json(&Json::parse(&json).expect("valid json")).expect("well-formed");
        assert_eq!(reparsed.entries, report.entries);
        // check_against on a delta report may legitimately flag the 10x
        // contract here (unoptimized build), but never a timing
        // regression against its own reparse.
        assert!(check_against(&report, &reparsed, 1.5)
            .iter()
            .all(|r| r.contains("contract")));
        assert!(report.render().contains("delta_reanalysis"));
    }

    #[test]
    fn persist_suite_recovers_its_own_journal_and_round_trips() {
        let report = run_persist_bench(&BenchConfig {
            seed: 42,
            quick: true,
        });
        for id in [
            "calibration/spin",
            "persist/put_in_memory",
            "persist/put_journaled",
            "persist/recovery",
        ] {
            assert!(report.entry(id).is_some(), "missing entry `{id}`");
        }
        let json = report.to_json().to_string();
        let reparsed =
            BenchReport::from_json(&Json::parse(&json).expect("valid json")).expect("well-formed");
        assert_eq!(reparsed.entries, report.entries);
        // No wall-clock cap assertion here (unoptimized, time-shared —
        // the release-mode CI bench step gates the 1.5x overhead cap);
        // run_persist_bench itself asserts the journal recovers to the
        // exact final state. Self-comparison may only ever flag the
        // cap, never a timing regression.
        assert!(check_against(&report, &reparsed, 1.5)
            .iter()
            .all(|r| r.contains("cap")));
        assert!(report.render().contains("persist/recovery"));
    }

    #[test]
    fn service_suite_measures_saturation_and_round_trips() {
        // A scaled-down saturation shape: `cargo test` runs unoptimized,
        // so the committed-baseline 10k-stream shape belongs to the
        // release-mode CI bench step, not here.
        let config = BenchConfig {
            seed: 42,
            quick: true,
        };
        let load = twca_service::LoadgenConfig {
            streams: 40,
            requests_per_stream: 2,
            connections: 8,
            mix: twca_service::RequestMix::Mixed,
            seed: config.seed,
            ..twca_service::LoadgenConfig::default()
        };
        let report = service_bench(&config, &load, 1);
        for id in [
            "calibration/spin",
            "service_saturation/wall_per_request_ns",
            "service_saturation/p50_ns",
            "service_saturation/p95_ns",
            "service_saturation/p99_ns",
        ] {
            assert!(report.entry(id).is_some(), "missing entry `{id}`");
        }
        assert!(report.service_requests_per_sec.unwrap() > 0.0);
        let json = report.to_json().to_string();
        let reparsed =
            BenchReport::from_json(&Json::parse(&json).expect("valid json")).expect("well-formed");
        assert_eq!(reparsed.entries, report.entries);
        assert!(reparsed.service_requests_per_sec.is_some());
        // A service-suite baseline must not demand the combination-engine
        // contract of a service-suite measurement.
        assert!(check_against(&report, &reparsed, 1.5).is_empty());
        assert!(report.render().contains("service_saturation"));
    }
}
