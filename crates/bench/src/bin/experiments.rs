//! Experiment driver: regenerates every table and figure of the paper's
//! evaluation plus this reproduction's validation experiments.
//!
//! ```text
//! experiments             # run everything
//! experiments table1      # Table I   — WCL of σc and σd
//! experiments table2      # Table II  — dmm_c(k)
//! experiments fig5        # Figure 5  — dmm(10) histograms, 1000 assignments
//! experiments validate    # simulation-based soundness check
//! ```

use std::env;

use twca_bench::{
    collapsed_baseline, distributed_experiment, figure5, markdown_report, table1, table2,
    tightness, validate_case_study, validation_is_sound, Figure5Outcome,
};

fn print_table1() {
    println!("== Experiment 1 / Table I: worst-case latencies ==");
    println!(
        "{:<10} {:>6} {:>12} {:>6}  paper",
        "chain", "WCL", "typical WCL", "D"
    );
    let paper = [("sigma_c", 331u64), ("sigma_d", 175u64)];
    for row in table1() {
        let wcl = row.wcl.map_or("unbounded".into(), |w| w.to_string());
        let typ = row
            .typical_wcl
            .map_or("unbounded".into(), |w| w.to_string());
        let reference = paper
            .iter()
            .find(|(n, _)| *n == row.chain)
            .map(|&(_, w)| w.to_string())
            .unwrap_or_default();
        println!(
            "{:<10} {:>6} {:>12} {:>6}  {}",
            row.chain, wcl, typ, row.deadline, reference
        );
    }
    println!();
}

fn print_table2() {
    println!("== Experiment 1 / Table II: dmm_c(k) ==");
    println!(
        "{:>5} {:>6} {:>4} {:>7} {:>7} {:>9} {:>8}  paper",
        "k", "dmm", "N_b", "packed", "slack", "combos", "unsched"
    );
    let paper = [(3u64, 3u64), (76, 4), (250, 5)];
    for dmm in table2(&[3, 10, 76, 250]) {
        let reference = paper
            .iter()
            .find(|&&(k, _)| k == dmm.k)
            .map(|&(_, v)| v.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>5} {:>6} {:>4} {:>7} {:>7} {:>9} {:>8}  {}",
            dmm.k,
            dmm.bound,
            dmm.misses_per_window,
            dmm.packed_windows,
            dmm.typical_slack,
            dmm.combinations,
            dmm.unschedulable_combinations,
            reference
        );
    }
    println!("(paper values for k=76/250 are not derivable from the paper's");
    println!(" formulas — see EXPERIMENTS.md for the discrepancy analysis)");
    println!();
}

fn print_histogram(label: &str, outcome: &Figure5Outcome, histogram_c: bool) {
    let histogram = if histogram_c {
        &outcome.histogram_c
    } else {
        &outcome.histogram_d
    };
    println!("{label}: dmm(10) -> count (of {})", outcome.rounds);
    for (bound, count) in histogram {
        let bar = "#".repeat((count * 60 / outcome.rounds.max(1)).max(1));
        println!("  {bound:>2}: {count:>4} {bar}");
    }
}

fn print_fig5(rounds: usize) {
    println!("== Experiment 2 / Figure 5: {rounds} random priority assignments ==");
    let outcome = figure5(2017, rounds);
    print_histogram("sigma_c", &outcome, true);
    println!(
        "  schedulable: {} / {} (paper: 633 / 1000)",
        outcome.schedulable_c, outcome.rounds
    );
    print_histogram("sigma_d", &outcome, false);
    println!(
        "  schedulable: {} / {} (paper: 307 / 1000)",
        outcome.schedulable_d, outcome.rounds
    );
    println!();
}

fn print_validation() {
    println!("== Validation: simulation vs analytic bounds (not in paper) ==");
    println!(
        "{:<10} {:<12} {:>9} {:>9} {:>9} {:>9}",
        "chain", "scenario", "sim lat", "WCL", "sim miss", "dmm(10)"
    );
    let rows = validate_case_study(200_000, 10);
    for r in &rows {
        println!(
            "{:<10} {:<12} {:>9} {:>9} {:>9} {:>9}",
            r.chain,
            r.scenario,
            r.observed_latency.map_or("-".into(), |v| v.to_string()),
            r.analytic_latency.map_or("unbnd".into(), |v| v.to_string()),
            r.observed_misses,
            r.dmm_bound
        );
    }
    println!(
        "soundness (every observation within its bound): {}",
        if validation_is_sound(&rows) {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!();
}

fn print_baseline() {
    println!("== Chain-aware analysis vs collapsed independent-task baseline ==");
    println!(
        "{:<10} {:>12} {:>16}",
        "chain", "chain WCL", "collapsed WCRT"
    );
    for row in collapsed_baseline() {
        println!(
            "{:<10} {:>12} {:>16}",
            row.chain,
            row.chain_wcl.map_or("unbounded".into(), |v| v.to_string()),
            row.collapsed_wcrt
                .map_or("unbounded".into(), |v| v.to_string())
        );
    }
    println!("(segment-aware interference accounting is what the paper adds)");
    println!();
}

fn print_tightness() {
    println!("== Tightness: analytic upper bounds vs falsified lower bounds ==");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10}  scenario",
        "chain", "WCL upper", "WCL lower", "dmm upper", "dmm lower"
    );
    for row in tightness(10, 300_000, 15) {
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>10}  {}",
            row.chain,
            row.wcl_upper.map_or("unbnd".into(), |v| v.to_string()),
            row.wcl_lower.map_or("-".into(), |v| v.to_string()),
            row.dmm_upper,
            row.dmm_lower,
            row.scenario
        );
    }
    println!("(lower bounds come from legal, model-conforming traces)");
    println!();
}

fn print_dist() {
    println!("== Distributed extension: case study feeding a pipeline (not in paper) ==");
    for stages in [2usize, 3, 4] {
        let outcome = distributed_experiment(stages, 60_000);
        println!(
            "-- {stages} resources (converged in {} sweep(s)) --",
            outcome.sweeps
        );
        println!("{:<16} {:>10} {:>12}", "site", "WCL", "jitter out");
        for row in &outcome.rows {
            println!(
                "{:<16} {:>10} {:>12}",
                row.site,
                row.wcl.map_or("unbounded".into(), |v| v.to_string()),
                row.jitter_out
            );
        }
        println!(
            "path: bound {} / observed {}  dmm(10) = {}",
            outcome.path_bound,
            outcome.observed.map_or("-".into(), |v| v.to_string()),
            outcome.path_dmm10
        );
        if let Some(observed) = outcome.observed {
            assert!(observed <= outcome.path_bound, "simulation above bound");
        }
        println!();
    }
}

fn main() {
    let arg = env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "table1" => print_table1(),
        "table2" => print_table2(),
        "fig5" => print_fig5(1000),
        "fig5-small" => print_fig5(100),
        "validate" => print_validation(),
        "baseline" => print_baseline(),
        "tightness" => print_tightness(),
        "dist" => print_dist(),
        "report" => print!("{}", markdown_report(1000)),
        "report-small" => print!("{}", markdown_report(100)),
        "all" => {
            print_table1();
            print_table2();
            print_fig5(1000);
            print_validation();
            print_baseline();
            print_tightness();
            print_dist();
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!(
                "usage: experiments [table1|table2|fig5|fig5-small|validate|baseline|\
                 tightness|dist|report|report-small|all]"
            );
            std::process::exit(2);
        }
    }
}
