//! Validates the analytic bounds against the discrete-event simulator:
//! observed latencies must stay below the worst-case latency, observed
//! window miss counts below dmm(k) — across max-rate, typical and
//! adversarially aligned activation scenarios.
//!
//! ```text
//! cargo run --release --example simulation_validation
//! ```

use twca_suite::chains::ChainAnalysis;
use twca_suite::model::case_study;
use twca_suite::sim::{adversarial_aligned_traces, Simulation, TraceSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = case_study();
    let analysis = ChainAnalysis::new(&system);
    let horizon = 500_000;
    let k = 10usize;

    let scenarios = [
        (
            "max-rate (all chains)",
            TraceSet::max_rate(&system, horizon),
        ),
        (
            "typical (no overload)",
            TraceSet::max_rate_without_overload(&system, horizon),
        ),
        (
            "adversarial (aligned overload)",
            adversarial_aligned_traces(&system, horizon),
        ),
    ];

    let mut all_sound = true;
    for (label, traces) in &scenarios {
        println!("=== scenario: {label} ===");
        let result = Simulation::new(&system).run(traces);
        for name in ["sigma_c", "sigma_d"] {
            let (id, chain) = system.chain_by_name(name).expect("chain exists");
            let stats = result.chain(id);
            let wcl = analysis.worst_case_latency(id)?.worst_case_latency;
            let dmm = analysis.deadline_miss_model(id, k as u64)?.bound;
            let observed_latency = stats.max_latency().unwrap_or(0);
            let observed_misses = stats.max_misses_in_window(k);
            let latency_ok = observed_latency <= wcl;
            let miss_ok = observed_misses as u64 <= dmm;
            all_sound &= latency_ok && miss_ok;
            println!(
                "{name}: {} instances, max latency {observed_latency} <= WCL {wcl} [{}], \
                 worst window {observed_misses}/{k} misses <= dmm {dmm} [{}] (D = {})",
                stats.completed_instances(),
                if latency_ok { "ok" } else { "VIOLATION" },
                if miss_ok { "ok" } else { "VIOLATION" },
                chain.deadline().expect("deadline"),
            );
        }
    }
    println!("\nsoundness: {}", if all_sound { "PASS" } else { "FAIL" });
    if !all_sound {
        std::process::exit(1);
    }
    Ok(())
}
