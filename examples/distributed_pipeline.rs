//! Distributed sense→fuse→act pipeline across three ECUs.
//!
//! The paper's conclusion motivates extending TWCA "towards the practical
//! design of distributed embedded systems". This example builds a
//! three-ECU pipeline in which the first ECU runs the paper's industrial
//! case study; the end of chain σc feeds a fusion chain on ECU1, which
//! feeds an actuation chain on ECU2. Each downstream ECU also carries
//! local load, and ECU1 has its own sporadic overload chain.
//!
//! ```text
//! cargo run --example distributed_pipeline
//! ```

use twca_suite::dist::{
    analyze, max_path_overload_scaling, propagate_simulation, DistOptions, DistPath,
    DistributedSystemBuilder, StimulusKind,
};
use twca_suite::model::{case_study, SystemBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ECU0: the Thales case study (σc is the chain we forward).
    let ecu0 = case_study();

    // ECU1: sensor fusion plus a local logging chain and a sporadic
    // firmware-check overload chain.
    let ecu1 = SystemBuilder::new()
        .chain("fuse")
        .periodic(200)? // placeholder: replaced by propagation from σc
        .deadline(200)
        .task("align", 5, 12)
        .task("merge", 4, 18)
        .done()
        .chain("log")
        .periodic(400)?
        .deadline(400)
        .task("pack", 3, 10)
        .task("store", 1, 15)
        .done()
        .chain("fwcheck")
        .sporadic(2_000)?
        .overload()
        .task("hash", 2, 25)
        .done()
        .build()?;

    // ECU2: actuation.
    let ecu2 = SystemBuilder::new()
        .chain("act")
        .periodic(200)? // placeholder: replaced by propagation from fuse
        .deadline(200)
        .task("plan", 2, 20)
        .task("drive", 1, 30)
        .done()
        .build()?;

    let dist = DistributedSystemBuilder::new()
        .resource("ecu0", ecu0)
        .resource("ecu1", ecu1)
        .resource("ecu2", ecu2)
        .link(("ecu0", "sigma_c"), ("ecu1", "fuse"))
        .link(("ecu1", "fuse"), ("ecu2", "act"))
        .build()?;

    println!("== Holistic analysis ==");
    let results = analyze(&dist, DistOptions::default())?;
    println!("converged after {} sweep(s)\n", results.sweeps());

    for site in dist.sites().collect::<Vec<_>>() {
        let resource = dist.resource(site.resource());
        let chain = resource.system().chain(site.chain());
        let wcl = results
            .worst_case_latency(site)
            .map(|w| w.to_string())
            .unwrap_or_else(|| "unbounded".into());
        let jitter = results.response_jitter(site);
        println!(
            "  {:>5}/{:<8} WCL = {:>4}   response jitter out = {:>4}   D = {}",
            resource.name(),
            chain.name(),
            wcl,
            jitter,
            chain
                .deadline()
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }

    // End-to-end path bounds.
    let hops = vec![
        dist.site("ecu0", "sigma_c").expect("site exists"),
        dist.site("ecu1", "fuse").expect("site exists"),
        dist.site("ecu2", "act").expect("site exists"),
    ];
    let path = DistPath::new(&dist, hops)?;
    let e2e_latency = path.latency(&results)?;
    let composite_deadline = path
        .composite_deadline(&dist)
        .expect("all hops have deadlines");
    println!("\n== End-to-end path σc → fuse → act ==");
    println!("  latency bound      : {e2e_latency}");
    println!("  composite deadline : {composite_deadline}");
    for k in [5, 10, 50] {
        let dmm = path.deadline_miss_model(&results, k)?;
        println!("  dmm({k:>2})            : at most {dmm} late end-to-end");
    }

    // Cross-check against the trace-propagating simulator.
    println!("\n== Simulation cross-check (horizon 40 000) ==");
    let sim = propagate_simulation(&dist, 40_000, StimulusKind::MaxRate)?;
    let observed = sim
        .max_path_latency(&path)
        .expect("pipeline produced instances");
    println!("  observed end-to-end latency : {observed}");
    println!("  analytic bound              : {e2e_latency}");
    assert!(observed <= e2e_latency, "simulation exceeded the bound");
    println!("  bound holds ✔");

    // How much can the overload chains grow before the end-to-end
    // weakly-hard contract (m, k) breaks?
    println!("\n== Overload sensitivity along the path ==");
    for (m, k) in [(5u64, 10u64), (8, 10)] {
        let tolerance =
            max_path_overload_scaling(&dist, path.hops(), m, k, 400, DistOptions::default())?;
        match tolerance {
            Some(p) => println!("  ({m}, {k}) holds up to {p}% of the declared overload WCETs"),
            None => println!("  ({m}, {k}) is violated even without overload"),
        }
    }

    Ok(())
}
