//! Automotive CAN gateway: bursty frame traffic, asynchronous
//! forwarding chains, weakly-hard contracts and an online monitor.
//!
//! A gateway ECU forwards frames between two buses. Routine traffic is
//! periodic; body-domain traffic arrives in bursts (e.g. door-module
//! wake-ups); and a diagnostics session occasionally floods the gateway
//! — the overload source. Forwarding chains are *asynchronous*: a new
//! frame is processed even while an earlier one is still queued, so the
//! self-interference (`s_header`) term of Theorem 1 is exercised.
//!
//! ```text
//! cargo run --release --example can_gateway
//! ```

use twca_suite::chains::{
    max_consecutive_misses, AnalysisContext, AnalysisOptions, ChainAnalysis, MkConstraint,
};
use twca_suite::curves::ActivationModel;
use twca_suite::model::{ChainKind, SystemBuilder};
use twca_suite::sim::{adversarial_aligned_traces, MkMonitor, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Powertrain frames: strictly periodic, tight deadline, forwarded by
    // a two-task chain (receive, transmit).
    // Body frames: nominally every 100 ticks but released with up to 60
    // ticks of jitter (gateway-side queuing), so frames can bunch up to
    // 5 ticks apart — burst-like arrivals with a *bounded* δ⁺, which is
    // what a finite deadline-miss model needs.
    // Diagnostics: sporadic dumps that monopolize the gateway.
    let body_frames = ActivationModel::periodic_jitter(100, 60, 5)?;
    let system = SystemBuilder::new()
        .chain("powertrain")
        .periodic(100)?
        .deadline(100)
        .kind(ChainKind::Asynchronous)
        .task("pt_rx", 6, 8)
        .task("pt_tx", 5, 12)
        .done()
        .chain("body")
        .activation(body_frames)
        .deadline(60)
        .kind(ChainKind::Asynchronous)
        .task("body_rx", 4, 6)
        .task("body_tx", 2, 10)
        .done()
        .chain("diag")
        .sporadic(1_500)?
        .overload()
        .task("diag_parse", 3, 25)
        .task("diag_reply", 1, 35)
        .done()
        .build()?;

    let analysis = ChainAnalysis::new(&system);
    let ctx = AnalysisContext::new(&system);

    println!("== Gateway latency bounds ==");
    for name in ["powertrain", "body"] {
        let (id, chain) = system.chain_by_name(name).expect("chain exists");
        let full = analysis.worst_case_latency(id)?;
        let typical = analysis.typical_latency(id)?.expect("typical bounded");
        println!(
            "{name:<11} WCL = {:>3} (typical {:>3})  D = {}",
            full.worst_case_latency,
            typical.worst_case_latency,
            chain.deadline().expect("deadline set"),
        );
    }

    println!("\n== Weakly-hard contracts ==");
    for (name, m, k) in [("powertrain", 1u64, 10u64), ("body", 2, 10)] {
        let (id, _) = system.chain_by_name(name).expect("chain exists");
        let dmm = analysis.deadline_miss_model(id, k)?;
        let verdict = if MkConstraint::new(m, k).admits(dmm.bound) {
            "GUARANTEED"
        } else {
            "not provable"
        };
        let run = max_consecutive_misses(&ctx, id, 32, AnalysisOptions::default())?;
        println!(
            "{name:<11} dmm({k}) = {}  ({m},{k}): {verdict}  consecutive ≤ {}",
            dmm.bound,
            run.map_or("?".into(), |v| v.to_string()),
        );
    }

    // Replay an adversarial run through the online monitor, as a runtime
    // guard in the gateway firmware would.
    println!("\n== Online (1,10) monitor on an adversarial run ==");
    let traces = adversarial_aligned_traces(&system, 60_000);
    let result = Simulation::new(&system).run(&traces);
    for name in ["powertrain", "body"] {
        let (id, _) = system.chain_by_name(name).expect("chain exists");
        let mut monitor = MkMonitor::new(1, 10);
        let violations = monitor.observe_all(result.chain(id).miss_flags());
        println!(
            "{name:<11} {} instances, {} misses total, {} window violations",
            monitor.observed(),
            monitor.total_misses(),
            violations,
        );
        // The analytic contract must dominate the monitor's observation.
        let dmm = analysis.deadline_miss_model(id, 10)?;
        assert!(
            monitor.total_misses() == 0 || dmm.bound >= 1,
            "analysis missed observed misses"
        );
    }

    Ok(())
}
