//! Experiment 2 of the paper: how priority assignment shapes weakly-hard
//! guarantees — plus priority-assignment *synthesis* with `twca-assign`.
//!
//! ```text
//! cargo run --release --example design_space [rounds]
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use twca_suite::assign::{hill_climb, Goal, SearchConfig};
use twca_suite::chains::{ChainAnalysis, MkConstraint};
use twca_suite::gen::random_priority_permutation;
use twca_suite::model::{case_study, CASE_STUDY_TASK_COUNT};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rounds: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(200);

    let base = case_study();
    let mut rng = ChaCha8Rng::seed_from_u64(2017);

    // Part 1: the Experiment 2 sweep.
    let mut histogram_c = std::collections::BTreeMap::new();
    let mut histogram_d = std::collections::BTreeMap::new();
    for _ in 0..rounds {
        let priorities = random_priority_permutation(&mut rng, CASE_STUDY_TASK_COUNT);
        let system = base.with_priorities(&priorities);
        let analysis = ChainAnalysis::new(&system);
        let (cid, _) = system.chain_by_name("sigma_c").expect("chain exists");
        let (did, _) = system.chain_by_name("sigma_d").expect("chain exists");
        *histogram_c
            .entry(analysis.deadline_miss_model(cid, 10)?.bound)
            .or_insert(0usize) += 1;
        *histogram_d
            .entry(analysis.deadline_miss_model(did, 10)?.bound)
            .or_insert(0usize) += 1;
    }

    println!("=== Figure 5 (ours, {rounds} assignments, dmm(10)) ===");
    for (name, histogram) in [("sigma_c", &histogram_c), ("sigma_d", &histogram_d)] {
        println!("{name}:");
        for (bound, count) in histogram {
            println!("  dmm(10) = {bound:>2}: {count:>5} assignments");
        }
    }
    println!("paper: sigma_c schedulable 633/1000, sigma_d 307/1000");

    // Part 2: synthesis — find priorities making BOTH chains fully
    // schedulable with overload present.
    let goals = vec![
        Goal::new("sigma_c", MkConstraint::new(0, 10)),
        Goal::new("sigma_d", MkConstraint::new(0, 10)),
    ];
    let outcome = hill_climb(
        &base,
        &goals,
        &SearchConfig {
            evaluations: 400,
            restarts: 4,
            ..SearchConfig::default()
        },
    );
    println!(
        "\n=== Synthesis: hill climbing over priorities ({} evaluations) ===",
        outcome.evaluated
    );
    println!(
        "best score: {} violated goals, total dmm {} ({} total latency)",
        outcome.best_score.violated_goals,
        outcome.best_score.total_miss_bound,
        outcome.best_score.total_latency
    );
    let best = base.with_priorities(&outcome.best_priorities);
    for r in best.task_refs() {
        let t = best.task(r);
        print!("{}={} ", t.name(), t.priority().level());
    }
    println!();
    Ok(())
}
