//! Weakly-hard contracts in practice: verify (m, k) constraints, search
//! the largest tolerable overload, and apply the phase-based refinement
//! (an extension beyond the paper).
//!
//! ```text
//! cargo run --release --example weakly_hard_sensitivity
//! ```

use twca_suite::chains::refinement::{refined_deadline_miss_model, PhasedRecurrence};
use twca_suite::chains::{
    max_consecutive_misses, max_overload_scaling, AnalysisContext, AnalysisOptions, ChainAnalysis,
    MkConstraint,
};
use twca_suite::model::case_study;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = case_study();
    let analysis = ChainAnalysis::new(&system);
    let (sigma_c, _) = system.chain_by_name("sigma_c").expect("chain exists");

    println!("=== Weakly-hard contracts for sigma_c ===");
    for (m, k) in [(0u64, 10u64), (1, 10), (3, 10), (5, 10), (2, 5)] {
        let constraint = MkConstraint::new(m, k);
        println!(
            "({m}, {k}): {}",
            if analysis.satisfies(sigma_c, constraint)? {
                "satisfied"
            } else {
                "violated"
            }
        );
    }

    println!("\n=== Overload sensitivity ===");
    for (m, k) in [(0u64, 10u64), (2, 10), (5, 10)] {
        let constraint = MkConstraint::new(m, k);
        match max_overload_scaling(
            &system,
            "sigma_c",
            constraint,
            300,
            AnalysisOptions::default(),
        )? {
            Some(p) => println!(
                "largest overload scaling keeping {constraint}: {p}% of the specified WCETs"
            ),
            None => println!("{constraint} is violated even without overload"),
        }
    }

    println!("\n=== Phase-based refinement (extension, not in the paper) ===");
    let ctx = AnalysisContext::new(&system);
    let (a, _) = system.chain_by_name("sigma_a").expect("chain exists");
    let (b, _) = system.chain_by_name("sigma_b").expect("chain exists");
    // Assume both overload chains are watchdog-driven with fixed phases.
    let phases = PhasedRecurrence::new()
        .with_phase(a, 700, 0)
        .with_phase(b, 600, 300);
    for k in [10u64, 76, 250] {
        let plain = analysis.deadline_miss_model(sigma_c, k)?;
        let refined =
            refined_deadline_miss_model(&ctx, sigma_c, k, &phases, AnalysisOptions::default())?;
        println!(
            "k = {k:>3}: Theorem 3 bound {} -> refined {}",
            plain.bound, refined.bound
        );
    }
    println!("\n=== Consecutive-miss bounds ===");
    for name in ["sigma_c", "sigma_d"] {
        let (id, _) = system.chain_by_name(name).expect("chain exists");
        match max_consecutive_misses(&ctx, id, 64, AnalysisOptions::default())? {
            Some(m) => println!("{name}: never more than {m} consecutive miss(es)"),
            None => println!("{name}: no consecutive-miss bound below 64"),
        }
    }
    Ok(())
}
