//! Experiment 1 of the paper, end to end: the Thales case study
//! (Figure 4), Table I, the combination narrative, and Table II.
//!
//! ```text
//! cargo run --example case_study
//! ```

use twca_suite::chains::{
    explain, typical_load, typical_slack, AnalysisContext, AnalysisOptions, ChainAnalysis,
    CombinationSet,
};
use twca_suite::model::case_study;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = case_study();
    let analysis = ChainAnalysis::new(&system);

    println!("=== Case study (Figure 4) ===");
    for (_, chain) in system.iter() {
        let tasks: Vec<String> = chain
            .tasks()
            .iter()
            .map(|t| format!("{}[{}:{}]", t.name(), t.priority().level(), t.wcet()))
            .collect();
        println!(
            "{:<8} {} {}",
            chain.name(),
            if chain.is_overload() {
                "(overload)"
            } else {
                "          "
            },
            tasks.join(" -> ")
        );
    }

    println!("\n=== Table I: worst-case latencies ===");
    println!("{}", analysis.report());

    let ctx = AnalysisContext::new(&system);
    let (sigma_c, _) = system.chain_by_name("sigma_c").expect("chain exists");

    println!("=== Combination analysis for sigma_c (Section V) ===");
    let full = analysis.worst_case_latency(sigma_c)?;
    println!(
        "K = {}, busy times {:?}",
        full.busy_window_activations, full.busy_times
    );
    for q in 1..=full.busy_window_activations {
        println!("L_c({q}) = {}", typical_load(&ctx, sigma_c, q));
    }
    let slack = typical_slack(&ctx, sigma_c, full.busy_window_activations);
    println!("typical slack = {slack}");
    let set = CombinationSet::enumerate(&ctx, sigma_c, AnalysisOptions::default())?;
    for combo in set.combinations() {
        let members: Vec<String> = combo
            .members
            .iter()
            .map(|&m| {
                let seg = &set.segments()[m];
                system.chain(seg.chain).name().to_string()
            })
            .collect();
        println!(
            "combination {{{}}}: cost {} -> {}",
            members.join(", "),
            combo.wcet,
            if (combo.wcet as i128) > slack {
                "UNSCHEDULABLE"
            } else {
                "schedulable"
            }
        );
    }

    println!("\n=== Table II: dmm_c(k) ===");
    println!("paper reports: dmm_c(3) = 3, dmm_c(76) = 4, dmm_c(250) = 5");
    for k in [3u64, 10, 76, 250] {
        let dmm = analysis.deadline_miss_model(sigma_c, k)?;
        println!(
            "dmm_c({k}) = {} (N_b = {}, packed windows = {}, budgets = {:?})",
            dmm.bound,
            dmm.misses_per_window,
            dmm.packed_windows,
            dmm.omegas
                .iter()
                .map(|&(id, w)| format!("{}={w}", system.chain(id).name()))
                .collect::<Vec<_>>()
        );
    }
    println!("(k = 76/250 differ from the published table; see EXPERIMENTS.md)");

    println!("\n=== Full derivation (twca_chains::explain) ===");
    println!("{}", explain(&ctx, sigma_c, AnalysisOptions::default())?);
    Ok(())
}
