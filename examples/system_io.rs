//! System descriptions as text: parse the DSL, analyze, render back, and
//! export a Graphviz view.
//!
//! ```text
//! cargo run --example system_io
//! ```

use twca_suite::chains::ChainAnalysis;
use twca_suite::model::{parse_system, render_dot, render_system};

const DESCRIPTION: &str = "
# A radar processing pipeline with a rare built-in-test chain.
chain track periodic=500 deadline=500 sync {
    task detect   prio=9 wcet=60
    task associate prio=8 wcet=80
    task smooth   prio=2 wcet=90
}
chain display periodic=1000 deadline=1000 sync {
    task render prio=1 wcet=120
}
chain bit sporadic=10000 overload {
    task self_test prio=10 wcet=150
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = parse_system(DESCRIPTION)?;
    println!(
        "parsed {} chains, {} tasks",
        system.chains().len(),
        system.task_count()
    );

    let analysis = ChainAnalysis::new(&system);
    println!("\n{}", analysis.report());

    for name in ["track", "display"] {
        let (id, _) = system.chain_by_name(name).expect("declared above");
        let dmm = analysis.deadline_miss_model(id, 20)?;
        println!(
            "{name}: dmm(20) = {} (slack {})",
            dmm.bound, dmm.typical_slack
        );
    }

    println!("\n--- canonical text form ---\n{}", render_system(&system));
    println!("--- graphviz ---\n{}", render_dot(&system));
    Ok(())
}
