//! Quickstart: model a small weakly-hard system, bound its latency and
//! its deadline misses.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use twca_suite::chains::{ChainAnalysis, MkConstraint};
use twca_suite::model::{ChainKind, SystemBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A control chain (sensor → filter → actuate) with a 100-tick period
    // and deadline, plus a rare recovery chain that occasionally floods
    // the processor.
    let system = SystemBuilder::new()
        .chain("control")
        .periodic(100)?
        .deadline(100)
        .kind(ChainKind::Synchronous)
        .task("sense", 5, 10)
        .task("filter", 4, 20)
        .task("actuate", 1, 25)
        .done()
        .chain("recovery")
        .sporadic(1_000)? // at most once per 1000 ticks
        .overload()
        .task("diagnose", 3, 30)
        .task("repair", 2, 20)
        .done()
        .build()?;

    let analysis = ChainAnalysis::new(&system);
    println!("{}", analysis.report());

    let (control, chain) = system.chain_by_name("control").expect("chain exists");
    let deadline = chain.deadline().expect("control has a deadline");

    // Worst-case latency with and without the recovery chain.
    let full = analysis.worst_case_latency(control)?;
    let typical = analysis
        .typical_latency(control)?
        .expect("typical busy window closes");
    println!(
        "control: worst-case latency {} (deadline {deadline}), typical {}",
        full.worst_case_latency, typical.worst_case_latency
    );

    // How bad can it get? Bound misses out of any k consecutive cycles.
    for k in [5, 10, 50] {
        let dmm = analysis.deadline_miss_model(control, k)?;
        println!(
            "control: at most {} misses in any {k} consecutive cycles",
            dmm.bound
        );
    }

    // Verify a weakly-hard contract: at most 1 miss in any 10 cycles.
    let contract = MkConstraint::new(1, 10);
    println!(
        "contract {contract}: {}",
        if analysis.satisfies(control, contract)? {
            "satisfied"
        } else {
            "violated"
        }
    );
    Ok(())
}
