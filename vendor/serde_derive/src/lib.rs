//! No-op `Serialize`/`Deserialize` derives for the offline `serde`
//! stand-in. Nothing in this workspace serializes through serde at
//! runtime, so the derives expand to nothing; the marker traits in the
//! `serde` stand-in have blanket impls.

use proc_macro::TokenStream;

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
