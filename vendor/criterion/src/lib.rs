//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `sample_size`/`warm_up_time`/
//! `measurement_time`, and [`Bencher::iter`] — backed by a simple
//! wall-clock measurement loop that prints mean time per iteration.
//! There is no statistical analysis, HTML report or regression history.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    target: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly until the measurement budget is spent,
    /// recording total wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up / calibration run.
        let start = Instant::now();
        black_box(routine());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let mut remaining = self.target.saturating_sub(one);
        let mut iters: u64 = 1;
        let mut elapsed = one;
        while !remaining.is_zero() {
            let batch = (remaining.as_nanos() / one.as_nanos()).clamp(1, 10_000) as u64;
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            iters += batch;
            elapsed += took;
            remaining = remaining.saturating_sub(took);
        }
        self.iters_done = iters;
        self.elapsed = elapsed;
    }
}

fn report(label: &str, bencher: &Bencher) {
    let per_iter = if bencher.iters_done == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / bencher.iters_done.max(1) as u32
    };
    println!(
        "bench: {label:<50} {per_iter:>12.3?}/iter ({} iters in {:.3?})",
        bencher.iters_done, bencher.elapsed
    );
}

/// A named set of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Ignored (compat): the stand-in has no statistical sampling.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Ignored (compat): warm-up is folded into calibration.
    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Sets the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: R,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            target: self.measurement_time,
        };
        routine(&mut bencher);
        report(&label, &bencher);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (compat no-op).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            name: name.into(),
            measurement_time,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: R,
    ) -> &mut Self {
        let label = id.into().to_string();
        let mut bencher = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            target: self.measurement_time,
        };
        routine(&mut bencher);
        report(&label, &bencher);
        self
    }
}

/// Declares the benchmark functions of one target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
