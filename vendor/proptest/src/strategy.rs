//! The [`Strategy`] trait and the combinators used by the workspace.

use crate::test_runner::TestRng;

/// A source of random values of one type.
///
/// Object-safe core (`sample`); the combinators require `Sized`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, builds a dependent strategy from it with `f`,
    /// and samples that.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy behind a trait object.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy (type-erased).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice among boxed strategies — built by [`prop_oneof!`].
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let arm = rng.usize_below(self.arms.len());
        self.arms[arm].sample(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let v = (rng.next_u64() as i128).rem_euclid(span);
                (self.start as i128 + v) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128) - (start as i128) + 1;
                let v = (rng.next_u64() as i128).rem_euclid(span);
                (start as i128 + v) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// i128/u128 need the full 128-bit draw.
impl Strategy for core::ops::Range<i128> {
    type Value = i128;

    fn sample(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u128;
        self.start.wrapping_add((rng.next_u128() % span) as i128)
    }
}

impl Strategy for core::ops::RangeInclusive<i128> {
    type Value = i128;

    fn sample(&self, rng: &mut TestRng) -> i128 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        let span = end.wrapping_sub(start) as u128;
        if span == u128::MAX {
            return rng.next_u128() as i128;
        }
        start.wrapping_add((rng.next_u128() % (span + 1)) as i128)
    }
}

impl Strategy for core::ops::Range<u128> {
    type Value = u128;

    fn sample(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_u128() % (self.end - self.start)
    }
}

/// `&str` literals are regex strategies (panicking on bad patterns,
/// matching proptest's behaviour of failing the test setup).
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::string_regex(self)
            .expect("invalid regex strategy literal")
            .sample(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Inclusive-size specification for collection strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    /// Minimum length.
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl SizeRange {
    pub(crate) fn pick(&self, rng: &mut TestRng) -> usize {
        rng.usize_in(self.min, self.max)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}
