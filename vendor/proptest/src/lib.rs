//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`],
//! [`prop_oneof!`], strategies for integer ranges, tuples, collections
//! ([`collection::vec`], [`collection::btree_set`]), fixed-size arrays
//! ([`array::uniform3`]) and a regex-subset string generator
//! ([`string::string_regex`]).
//!
//! Semantics: every test case is sampled from a deterministic RNG seeded
//! by the test name and case index, so failures are reproducible run to
//! run. Unlike real proptest there is **no shrinking** — a failing case
//! reports its inputs via `Debug` where available and stops.

pub mod strategy;

pub mod test_runner;

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy};
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `size`; falls back to the largest reachable set if the element
    /// domain is too small.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut stale = 0usize;
            while set.len() < target && stale < 100 {
                if set.insert(self.element.sample(rng)) {
                    stale = 0;
                } else {
                    stale += 1;
                }
            }
            set
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[S::Value; 3]` sampling the element strategy three
    /// times.
    pub fn uniform3<S: Strategy>(element: S) -> Uniform3<S> {
        Uniform3 { element }
    }

    /// See [`uniform3`].
    #[derive(Debug, Clone)]
    pub struct Uniform3<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            [
                self.element.sample(rng),
                self.element.sample(rng),
                self.element.sample(rng),
            ]
        }
    }
}

/// String strategies (regex subset).
pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Error for unsupported patterns.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    /// One parsed atom of the pattern: a set of candidate chars plus a
    /// repetition range.
    #[derive(Debug, Clone)]
    struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Strategy generating strings matching a *subset* of regex syntax:
    /// concatenations of literal characters and character classes
    /// (`[a-z0-9_]`, ranges and singletons) with `{m}`, `{m,n}`, `?`,
    /// `*`, `+` quantifiers (star/plus capped at 8 repetitions).
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        atoms: Vec<Atom>,
    }

    /// Builds a [`RegexGeneratorStrategy`] for `pattern`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] for syntax outside the supported subset
    /// (alternation, groups, anchors, backrefs...).
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut atoms = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let candidates: Vec<char> = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let Some(c) = chars.next() else {
                            return Err(Error("unterminated character class".into()));
                        };
                        match c {
                            ']' => break,
                            '-' if prev.is_some() && chars.peek() != Some(&']') => {
                                let lo = prev.take().expect("checked above");
                                let Some(hi) = chars.next() else {
                                    return Err(Error("dangling range".into()));
                                };
                                if hi < lo {
                                    return Err(Error(format!("bad range {lo}-{hi}")));
                                }
                                set.extend((lo..=hi).filter(|c| c.is_ascii() || *c > '\u{7f}'));
                            }
                            '\\' => {
                                let Some(esc) = chars.next() else {
                                    return Err(Error("dangling escape".into()));
                                };
                                if let Some(p) = prev.take() {
                                    set.push(p);
                                }
                                prev = Some(esc);
                            }
                            other => {
                                if let Some(p) = prev.take() {
                                    set.push(p);
                                }
                                prev = Some(other);
                            }
                        }
                    }
                    if let Some(p) = prev.take() {
                        set.push(p);
                    }
                    if set.is_empty() {
                        return Err(Error("empty character class".into()));
                    }
                    set
                }
                '\\' => {
                    let Some(esc) = chars.next() else {
                        return Err(Error("dangling escape".into()));
                    };
                    vec![esc]
                }
                '(' | ')' | '|' | '^' | '$' | '.' => {
                    return Err(Error(format!("unsupported regex syntax `{c}`")));
                }
                literal => vec![literal],
            };
            // Optional quantifier.
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    let parse = |s: &str| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|_| Error(format!("bad repetition `{spec}`")))
                    };
                    match spec.split_once(',') {
                        Some((lo, hi)) => (parse(lo)?, parse(hi)?),
                        None => {
                            let n = parse(&spec)?;
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            if max < min {
                return Err(Error(format!("bad repetition {min},{max}")));
            }
            atoms.push(Atom {
                chars: candidates,
                min,
                max,
            });
        }
        Ok(RegexGeneratorStrategy { atoms })
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let n = rng.usize_in(atom.min, atom.max);
                for _ in 0..n {
                    out.push(atom.chars[rng.usize_below(atom.chars.len())]);
                }
            }
            out
        }
    }
}

/// The glob import used by every proptest test module.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the current
/// case (not panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Uniform choice between heterogeneous strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strategy) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,)+
        ])
    };
}

/// Declares property tests. Each function body runs `config.cases`
/// times with fresh samples of its `name in strategy` inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}
