//! Configuration, per-case RNG and failure type for [`proptest!`].
//!
//! [`proptest!`]: crate::proptest

use std::fmt;

/// Run configuration; only `cases` is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// A failed assertion inside a test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case RNG (SplitMix64 seeded by test name + case).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of test `name` — stable across runs.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform `usize` in `[0, bound)`; panics if `bound == 0`.
    pub fn usize_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "usize_below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `usize` in `[min, max]`.
    pub fn usize_in(&mut self, min: usize, max: usize) -> usize {
        assert!(min <= max, "empty interval");
        min + (self.next_u64() % (max - min + 1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_case("t", 4);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
