//! Offline derive-only stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on model types for
//! forward compatibility but never serializes through serde at runtime
//! (JSON output is hand-rolled). The traits here are markers with
//! blanket impls and the derives expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
