//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the `rand 0.8` API used by this workspace:
//! [`RngCore`], [`Rng`] (`gen_range`, `gen`, `gen_bool`), [`SeedableRng`]
//! and [`seq::SliceRandom`]. Deterministic given a seeded generator, but
//! not bit-compatible with upstream `rand`.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the unit distribution via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn next_u128<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
    ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
}

macro_rules! uniform_int {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let v = (next_u128(rng) % span as u128) as $u;
                self.start.wrapping_add(v as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u128;
                if span == <$u>::MAX as u128 {
                    return next_u128(rng) as $t;
                }
                let v = (next_u128(rng) % (span + 1)) as $u;
                start.wrapping_add(v as $t)
            }
        }
    )*};
}

uniform_int! {
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize,
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a value of `T` from its unit distribution (`f64` in
    /// `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 and constructs
    /// the generator from it.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks a uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: i128 = rng.gen_range(-3i128..=4);
            assert!((-3..=4).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
