//! Offline stand-in for `rand_chacha`: [`ChaCha8Rng`], a real ChaCha
//! stream-cipher core with 8 rounds behind the workspace `rand` traits.
//! Deterministic per seed, but not bit-compatible with upstream.

use rand::{RngCore, SeedableRng};

/// A ChaCha random number generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means exhausted.
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, inp) in state.iter_mut().zip(input) {
            *word = word.wrapping_add(inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn reasonable_uniformity() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
