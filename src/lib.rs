//! Umbrella crate for the TWCA task-chain analysis suite.
//!
//! This crate re-exports the workspace members so the runnable examples in
//! `examples/` and the cross-crate integration tests in `tests/` have a
//! single dependency root. Library users should depend on the individual
//! crates ([`twca_chains`], [`twca_model`], …) directly.

pub use twca_api as api;
pub use twca_assign as assign;
pub use twca_chains as chains;
pub use twca_curves as curves;
pub use twca_dist as dist;
pub use twca_engine as engine;
pub use twca_gen as gen;
pub use twca_ilp as ilp;
pub use twca_independent as independent;
pub use twca_model as model;
pub use twca_report as report;
pub use twca_sim as sim;
pub use twca_verify as verify;
